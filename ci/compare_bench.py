#!/usr/bin/env python3
"""Compare an agg_hotpath run against the committed BENCH_agg.json baseline
and fail on phase-1 throughput regressions.

Two comparison modes, chosen automatically:

* **Same row count** (a real baseline-vs-candidate diff): each workload's
  per-mode `phase1_rows_per_sec` must not drop by more than the tolerance.
* **Different row counts** (the CI smoke run vs the full baseline):
  absolute throughputs are not comparable across scales, so only the
  scale-free ratios are compared — `phase1_speedup` (vectorized over
  scalar) and `io_speedup` (sync over async). Ratio checks are advisory by
  default (printed, never fatal) because tiny smoke runs are noise-
  dominated; pass `--ratio-tolerance PCT` to enforce them.

Usage:
  compare_bench.py <baseline.json> <candidate.json>
                   [--tolerance PCT] [--ratio-tolerance PCT]

Regenerating the baseline (quiet machine, release build):

  cargo run --release -p rexa-bench --bin agg_hotpath -- \\
      --threads-sweep 1,2,4,8
  python3 ci/check_bench_schema.py BENCH_agg.json
  git add BENCH_agg.json

Exit status is 1 when any enforced comparison regresses beyond tolerance.
"""

import json
import sys

DEFAULT_TOLERANCE = 10.0  # percent

# Per-workload measurement modes carrying phase1_rows_per_sec.
MODES = {
    "thin_int": ("scalar", "vectorized"),
    "wide_multi_key": ("scalar", "vectorized"),
    "string_key": ("scalar", "vectorized"),
    "sorted": ("hash", "instream"),
    "clustered": ("hash", "detect"),
    "external": ("sync", "async"),
    "external_sorted": ("hash", "sorted_merge"),
}
RATIO_KEYS = {
    "thin_int": "phase1_speedup",
    "wide_multi_key": "phase1_speedup",
    "string_key": "phase1_speedup",
    "sorted": "instream_speedup",
    "clustered": "detect_speedup",
    "external": "io_speedup",
    "external_sorted": "merge_speedup",
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "agg_hotpath":
        print(f"{path}: not an agg_hotpath result", file=sys.stderr)
        sys.exit(1)
    return doc


def by_name(doc):
    return {w["workload"]: w for w in doc.get("workloads", [])}


def main():
    args = sys.argv[1:]
    tolerance = DEFAULT_TOLERANCE
    ratio_tolerance = None
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--tolerance":
            i += 1
            tolerance = float(args[i])
        elif args[i] == "--ratio-tolerance":
            i += 1
            ratio_tolerance = float(args[i])
        else:
            paths.append(args[i])
        i += 1
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    base_doc, cand_doc = load(paths[0]), load(paths[1])
    base, cand = by_name(base_doc), by_name(cand_doc)
    missing = [w for w in base if w not in cand]
    if missing:
        print(f"candidate is missing workloads {missing}", file=sys.stderr)
        sys.exit(1)

    same_scale = base_doc.get("rows") == cand_doc.get("rows")
    mode_word = (
        f"absolute (rows match: {base_doc.get('rows')}, tolerance {tolerance:.1f}%)"
        if same_scale
        else f"ratio-only (rows {base_doc.get('rows')} vs {cand_doc.get('rows')})"
    )
    print(f"comparing {paths[1]} against {paths[0]}: {mode_word}")

    failures = []
    rows = []
    for name, b in base.items():
        c = cand[name]
        if same_scale:
            for mode in MODES[name]:
                bv = b[mode]["phase1_rows_per_sec"]
                cv = c[mode]["phase1_rows_per_sec"]
                if bv <= 0:
                    continue  # phase too fast to time in the baseline
                delta = (cv - bv) / bv * 100.0
                ok = delta >= -tolerance
                rows.append((f"{name}/{mode}", bv, cv, delta, ok, True))
                if not ok:
                    failures.append(f"{name}/{mode}")
        ratio_key = RATIO_KEYS[name]
        bv, cv = b.get(ratio_key), c.get(ratio_key)
        if bv and cv and bv > 0:
            delta = (cv - bv) / bv * 100.0
            enforced = ratio_tolerance is not None
            ok = (not enforced) or delta >= -ratio_tolerance
            rows.append((f"{name}/{ratio_key}", bv, cv, delta, ok, enforced))
            if not ok:
                failures.append(f"{name}/{ratio_key}")

    width = max(len(r[0]) for r in rows) if rows else 10
    for label, bv, cv, delta, ok, enforced in rows:
        flag = ("ok" if ok else "REGRESSED") if enforced else "info"
        print(f"  {label:<{width}}  {bv:>14.1f} -> {cv:>14.1f}  {delta:+7.1f}%  {flag}")

    if failures:
        print(
            f"perf gate FAILED: {len(failures)} regression(s) beyond tolerance: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        sys.exit(1)
    enforced_n = sum(1 for r in rows if r[5])
    print(f"perf gate OK: {enforced_n} enforced comparisons within tolerance")


if __name__ == "__main__":
    main()
