#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON export produced by the span-tracing
subsystem (crates/obs/src/span.rs, `QueryProfile::chrome_trace_json`).

The export must load in Perfetto / about://tracing, so this check pins the
shape down: well-formed trace events, balanced async begin/end pairs,
worker-thread metadata present, and — for a spilling run — at least one
async I/O span overlapping a compute span on a different track, which is
the visual the tracing subsystem exists to show (background spill writes
and read-ahead running under the probe/merge).

Usage: check_trace_json.py <path-to-trace.json> [--no-overlap]
                           [--require-span NAME]...

`--no-overlap` skips the I/O-overlap requirement for runs that are not
expected to spill. `--require-span NAME` (repeatable) fails unless at
least one duration or async span with that exact name is present — CI uses
it to pin the hybrid hash/sort path's `run_sort` and `sorted_merge` spans
into the traced run.
"""

import json
import sys

# Metadata names the exporter always emits.
META_NAMES = {"process_name", "thread_name", "thread_sort_index"}
# Event phases the exporter can produce.
PHASES = {"M", "X", "b", "e", "i"}


def fail(msg):
    print(f"trace check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(e, where):
    if not isinstance(e, dict):
        fail(f"{where}: expected object, got {type(e).__name__}")
    ph = e.get("ph")
    if ph not in PHASES:
        fail(f"{where}: unknown phase {ph!r}")
    for key in ("pid", "tid"):
        if not isinstance(e.get(key), int) or e[key] < 0:
            fail(f"{where}: {key} must be a non-negative integer")
    if not isinstance(e.get("name"), str) or not e["name"]:
        fail(f"{where}: missing event name")
    if ph == "M":
        if e["name"] not in META_NAMES:
            fail(f"{where}: unknown metadata record {e['name']!r}")
        if not isinstance(e.get("args"), dict):
            fail(f"{where}: metadata must carry args")
        return
    ts = e.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        fail(f"{where}: ts must be a non-negative number, got {ts!r}")
    if not isinstance(e.get("cat"), str) or not e["cat"]:
        fail(f"{where}: missing category")
    if ph == "X":
        dur = e.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"{where}: X event dur must be a non-negative number")
    if ph in ("b", "e") and (not isinstance(e.get("id"), int) or e["id"] < 0):
        fail(f"{where}: async event needs a non-negative integer id")
    if ph == "i" and e.get("s") not in ("t", "p", "g"):
        fail(f"{where}: instant event needs a scope ('s')")


def main():
    args = sys.argv[1:]
    require_overlap = True
    required_spans = []
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--no-overlap":
            require_overlap = False
        elif args[i] == "--require-span":
            i += 1
            if i >= len(args):
                fail("--require-span needs a span name")
            required_spans.append(args[i])
        else:
            paths.append(args[i])
        i += 1
    if len(paths) != 1:
        fail(
            "usage: check_trace_json.py <path-to-trace.json> [--no-overlap] "
            "[--require-span NAME]..."
        )
    with open(paths[0]) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents: expected a non-empty array")
    for i, e in enumerate(events):
        check_event(e, f"traceEvents[{i}]")

    # Track metadata: the process is named, every referenced tid has a
    # thread_name, and the worker threads are among them.
    meta = [e for e in events if e["ph"] == "M"]
    if not any(
        e["name"] == "process_name" and e["args"].get("name") == "rexa" for e in meta
    ):
        fail("missing process_name metadata for 'rexa'")
    thread_names = {
        e["tid"]: e["args"].get("name") for e in meta if e["name"] == "thread_name"
    }
    used_tids = {e["tid"] for e in events if e["ph"] != "M"}
    unnamed = used_tids - set(thread_names)
    if unnamed:
        fail(f"events on unnamed tids {sorted(unnamed)}")
    workers = [t for t, n in thread_names.items() if n and n.startswith("worker")]
    if not workers:
        fail(f"no worker threads among tracks {sorted(thread_names.values())}")

    # Async begin/end balance: every id begins exactly once, ends exactly
    # once, on the same tid, and does not end before it begins.
    begins = {}
    for e in events:
        if e["ph"] != "b":
            continue
        if e["id"] in begins:
            fail(f"async id {e['id']} begun twice")
        begins[e["id"]] = e
    ended = set()
    for e in events:
        if e["ph"] != "e":
            continue
        b = begins.get(e["id"])
        if b is None:
            fail(f"async end id {e['id']} without a begin")
        if e["id"] in ended:
            fail(f"async id {e['id']} ended twice")
        if e["tid"] != b["tid"]:
            fail(f"async id {e['id']} begins on tid {b['tid']}, ends on {e['tid']}")
        if e["ts"] < b["ts"]:
            fail(f"async id {e['id']} ends at {e['ts']} before begin {b['ts']}")
        ended.add(e["id"])
    dangling = set(begins) - ended
    if dangling:
        fail(f"async ids never ended: {sorted(dangling)[:10]}")

    # The headline property: in a spilling run, background I/O visibly
    # overlaps compute. Find one async io span whose [begin, end] interval
    # intersects an X compute span on a different track.
    ends = {e["id"]: e for e in events if e["ph"] == "e"}
    async_io = [
        (b["ts"], ends[i]["ts"], b["tid"])
        for i, b in begins.items()
        if b.get("cat") == "io"
    ]
    compute = [
        (e["ts"], e["ts"] + e["dur"], e["tid"])
        for e in events
        if e["ph"] == "X" and e.get("cat") == "compute"
    ]
    overlap = sum(
        1
        for io_start, io_end, io_tid in async_io
        for c_start, c_end, c_tid in compute
        if io_tid != c_tid and io_start < c_end and c_start < io_end
    )
    if require_overlap:
        if not async_io:
            fail("no async io spans (expected a spilling run; use --no-overlap otherwise)")
        if overlap == 0:
            fail("no async io span overlaps a compute span on another track")

    # Required spans: the caller pins specific code paths (e.g. the hybrid
    # hash/sort path's run_sort / sorted_merge) into the traced run.
    span_names = {e["name"] for e in events if e["ph"] in ("X", "b")}
    for name in required_spans:
        if name not in span_names:
            fail(f"required span {name!r} not present in the trace")

    n_spans = sum(1 for e in events if e["ph"] != "M")
    print(
        f"trace check OK: {n_spans} events on {len(thread_names)} tracks "
        f"({len(workers)} workers, {len(async_io)} async io spans, "
        f"{overlap} io/compute overlap pairs)"
    )


if __name__ == "__main__":
    main()
