#!/usr/bin/env python3
"""Validate the schema of a BENCH_agg.json produced by the agg_hotpath
benchmark binary (crates/bench/src/bin/agg_hotpath.rs).

The committed BENCH_agg.json at the repo root is the tracked baseline for
the aggregation hot path; this check keeps the file machine-readable so a
schema drift in the emitter fails CI instead of silently breaking the
tooling that diffs baselines.

Usage: check_bench_schema.py <path-to-json>
"""

import json
import sys

MEASUREMENT_KEYS = {
    "phase1_secs": float,
    "phase2_secs": float,
    "total_secs": float,
    "phase1_rows_per_sec": float,
    "phase2_rows_per_sec": float,
    "rows_per_sec": float,
    "groups": int,
    "profile": dict,
}

# The execution profile nested under each measurement, taken from the last
# rep's QueryProfile (rexa-obs).
PROFILE_KEYS = {
    "probe_busy_secs": float,
    "sort_busy_secs": float,
    "merge_busy_secs": float,
    "finalize_busy_secs": float,
    "ht_resets": int,
    "partitions": int,
    "partitions_external": int,
    "sorted_runs": int,
    "merge_fanin": int,
    "spill_bytes_written": int,
    "spill_bytes_read": int,
    "evictions": int,
    "readahead_hits": int,
    "readahead_misses": int,
    "io_overlap_secs": float,
    # Phase-1 strategy the run settled on: "thread_local", "shared",
    # "instream", or an "adaptive:"-prefixed form recording the runtime
    # decision.
    "strategy": str,
    # Per-partition phase-2 routing (one entry per merged partition).
    "partition_strategies": list,
    # Per-worker phase-1 attribution (one entry per worker thread).
    "workers": list,
}

# One entry of profile.partition_strategies: what the per-partition phase-2
# chooser decided and the sorted-run shape it saw.
PARTITION_STRATEGY_KEYS = {
    "partition": int,
    "strategy": str,
    "sorted_runs": int,
    "merge_fanin": int,
}
PARTITION_STRATEGIES = {"hash", "sorted_merge"}

# One entry of profile.workers: where phase-1 time and work actually went.
WORKER_KEYS = {
    "worker": int,
    "busy_secs": float,
    "morsels": int,
    "chunks": int,
    "ht_resets": int,
}

# Each workload carries two measurement modes and a scale-free ratio
# between them: the kernel-comparison workloads compare scalar vs
# vectorized, "sorted"/"clustered" compare a forced hash phase 1 against
# the in-stream fast path (forced / detected), "external" compares sync vs
# async I/O scheduling, and "external_sorted" compares the forced hash
# phase 2 against the sorted-run merge.
EXPECTED_WORKLOADS = {
    "thin_int": (("scalar", "vectorized"), "phase1_speedup"),
    "wide_multi_key": (("scalar", "vectorized"), "phase1_speedup"),
    "string_key": (("scalar", "vectorized"), "phase1_speedup"),
    "sorted": (("hash", "instream"), "instream_speedup"),
    "clustered": (("hash", "detect"), "detect_speedup"),
    "external": (("sync", "async"), "io_speedup"),
    "external_sorted": (("hash", "sorted_merge"), "merge_speedup"),
}

# The threads_sweep section (optional: present when the baseline was
# produced with --threads-sweep) carries these workloads, in order; thin_int
# points measure the adaptive default, low_card points compare adaptive
# against forced thread-local.
SWEEP_MODES = {"thin_int": ("vectorized",), "low_card": ("adaptive", "thread_local")}


def fail(msg):
    print(f"schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_keys(m, keys, where):
    if not isinstance(m, dict):
        fail(f"{where}: expected object, got {type(m).__name__}")
    for key, ty in keys.items():
        if key not in m:
            fail(f"{where}: missing key {key!r}")
        v = m[key]
        if ty in (dict, list, str):
            if not isinstance(v, ty):
                fail(f"{where}.{key}: expected {ty.__name__}, got {type(v).__name__}")
            if ty is str and not v:
                fail(f"{where}.{key}: empty string")
            continue
        # ints are acceptable where floats are expected (JSON "0").
        if ty is float and not isinstance(v, (int, float)):
            fail(f"{where}.{key}: expected number, got {type(v).__name__}")
        if ty is int and not isinstance(v, int):
            fail(f"{where}.{key}: expected integer, got {type(v).__name__}")
        if v < 0:
            fail(f"{where}.{key}: negative value {v}")
    extra = set(m) - set(keys)
    if extra:
        fail(f"{where}: unexpected keys {sorted(extra)}")


def check_measurement(m, where):
    check_keys(m, MEASUREMENT_KEYS, where)
    check_keys(m["profile"], PROFILE_KEYS, f"{where}.profile")
    workers = m["profile"]["workers"]
    for i, w in enumerate(workers):
        check_keys(w, WORKER_KEYS, f"{where}.profile.workers[{i}]")
    if [w["worker"] for w in workers] != list(range(len(workers))):
        fail(f"{where}.profile.workers: indices not dense 0..{len(workers) - 1}")
    for i, p in enumerate(m["profile"]["partition_strategies"]):
        pw = f"{where}.profile.partition_strategies[{i}]"
        check_keys(p, PARTITION_STRATEGY_KEYS, pw)
        if p["strategy"] not in PARTITION_STRATEGIES:
            fail(f"{pw}.strategy: unknown strategy {p['strategy']!r}")
        if p["strategy"] == "sorted_merge" and p["merge_fanin"] == 0:
            fail(f"{pw}: sorted_merge with zero merge_fanin")


def check_threads_sweep(sweep):
    check_keys(sweep, {"threads": list, "workloads": list}, "threads_sweep")
    counts = sweep["threads"]
    if not counts or any(not isinstance(t, int) or t <= 0 for t in counts):
        fail(f"threads_sweep.threads: expected positive integers, got {counts!r}")
    names = [w.get("workload") for w in sweep["workloads"]]
    if names != list(SWEEP_MODES):
        fail(f"threads_sweep.workloads: expected {list(SWEEP_MODES)}, got {names}")
    for w in sweep["workloads"]:
        name = w["workload"]
        modes = SWEEP_MODES[name]
        for key in ("rows", "groups"):
            if not isinstance(w.get(key), int) or w[key] <= 0:
                fail(f"threads_sweep.{name}.{key}: expected positive integer")
        points = w.get("points")
        if not isinstance(points, list):
            fail(f"threads_sweep.{name}.points: expected array")
        if [p.get("threads") for p in points] != counts:
            fail(f"threads_sweep.{name}: points do not cover threads {counts}")
        for p in points:
            t = p["threads"]
            where = f"threads_sweep.{name}@t{t}"
            for mode in modes:
                if mode not in p:
                    fail(f"{where}: missing {mode!r} measurement")
                check_measurement(p[mode], f"{where}.{mode}")
            if name == "low_card":
                speedup = p.get("adaptive_speedup")
                if not isinstance(speedup, (int, float)) or speedup < 0:
                    fail(f"{where}.adaptive_speedup: expected non-negative number")
                if p["adaptive"]["groups"] != p["thread_local"]["groups"]:
                    fail(f"{where}: strategies disagree on group count")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_schema.py <path-to-json>")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if doc.get("bench") != "agg_hotpath":
        fail(f"bench: expected 'agg_hotpath', got {doc.get('bench')!r}")
    for key in ("rows", "reps", "threads"):
        if not isinstance(doc.get(key), int) or doc[key] <= 0:
            fail(f"{key}: expected positive integer, got {doc.get(key)!r}")

    workloads = doc.get("workloads")
    if not isinstance(workloads, list):
        fail("workloads: expected array")
    names = [w.get("workload") for w in workloads]
    if names != list(EXPECTED_WORKLOADS):
        fail(f"workloads: expected {list(EXPECTED_WORKLOADS)}, got {names}")

    for w in workloads:
        name = w["workload"]
        for key in ("rows", "groups"):
            if not isinstance(w.get(key), int) or w[key] <= 0:
                fail(f"{name}.{key}: expected positive integer, got {w.get(key)!r}")
        modes, speedup_key = EXPECTED_WORKLOADS[name]
        for mode in modes:
            if mode not in w:
                fail(f"{name}: missing {mode!r} measurement")
            check_measurement(w[mode], f"{name}.{mode}")
        speedup = w.get(speedup_key)
        if not isinstance(speedup, (int, float)) or speedup < 0:
            fail(f"{name}.{speedup_key}: expected non-negative number, got {speedup!r}")
        if w[modes[0]]["groups"] != w[modes[1]]["groups"]:
            fail(f"{name}: {modes[0]} and {modes[1]} disagree on group count")

    sweep = doc.get("threads_sweep")
    swept = ""
    if sweep is not None:
        check_threads_sweep(sweep)
        swept = f" + threads sweep over {sweep['threads']}"

    print(f"schema check OK: {len(workloads)} workloads{swept}")


if __name__ == "__main__":
    main()
