//! Offline stand-in for the subset of the `proptest` API that rexa's
//! property tests use: strategies (ranges, tuples, vectors, `Just`, maps,
//! flat-maps, one-of, sampling, simple `[a-z]{m,n}`-style string patterns),
//! the `proptest!` runner macro, and the `prop_assert*` family.
//!
//! Differences from the real crate, acceptable for this repo's tests:
//! * no shrinking — a failing case prints its full `Debug` input instead;
//! * assertions panic rather than returning `TestCaseError`;
//! * string strategies support only the character-class + repetition
//!   patterns the tests actually use;
//! * regression files store the failing case's 64-bit seed (`cc <name>
//!   <16 hex digits>`) instead of a shrunk value digest. Seeds found in
//!   `<test file>.proptest-regressions` are replayed before fresh cases,
//!   and every new failure is appended there.
//!
//! The case count can be overridden at runtime with the `PROPTEST_CASES`
//! environment variable, mirroring the real crate (CI pins it so chaos
//! runs stay fast and reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// The generator handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test rng (seeded from the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Deterministic rng from an explicit 64-bit seed — the unit of replay:
    /// each property-test case runs on its own seeded rng so a failure can
    /// be reproduced from the seed alone.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn gen_u64(&mut self) -> u64 {
        self.0.gen()
    }

    fn gen_usize(&mut self, bound: usize) -> usize {
        if bound <= 1 {
            0
        } else {
            self.0.gen_range(0..bound)
        }
    }
}

/// Runner configuration; only the knobs the tests set are modeled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Panic payload used by [`prop_assume!`] to reject (skip) a case.
#[derive(Debug)]
pub struct Rejected;

/// A source of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + rand::HasPredecessor + Copy + Debug,
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.clone())
    }
}

/// Uniform strings matching a `[chars]{m,n}`-style pattern (the only regex
/// forms the tests use; anything else panics with a clear message).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let mut alphabet: Vec<char> = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        alphabet.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        alphabet.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // skip ']'
            }
            c if c.is_ascii_alphanumeric() || c == ' ' || c == '_' => {
                alphabet.push(c);
                i += 1;
            }
            other => panic!("unsupported pattern atom {other:?} in {pattern:?}"),
        }
        // Optional {n} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = (i..chars.len())
                .find(|&j| chars[j] == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repetition"),
                    n.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.gen_usize(hi - lo + 1);
        for _ in 0..count {
            out.push(alphabet[rng.gen_usize(alphabet.len())]);
        }
    }
    out
}

/// Heterogeneous per-element strategies: one `Vec<V>` with `self.len()`
/// elements, element `i` drawn from strategy `i`.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A weighted choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_usize(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Build a [`OneOf`] from weighted boxed arms (used by [`prop_oneof!`]).
pub fn oneof<V: Debug>(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
    let total = arms.iter().map(|(w, _)| *w).sum();
    assert!(total > 0, "prop_oneof! needs at least one weighted arm");
    OneOf { arms, total }
}

/// `prop::collection`, `prop::sample` — the paths the tests import.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Element counts accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start + rng.gen_usize(self.end - self.start)
        }
    }

    /// A homogeneous vector strategy: `size` draws from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }
}

/// Random selection helpers.
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};
    use std::fmt::Debug;

    /// An arbitrary index, resolved against a length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// This index modulo `len` (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty domain");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen_u64())
        }
    }

    /// A strategy drawing uniformly from a fixed set of values.
    pub struct Select<T: Clone + Debug>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_usize(self.0.len())].clone()
        }
    }

    /// Uniform choice from `values`.
    pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over empty set");
        Select(values)
    }
}

/// The glob import the tests use: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` module path (`prop::collection::vec`, `prop::sample::…`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Reject (skip) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::Rejected);
        }
    };
}

/// Assert inside a property (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::oneof(vec![$(($weight, $crate::Strategy::boxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::oneof(vec![$((1u32, $crate::Strategy::boxed($strategy))),+])
    };
}

/// The property-test runner macro. Each test draws its arguments from the
/// given strategies `config.cases` times; a failing case prints its inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(
                    &($config),
                    file!(),
                    stringify!($name),
                    |rng| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                        let inputs = format!(
                            concat!($(stringify!($arg), " = {:?}\n"),+),
                            $(&$arg),+
                        );
                        (inputs, move || { $body })
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// `<test file>.proptest-regressions`, next to the test source file.
/// `file` is the test's `file!()`, which rustc makes relative to the
/// *workspace* root — while cargo runs tests from the *package* root. Walk
/// up from the current directory until the source file resolves, so the
/// regression file lands next to the source no matter which package
/// declared the test target.
fn regression_path(file: &str) -> std::path::PathBuf {
    let rel = std::path::Path::new(file);
    let mut base = std::env::current_dir().unwrap_or_default();
    let mut path = loop {
        if base.join(rel).exists() {
            break base.join(rel);
        }
        if !base.pop() {
            break rel.to_path_buf();
        }
    };
    path.set_extension("proptest-regressions");
    path
}

/// Seeds previously persisted for `name`. Two line formats are honored:
///
/// * `cc <name> <16 hex digits>` — this stub's own format (entries for
///   other tests are skipped);
/// * `cc <64 hex digits> [# …]` — the real crate's shrunk-value digests.
///   Those cannot be decoded without real shrinking, so the digest's first
///   16 hex digits become a deterministic replay seed for every test
///   sharing the file — the historical failure *neighborhood* keeps
///   getting probed.
fn load_regression_seeds(path: &std::path::Path, name: &str) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            if parts.next() != Some("cc") {
                return None;
            }
            let tok = parts.next()?;
            if tok == name {
                u64::from_str_radix(parts.next()?, 16).ok()
            } else if tok.len() == 64 && tok.bytes().all(|b| b.is_ascii_hexdigit()) {
                u64::from_str_radix(&tok[..16], 16).ok()
            } else {
                None
            }
        })
        .collect()
}

/// Append a failing seed so future runs replay it first. Best-effort: a
/// read-only checkout must not turn a test failure into a second panic.
fn persist_regression_seed(path: &std::path::Path, name: &str, seed: u64) {
    use std::io::Write;
    let header = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if header {
        let _ = writeln!(
            f,
            "# Seeds for failing cases persisted by the offline proptest stub.\n\
             # Each line is `cc <test name> <16-hex-digit case seed>`; saved seeds\n\
             # are replayed before fresh cases on every run. Do not edit by hand."
        );
    }
    let _ = writeln!(f, "cc {name} {seed:016x}");
}

/// Drives one property test: replays any persisted regression seeds, then
/// repeatedly draws a fresh per-case seed and runs the case, skipping
/// [`prop_assume!`] rejections; on failure the inputs and the case seed are
/// printed and the seed is persisted to the test file's
/// `.proptest-regressions` sibling. `PROPTEST_CASES` overrides the
/// configured case count.
pub fn run_proptest<F, B>(config: &ProptestConfig, file: &str, name: &str, mut make_case: F)
where
    F: FnMut(&mut TestRng) -> (String, B),
    B: FnOnce(),
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let regressions = regression_path(file);
    let mut run_seed = |seed: u64, replayed: bool, case: u32| {
        let mut rng = TestRng::from_seed(seed);
        let (inputs, body) = make_case(&mut rng);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
            Ok(()) => Ok(true),
            Err(payload) if payload.downcast_ref::<Rejected>().is_some() => Ok(false),
            Err(payload) => {
                if replayed {
                    eprintln!(
                        "proptest {name}: persisted regression seed {seed:016x} \
                         still fails with inputs:\n{inputs}"
                    );
                } else {
                    persist_regression_seed(&regressions, name, seed);
                    eprintln!(
                        "proptest {name}: case {case} (seed {seed:016x}) failed with \
                         inputs:\n{inputs}seed persisted to {}",
                        regressions.display()
                    );
                }
                Err(payload)
            }
        }
    };
    for seed in load_regression_seeds(&regressions, name) {
        if let Err(payload) = run_seed(seed, true, 0) {
            std::panic::resume_unwind(payload);
        }
    }
    let mut master = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cases.saturating_mul(20).saturating_add(100);
    while passed < cases && attempts < max_attempts {
        attempts += 1;
        match run_seed(master.gen_u64(), false, passed + 1) {
            Ok(true) => passed += 1,
            Ok(false) => continue,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = crate::TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = crate::sample_pattern("[a-z]{0,12}", &mut rng);
            assert!(s.len() <= 12 && s.chars().all(|c| c.is_ascii_lowercase()));
            let s = crate::sample_pattern("[a-z]{13}", &mut rng);
            assert_eq!(s.len(), 13);
            let s = crate::sample_pattern("[a-c]", &mut rng);
            assert!(matches!(s.as_str(), "a" | "b" | "c"));
        }
    }

    #[test]
    fn regression_seed_round_trip() {
        let dir = std::env::temp_dir().join(format!("proptest-stub-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chaos.rs"), "// test source").unwrap();
        let path = crate::regression_path(dir.join("chaos.rs").to_str().expect("utf-8 temp path"));
        let _ = std::fs::remove_file(&path);
        assert_eq!(path.extension().unwrap(), "proptest-regressions");
        assert!(crate::load_regression_seeds(&path, "t").is_empty());
        crate::persist_regression_seed(&path, "alpha", 0xdead_beef_0042_0001);
        crate::persist_regression_seed(&path, "beta", 7);
        crate::persist_regression_seed(&path, "alpha", 11);
        assert_eq!(
            crate::load_regression_seeds(&path, "alpha"),
            vec![0xdead_beef_0042_0001, 11]
        );
        assert_eq!(crate::load_regression_seeds(&path, "beta"), vec![7]);
        // Real-proptest digest lines yield a replay seed for any test.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "cc ab12{} # shrinks to case = whatever", "cd".repeat(30)).unwrap();
        }
        assert_eq!(
            crate::load_regression_seeds(&path, "gamma"),
            vec![0xab12_cdcd_cdcd_cdcd]
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('#'), "header comment expected: {text}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn per_case_seeds_are_deterministic() {
        let sample = |seed: u64| {
            let mut rng = crate::TestRng::from_seed(seed);
            (0usize..1000).sample(&mut rng)
        };
        assert_eq!(sample(42), sample(42));
        // Different seeds give an independent stream (overwhelmingly).
        assert!((0..8u64).any(|s| sample(s) != sample(42)));
    }

    #[test]
    fn oneof_weights_respected() {
        let mut rng = crate::TestRng::from_name("weights");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!(trues > 800, "trues={trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vectors(xs in prop::collection::vec(0usize..10, 1..20), y in 5i64..8) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!((5..8).contains(&y));
        }

        #[test]
        fn assume_skips(v in 0usize..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            (prop::collection::vec(0usize..10, n), Just(n))
        })) {
            let (xs, n) = pair;
            prop_assert_eq!(xs.len(), n);
        }
    }
}
