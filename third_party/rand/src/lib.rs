//! Offline stand-in for the subset of the `rand` 0.8 API that rexa uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`] / [`rngs::SmallRng`].
//!
//! Both rngs are xoshiro256++ seeded through SplitMix64 — statistically
//! solid non-cryptographic generators. Sequences differ from the real
//! crate's (rexa only relies on *deterministic*, not *identical-to-rand*,
//! data generation; seeds are fixed per dataset).

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integers that support uniform sampling from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive); `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u128 + 1;
                // Rejection-free modulo draw over 128 bits: the bias is
                // 2^-64-scale, irrelevant for data generation.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let off = (wide % span) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * f64::sample(rng)
    }
}

/// Range expressions accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HasPredecessor> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// The value just below an exclusive upper bound.
pub trait HasPredecessor {
    /// `self - 1` for integers; identity for floats (half-open handled by
    /// the uniform sampler never returning exactly `high` in practice).
    fn predecessor(self) -> Self;
}

macro_rules! impl_predecessor_int {
    ($($t:ty),*) => {$(
        impl HasPredecessor for $t {
            fn predecessor(self) -> Self { self - 1 }
        }
    )*};
}

impl_predecessor_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HasPredecessor for f64 {
    fn predecessor(self) -> Self {
        self
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The standard generator (xoshiro256++ here; ChaCha12 in real `rand`).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }

    /// The small/fast generator (same core as [`StdRng`] in this stand-in).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
