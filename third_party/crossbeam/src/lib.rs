//! Offline stand-in for the subset of `crossbeam` that rexa uses: the
//! unbounded MPMC [`queue::SegQueue`]. Implemented with a mutex-protected
//! `VecDeque`; the real crate's lock-free segment queue is a drop-in
//! replacement when the registry is available.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;
    use std::sync::PoisonError;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an element to the back.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Pop the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True if the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_push_pop() {
            use std::sync::Arc;
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..100 {
                            q.push(t * 100 + i);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut seen = Vec::new();
            while let Some(v) = q.pop() {
                seen.push(v);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..400).collect::<Vec<_>>());
        }
    }
}
