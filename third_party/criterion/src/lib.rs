//! Offline stand-in for the subset of the `criterion` API that rexa's
//! benches use. It runs each benchmark a small fixed number of timed
//! iterations and prints mean wall time — enough to smoke-test the bench
//! targets and get ballpark numbers without the real crate's statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timed iterations per measurement (the real crate collects full samples).
const MEASURE_ITERS: u64 = 5;

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one("", &id.into(), &mut f);
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in has a fixed iteration
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (throughput is not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        run_one(&self.name, &id.into_benchmark_id(), &mut f);
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&self.name, &id);
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Measured throughput declaration (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark id, optionally parameterized.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Batch sizing for [`Bencher::iter_batched`].
pub enum BatchSize {
    /// A small per-batch input (the stand-in uses a fixed batch).
    SmallInput,
    /// A large per-batch input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
    /// An explicit iteration count per batch.
    NumIterations(u64),
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += MEASURE_ITERS;
    }

    /// Time `routine` over batches of fresh inputs from `setup`; outputs are
    /// dropped after timing, as in the real crate.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        size: BatchSize,
    ) {
        let batch = match size {
            BatchSize::SmallInput | BatchSize::LargeInput | BatchSize::PerIteration => 64,
            BatchSize::NumIterations(n) => n.max(1),
        };
        black_box(routine(setup()));
        for _ in 0..MEASURE_ITERS {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let mut outputs = Vec::with_capacity(batch as usize);
            let start = Instant::now();
            for input in inputs {
                outputs.push(black_box(routine(input)));
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
            drop(outputs);
        }
    }

    fn report(&self, group: &str, id: &str) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if self.iters == 0 {
            eprintln!("  {label}: no iterations");
        } else {
            let mean = self.elapsed / self.iters as u32;
            eprintln!("  {label}: mean {mean:?} over {} iters", self.iters);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    b.report(group, id);
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The bench-target entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        let mut count = 0u64;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count > MEASURE_ITERS);
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        g.finish();
    }
}
