//! Offline stand-in for the subset of the `parking_lot` API that rexa uses.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small, std-backed implementation with `parking_lot`'s
//! ergonomics: `lock()` returns the guard directly (poisoning is treated as
//! a bug and unwrapped away) and `Condvar::wait` takes `&mut MutexGuard`.
//! The real crate is a drop-in replacement when the registry is available.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The `Option` is only ever `None` transiently
/// inside [`Condvar::wait`], which takes the std guard out and puts it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex (const, like the real `parking_lot`).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable whose `wait` re-borrows the `parking_lot`-style
/// guard instead of consuming it.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait returned because of the timeout.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified; the mutex is atomically released and re-acquired.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
