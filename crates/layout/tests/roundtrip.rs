//! Property test: scatter → (optional spill/reload cycles) → gather is the
//! identity, for arbitrary schemas, row mixes, page sizes, and split
//! points — the core guarantee of the spillable page layout.

use proptest::prelude::*;
use rexa_buffer::{BufferManager, BufferManagerConfig};
use rexa_exec::{hashing, LogicalType, Value, Vector};
use rexa_layout::{TupleDataCollection, TupleDataLayout};
use rexa_storage::scratch_dir;
use std::sync::Arc;

fn value_strategy(ty: LogicalType) -> BoxedStrategy<Value> {
    match ty {
        LogicalType::Int32 => any::<i32>().prop_map(Value::Int32).boxed(),
        LogicalType::Int64 => any::<i64>().prop_map(Value::Int64).boxed(),
        LogicalType::Float64 => any::<i64>()
            .prop_map(|v| Value::Float64(v as f64 / 7.0))
            .boxed(),
        LogicalType::Date => any::<i32>().prop_map(Value::Date).boxed(),
        LogicalType::Varchar => prop_oneof![
            // inline, boundary (12/13), long, and very long strings
            "[a-z]{0,12}".prop_map(Value::Varchar),
            "[a-z]{13}".prop_map(Value::Varchar),
            "[a-z]{14,80}".prop_map(Value::Varchar),
            "[a-z]{200,400}".prop_map(Value::Varchar),
        ]
        .boxed(),
    }
}

#[derive(Debug, Clone)]
struct RtCase {
    types: Vec<LogicalType>,
    rows: Vec<Vec<Value>>,
    page_kib: usize,
    /// Release pins (and thereby split pin epochs) every N rows.
    release_every: usize,
    /// Squeeze memory (forcing spills) between epochs.
    squeeze: bool,
}

fn case_strategy() -> impl Strategy<Value = RtCase> {
    let type_pool = prop::sample::select(vec![
        LogicalType::Int32,
        LogicalType::Int64,
        LogicalType::Float64,
        LogicalType::Date,
        LogicalType::Varchar,
    ]);
    (
        prop::collection::vec(type_pool, 1..4),
        1usize..3,
        0usize..400,
        prop::sample::select(vec![2usize, 4, 16]),
        1usize..120,
        any::<bool>(),
    )
        .prop_flat_map(|(types, _, n_rows, page_kib, release_every, squeeze)| {
            let row: Vec<BoxedStrategy<Value>> = types.iter().map(|&t| value_strategy(t)).collect();
            (
                prop::collection::vec(row, n_rows),
                Just(types),
                Just(page_kib),
                Just(release_every),
                Just(squeeze),
            )
                .prop_map(|(rows, types, page_kib, release_every, squeeze)| RtCase {
                    types,
                    rows,
                    page_kib,
                    release_every,
                    squeeze,
                })
        })
}

fn null_some(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    for (i, row) in rows.iter_mut().enumerate() {
        if i % 7 == 3 {
            let j = i % row.len();
            row[j] = Value::Null;
        }
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn scatter_spill_gather_is_identity(case in case_strategy()) {
        let rows = null_some(case.rows.clone());
        let page = case.page_kib << 10;
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(usize::MAX)
                .page_size(page)
                .temp_dir(scratch_dir("rt").unwrap()),
        ).unwrap();
        let layout = Arc::new(TupleDataLayout::new(case.types.clone(), vec![8]));
        prop_assume!(layout.row_width() <= page); // rows must fit a page
        let mut coll = TupleDataCollection::new(Arc::clone(&mgr), layout);

        // Append in epochs, releasing pins (and optionally squeezing all
        // pages out to disk) between them.
        for epoch in rows.chunks(case.release_every.max(1)) {
            let mut cols: Vec<Vector> = case
                .types
                .iter()
                .map(|&t| Vector::empty(t))
                .collect();
            for row in epoch {
                for (c, v) in cols.iter_mut().zip(row) {
                    c.push_value(v).unwrap();
                }
            }
            let refs: Vec<&Vector> = cols.iter().collect();
            let hashes = hashing::hash_columns(&refs, epoch.len());
            let sel: Vec<u32> = (0..epoch.len() as u32).collect();
            coll.append(&refs, &hashes, &sel, None).unwrap();
            coll.release_pins();
            if case.squeeze {
                let before = mgr.memory_limit();
                mgr.set_memory_limit(0);
                // Drain: every unpinned page must go to disk.
                let _ = mgr.allocate_page(); // triggers eviction, then fails
                mgr.set_memory_limit(before);
            }
        }
        coll.verify().unwrap();
        prop_assert_eq!(coll.rows(), rows.len());

        // One more full spill/reload cycle, then compare.
        let pins = coll.pin_all().unwrap();
        let ptrs = coll.all_row_ptrs(&pins);
        let out = unsafe { coll.gather(&ptrs) };
        for (i, row) in rows.iter().enumerate() {
            for (c, want) in row.iter().enumerate() {
                let got = out.column(c).value(i);
                let eq = match (&got, want) {
                    (Value::Float64(a), Value::Float64(b)) => a.to_bits() == b.to_bits(),
                    _ => &got == want,
                };
                prop_assert!(eq, "row {i} col {c}: got {got:?}, want {want:?}");
            }
        }
        drop(pins);
        drop(coll);
        prop_assert_eq!(mgr.memory_used(), 0);
        prop_assert_eq!(mgr.stats().temp_bytes_on_disk, 0);
    }
}
