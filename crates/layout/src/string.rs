//! Umbra-style 16-byte strings (paper Section IV, "Variable-Size Row").
//!
//! The first 4 bytes store the length. Strings of at most 12 bytes are
//! inlined entirely; longer strings keep a 4-byte prefix inline (so most
//! mismatching comparisons resolve without a dereference) plus an explicit
//! pointer to the full bytes on a heap page. The pointer is what the
//! collection's lazy recomputation adjusts after a spill/reload cycle.

/// Maximum length that is stored fully inline.
pub const INLINE_LEN: usize = 12;

/// A 16-byte string reference: length, 4-byte prefix, and either 8 more
/// inline bytes or a pointer to the full data.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct RexaString {
    len: u32,
    prefix: [u8; 4],
    /// Inline: bytes 4..12 of the string (zero-padded).
    /// Non-inline: the address of the full string bytes.
    rest: u64,
}

impl RexaString {
    /// Size of the struct: the fixed row slot a Varchar occupies.
    pub const WIDTH: usize = 16;

    /// Build an inline string (length must be ≤ [`INLINE_LEN`]).
    pub fn inline(s: &[u8]) -> RexaString {
        debug_assert!(s.len() <= INLINE_LEN);
        let mut prefix = [0u8; 4];
        let p = s.len().min(4);
        prefix[..p].copy_from_slice(&s[..p]);
        let mut rest_bytes = [0u8; 8];
        if s.len() > 4 {
            rest_bytes[..s.len() - 4].copy_from_slice(&s[4..]);
        }
        RexaString {
            len: s.len() as u32,
            prefix,
            rest: u64::from_le_bytes(rest_bytes),
        }
    }

    /// Build a non-inline string whose full bytes live at `ptr`.
    ///
    /// # Safety
    /// `ptr` must point to `s.len()` bytes equal to `s` and stay valid (or be
    /// recomputed) for as long as the string is read through this struct.
    pub unsafe fn pointed(s: &[u8], ptr: *const u8) -> RexaString {
        debug_assert!(s.len() > INLINE_LEN);
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&s[..4]);
        RexaString {
            len: s.len() as u32,
            prefix,
            rest: ptr as u64,
        }
    }

    /// The string length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty string.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the bytes are fully inline (no heap pointer).
    pub fn is_inlined(&self) -> bool {
        self.len as usize <= INLINE_LEN
    }

    /// The heap pointer of a non-inline string.
    pub fn pointer(&self) -> u64 {
        debug_assert!(!self.is_inlined());
        self.rest
    }

    /// Replace the heap pointer (pointer recomputation after a reload).
    pub fn set_pointer(&mut self, ptr: u64) {
        debug_assert!(!self.is_inlined());
        self.rest = ptr;
    }

    /// The string bytes.
    ///
    /// # Safety
    /// For non-inline strings the heap pointer must be valid (heap page
    /// pinned and recomputed).
    pub unsafe fn as_bytes(&self) -> &[u8] {
        if self.is_inlined() {
            // Inline bytes live in `prefix` + `rest`, which are contiguous
            // in this #[repr(C)] struct.
            std::slice::from_raw_parts(self.prefix.as_ptr(), self.len())
        } else {
            std::slice::from_raw_parts(self.rest as *const u8, self.len())
        }
    }

    /// Compare against `s`, using length and prefix to reject cheaply.
    ///
    /// # Safety
    /// Same requirement as [`RexaString::as_bytes`].
    pub unsafe fn eq_bytes(&self, s: &[u8]) -> bool {
        if self.len() != s.len() {
            return false;
        }
        if self.is_inlined() {
            return self.as_bytes() == s;
        }
        if self.prefix != s[..4] {
            return false;
        }
        self.as_bytes() == s
    }

    /// Read a `RexaString` from a (possibly unaligned) row slot.
    ///
    /// # Safety
    /// `src` must point to 16 readable bytes holding a `RexaString`.
    pub unsafe fn read_from(src: *const u8) -> RexaString {
        std::ptr::read_unaligned(src as *const RexaString)
    }

    /// Write this `RexaString` to a (possibly unaligned) row slot.
    ///
    /// # Safety
    /// `dst` must point to 16 writable bytes.
    pub unsafe fn write_to(&self, dst: *mut u8) {
        std::ptr::write_unaligned(dst as *mut RexaString, *self);
    }
}

impl std::fmt::Debug for RexaString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_inlined() {
            // SAFETY: inline strings need no heap.
            let bytes = unsafe { self.as_bytes() };
            write!(
                f,
                "RexaString(inline, {:?})",
                String::from_utf8_lossy(bytes)
            )
        } else {
            write!(
                f,
                "RexaString(len={}, prefix={:?}, ptr={:#x})",
                self.len,
                String::from_utf8_lossy(&self.prefix),
                self.rest
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_is_16_bytes() {
        assert_eq!(std::mem::size_of::<RexaString>(), RexaString::WIDTH);
    }

    #[test]
    fn inline_round_trip() {
        for s in ["", "a", "abcd", "abcde", "twelve chars"] {
            let r = RexaString::inline(s.as_bytes());
            assert!(r.is_inlined());
            assert_eq!(unsafe { r.as_bytes() }, s.as_bytes(), "{s:?}");
            assert!(unsafe { r.eq_bytes(s.as_bytes()) });
        }
    }

    #[test]
    fn inline_inequality() {
        let r = RexaString::inline(b"hello");
        unsafe {
            assert!(!r.eq_bytes(b"hellx"));
            assert!(!r.eq_bytes(b"hell"));
            assert!(!r.eq_bytes(b"hello!"));
        }
    }

    #[test]
    fn pointed_round_trip() {
        let data = b"a string that is too long to inline".to_vec();
        let r = unsafe { RexaString::pointed(&data, data.as_ptr()) };
        assert!(!r.is_inlined());
        assert_eq!(r.len(), data.len());
        unsafe {
            assert_eq!(r.as_bytes(), &data[..]);
            assert!(r.eq_bytes(&data));
            assert!(!r.eq_bytes(b"a string that is too long to inlinX"));
            // Prefix rejection: same length, different first 4 bytes.
            let other = b"B string that is too long to inline";
            assert!(!r.eq_bytes(other));
        }
    }

    #[test]
    fn pointer_recomputation_simulation() {
        let data = b"thirteen chars".to_vec(); // 14 bytes, not inline
        let mut r = unsafe { RexaString::pointed(&data, data.as_ptr()) };
        // Simulate a page reload: data moves.
        let moved = data.clone();
        let old_base = data.as_ptr() as u64;
        let new_base = moved.as_ptr() as u64;
        r.set_pointer(r.pointer() - old_base + new_base);
        drop(data);
        assert_eq!(unsafe { r.as_bytes() }, &moved[..]);
    }

    #[test]
    fn unaligned_row_slot_round_trip() {
        let mut slot = vec![0u8; 17];
        let r = RexaString::inline(b"hi there");
        unsafe {
            r.write_to(slot.as_mut_ptr().add(1)); // deliberately unaligned
            let back = RexaString::read_from(slot.as_ptr().add(1));
            assert_eq!(back.as_bytes(), b"hi there");
        }
    }

    #[test]
    fn twelve_is_inline_thirteen_is_not() {
        let r12 = RexaString::inline(b"123456789012");
        assert!(r12.is_inlined());
        let bytes = b"1234567890123".to_vec();
        let r13 = unsafe { RexaString::pointed(&bytes, bytes.as_ptr()) };
        assert!(!r13.is_inlined());
    }
}
