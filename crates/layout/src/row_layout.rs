//! The fixed-size row format.
//!
//! Types — and therefore the width and offset of every attribute — are known
//! when the plan is generated, so this information is stored **once,
//! globally** in a [`TupleDataLayout`], not per page (paper Section IV).
//!
//! Row format:
//!
//! ```text
//! [ validity bits: ceil(ncols/8) bytes ]
//! [ hash: 8 bytes ]                       -- computed once, reused in phase 2
//! [ col 0 ][ col 1 ] ...                  -- fixed widths; Varchar = 16-byte RexaString
//! [ agg state 0 ][ agg state 1 ] ...      -- opaque fixed-size aggregate states
//! (row width rounded up to 8 bytes)
//! ```
//!
//! Attributes are read and written with unaligned loads/stores, so no
//! intra-row padding is needed.

use rexa_exec::LogicalType;

/// The global row layout: column types, aggregate-state sizes, and the
/// resulting offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleDataLayout {
    types: Vec<LogicalType>,
    aggr_sizes: Vec<usize>,
    validity_bytes: usize,
    hash_offset: usize,
    offsets: Vec<usize>,
    aggr_offsets: Vec<usize>,
    row_width: usize,
    var_cols: Vec<usize>,
}

impl TupleDataLayout {
    /// Build a layout for `types` columns followed by opaque aggregate states
    /// of the given byte sizes.
    pub fn new(types: Vec<LogicalType>, aggr_sizes: Vec<usize>) -> Self {
        assert!(!types.is_empty(), "a row needs at least one column");
        let validity_bytes = types.len().div_ceil(8);
        let hash_offset = validity_bytes;
        let mut pos = hash_offset + 8;
        let mut offsets = Vec::with_capacity(types.len());
        let mut var_cols = Vec::new();
        for (i, &ty) in types.iter().enumerate() {
            offsets.push(pos);
            pos += ty.row_width();
            if ty.is_variable() {
                var_cols.push(i);
            }
        }
        let mut aggr_offsets = Vec::with_capacity(aggr_sizes.len());
        for &sz in &aggr_sizes {
            aggr_offsets.push(pos);
            pos += sz;
        }
        let row_width = pos.next_multiple_of(8);
        TupleDataLayout {
            types,
            aggr_sizes,
            validity_bytes,
            hash_offset,
            offsets,
            aggr_offsets,
            row_width,
            var_cols,
        }
    }

    /// The column types.
    pub fn types(&self) -> &[LogicalType] {
        &self.types
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.types.len()
    }

    /// Byte offset of column `i` within a row.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Byte offset of the materialized hash.
    pub fn hash_offset(&self) -> usize {
        self.hash_offset
    }

    /// Byte offset of aggregate state `i`.
    pub fn aggr_offset(&self, i: usize) -> usize {
        self.aggr_offsets[i]
    }

    /// Number of aggregate states.
    pub fn aggr_count(&self) -> usize {
        self.aggr_sizes.len()
    }

    /// The fixed row width (multiple of 8).
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Indices of the Varchar columns (the ones with heap pointers).
    pub fn var_cols(&self) -> &[usize] {
        &self.var_cols
    }

    /// The `(offset, length)` of the aggregate-state region of a row. Pages
    /// are handed out uninitialized, so the scatter path zeroes exactly this
    /// region when a row is created (aggregate states rely on starting at 0).
    pub fn aggr_region(&self) -> (usize, usize) {
        match self.aggr_offsets.first() {
            Some(&first) => (first, self.aggr_sizes.iter().sum()),
            None => (0, 0),
        }
    }

    /// True if any column stores heap pointers.
    pub fn has_heap(&self) -> bool {
        !self.var_cols.is_empty()
    }

    // ---- raw row accessors (all unaligned, all bounds-unchecked) ----------

    /// Read the materialized hash of the row at `row`.
    ///
    /// # Safety
    /// `row` must point to a live row of this layout.
    #[inline]
    pub unsafe fn read_hash(&self, row: *const u8) -> u64 {
        std::ptr::read_unaligned(row.add(self.hash_offset) as *const u64)
    }

    /// Write the materialized hash.
    ///
    /// # Safety
    /// `row` must point to a writable row of this layout.
    #[inline]
    pub unsafe fn write_hash(&self, row: *mut u8, hash: u64) {
        std::ptr::write_unaligned(row.add(self.hash_offset) as *mut u64, hash);
    }

    /// Whether column `col` of the row is valid (non-NULL).
    ///
    /// # Safety
    /// `row` must point to a live row of this layout.
    #[inline]
    pub unsafe fn is_valid(&self, row: *const u8, col: usize) -> bool {
        (*row.add(col / 8) >> (col % 8)) & 1 == 1
    }

    /// Set column `col`'s validity bit.
    ///
    /// # Safety
    /// `row` must point to a writable row of this layout.
    #[inline]
    pub unsafe fn set_valid(&self, row: *mut u8, col: usize, valid: bool) {
        let byte = row.add(col / 8);
        if valid {
            *byte |= 1 << (col % 8);
        } else {
            *byte &= !(1 << (col % 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_packed_in_order() {
        let l = TupleDataLayout::new(
            vec![LogicalType::Int32, LogicalType::Varchar, LogicalType::Int64],
            vec![8, 16],
        );
        // 3 cols -> 1 validity byte, hash at 1, cols from 9.
        assert_eq!(l.hash_offset(), 1);
        assert_eq!(l.offset(0), 9);
        assert_eq!(l.offset(1), 13);
        assert_eq!(l.offset(2), 29);
        assert_eq!(l.aggr_offset(0), 37);
        assert_eq!(l.aggr_offset(1), 45);
        assert_eq!(l.row_width(), 64); // 61 rounded up
        assert_eq!(l.var_cols(), &[1]);
        assert!(l.has_heap());
    }

    #[test]
    fn nine_columns_need_two_validity_bytes() {
        let l = TupleDataLayout::new(vec![LogicalType::Int32; 9], vec![]);
        assert_eq!(l.hash_offset(), 2);
        assert_eq!(l.offset(0), 10);
        assert!(!l.has_heap());
        assert_eq!(l.aggr_count(), 0);
    }

    #[test]
    fn row_width_is_multiple_of_8() {
        for n in 1..6 {
            let l = TupleDataLayout::new(vec![LogicalType::Int32; n], vec![1]);
            assert_eq!(l.row_width() % 8, 0, "n={n}");
        }
    }

    #[test]
    fn hash_and_validity_round_trip() {
        let l = TupleDataLayout::new(vec![LogicalType::Int64, LogicalType::Int64], vec![]);
        let mut row = vec![0u8; l.row_width()];
        unsafe {
            l.write_hash(row.as_mut_ptr(), 0xDEAD_BEEF_CAFE_F00D);
            l.set_valid(row.as_mut_ptr(), 0, true);
            l.set_valid(row.as_mut_ptr(), 1, false);
            assert_eq!(l.read_hash(row.as_ptr()), 0xDEAD_BEEF_CAFE_F00D);
            assert!(l.is_valid(row.as_ptr(), 0));
            assert!(!l.is_valid(row.as_ptr(), 1));
            l.set_valid(row.as_mut_ptr(), 1, true);
            assert!(l.is_valid(row.as_ptr(), 1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_layout_panics() {
        TupleDataLayout::new(vec![], vec![]);
    }
}
