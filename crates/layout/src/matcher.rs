//! Group-key comparison between column-major input values and a
//! materialized row — the comparison a hash-table probe performs after the
//! salt matched.

use crate::row_layout::TupleDataLayout;
use crate::string::RexaString;
use rexa_exec::vector::VectorData;
use rexa_exec::Vector;

/// Compare the group-key columns of input row `input_row` against the
/// materialized row at `row`. NULLs compare equal to NULLs (SQL GROUP BY
/// semantics: NULL forms one group).
///
/// # Safety
/// `row` must point to a live row of `layout` whose pages (row and heap) are
/// pinned and pointer-recomputed.
pub unsafe fn rows_match(
    layout: &TupleDataLayout,
    cols: &[&Vector],
    input_row: usize,
    row: *const u8,
) -> bool {
    for (c, col) in cols.iter().enumerate() {
        let input_valid = col.validity().is_valid(input_row);
        let row_valid = layout.is_valid(row, c);
        if input_valid != row_valid {
            return false;
        }
        if !input_valid {
            continue; // NULL == NULL for grouping
        }
        let slot = row.add(layout.offset(c));
        let eq = match col.data() {
            VectorData::I32(v) => std::ptr::read_unaligned(slot as *const i32) == v[input_row],
            VectorData::I64(v) => std::ptr::read_unaligned(slot as *const i64) == v[input_row],
            VectorData::F64(v) => {
                // Bitwise comparison: groups were materialized from the same
                // domain, and NaN != NaN must still form one group.
                std::ptr::read_unaligned(slot as *const u64) == v[input_row].to_bits()
            }
            VectorData::Str(v) => RexaString::read_from(slot).eq_bytes(v.get(input_row).as_bytes()),
        };
        if !eq {
            return false;
        }
    }
    true
}

/// Compare the first `key_cols` columns of two materialized rows (used in
/// phase 2, where both sides are rows; payload columns after the keys are
/// not compared).
///
/// # Safety
/// Both pointers must address live rows of `layout`, pinned and recomputed.
pub unsafe fn row_row_match(
    layout: &TupleDataLayout,
    key_cols: usize,
    a: *const u8,
    b: *const u8,
) -> bool {
    for c in 0..key_cols {
        let av = layout.is_valid(a, c);
        let bv = layout.is_valid(b, c);
        if av != bv {
            return false;
        }
        if !av {
            continue;
        }
        let sa = a.add(layout.offset(c));
        let sb = b.add(layout.offset(c));
        let ty = layout.types()[c];
        let eq = match ty {
            rexa_exec::LogicalType::Int32 | rexa_exec::LogicalType::Date => {
                std::ptr::read_unaligned(sa as *const i32)
                    == std::ptr::read_unaligned(sb as *const i32)
            }
            rexa_exec::LogicalType::Int64 | rexa_exec::LogicalType::Float64 => {
                std::ptr::read_unaligned(sa as *const u64)
                    == std::ptr::read_unaligned(sb as *const u64)
            }
            rexa_exec::LogicalType::Varchar => {
                let ra = RexaString::read_from(sa);
                let rb = RexaString::read_from(sb);
                ra.eq_bytes(rb.as_bytes())
            }
        };
        if !eq {
            return false;
        }
    }
    true
}

/// Compare the first `key_cols` columns of two rows that live in *different*
/// layouts (e.g. a join's build and probe rows). The key columns must have
/// identical types in both layouts, in the same order, but offsets may
/// differ (validity width depends on the total column count).
///
/// # Safety
/// `a` must be a live row of `layout_a` and `b` of `layout_b`, both pinned
/// and pointer-recomputed.
pub unsafe fn row_row_match_cross(
    layout_a: &TupleDataLayout,
    layout_b: &TupleDataLayout,
    key_cols: usize,
    a: *const u8,
    b: *const u8,
) -> bool {
    debug_assert!(key_cols <= layout_a.column_count());
    debug_assert!(key_cols <= layout_b.column_count());
    for c in 0..key_cols {
        debug_assert_eq!(layout_a.types()[c], layout_b.types()[c]);
        let av = layout_a.is_valid(a, c);
        let bv = layout_b.is_valid(b, c);
        if av != bv {
            return false;
        }
        if !av {
            continue;
        }
        let sa = a.add(layout_a.offset(c));
        let sb = b.add(layout_b.offset(c));
        let eq = match layout_a.types()[c] {
            rexa_exec::LogicalType::Int32 | rexa_exec::LogicalType::Date => {
                std::ptr::read_unaligned(sa as *const i32)
                    == std::ptr::read_unaligned(sb as *const i32)
            }
            rexa_exec::LogicalType::Int64 | rexa_exec::LogicalType::Float64 => {
                std::ptr::read_unaligned(sa as *const u64)
                    == std::ptr::read_unaligned(sb as *const u64)
            }
            rexa_exec::LogicalType::Varchar => {
                let ra = RexaString::read_from(sa);
                let rb = RexaString::read_from(sb);
                ra.eq_bytes(rb.as_bytes())
            }
        };
        if !eq {
            return false;
        }
    }
    true
}
