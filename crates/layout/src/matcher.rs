//! Group-key comparison between column-major input values and a
//! materialized row — the comparison a hash-table probe performs after the
//! salt matched.

use crate::row_layout::TupleDataLayout;
use crate::string::RexaString;
use rexa_exec::hashing::normalize_f64_key;
use rexa_exec::vector::VectorData;
use rexa_exec::Vector;
use std::cmp::Ordering;

/// Compare the group-key columns of input row `input_row` against the
/// materialized row at `row`. NULLs compare equal to NULLs (SQL GROUP BY
/// semantics: NULL forms one group).
///
/// # Safety
/// `row` must point to a live row of `layout` whose pages (row and heap) are
/// pinned and pointer-recomputed.
pub unsafe fn rows_match(
    layout: &TupleDataLayout,
    cols: &[&Vector],
    input_row: usize,
    row: *const u8,
) -> bool {
    for (c, col) in cols.iter().enumerate() {
        let input_valid = col.validity().is_valid(input_row);
        let row_valid = layout.is_valid(row, c);
        if input_valid != row_valid {
            return false;
        }
        if !input_valid {
            continue; // NULL == NULL for grouping
        }
        let slot = row.add(layout.offset(c));
        let eq = match col.data() {
            VectorData::I32(v) => std::ptr::read_unaligned(slot as *const i32) == v[input_row],
            VectorData::I64(v) => std::ptr::read_unaligned(slot as *const i64) == v[input_row],
            VectorData::F64(v) => {
                // Bitwise comparison: NaN != NaN must still form one group.
                // The input value is key-normalized (-0.0 -> 0.0) because
                // materialized rows only ever contain the normalized form.
                std::ptr::read_unaligned(slot as *const u64)
                    == normalize_f64_key(v[input_row]).to_bits()
            }
            VectorData::Str(v) => RexaString::read_from(slot).eq_bytes(v.get(input_row).as_bytes()),
        };
        if !eq {
            return false;
        }
    }
    true
}

/// Selection-vector form of [`rows_match`]: compare a *batch* of candidate
/// (input row, materialized row) pairs, grouped **by column** so the type
/// dispatch happens once per column per call instead of once per row.
///
/// `input_rows[p]` / `row_ptrs[p]` describe candidate `p`. On return,
/// `matched` holds the positions `p` whose pairs agree on every group-key
/// column and `no_match` the positions that differ; both preserve the input
/// order, and `matched.len() + no_match.len() == input_rows.len()`. The
/// vectors are cleared on entry (caller-owned scratch).
///
/// # Safety
/// Every pointer in `row_ptrs` must address a live row of `layout` whose
/// pages (row and heap) are pinned and pointer-recomputed.
pub unsafe fn rows_match_sel(
    layout: &TupleDataLayout,
    cols: &[&Vector],
    input_rows: &[u32],
    row_ptrs: &[*const u8],
    matched: &mut Vec<u32>,
    no_match: &mut Vec<u32>,
) {
    debug_assert_eq!(input_rows.len(), row_ptrs.len());
    matched.clear();
    no_match.clear();
    matched.extend(0..input_rows.len() as u32);
    for (c, col) in cols.iter().enumerate() {
        if matched.is_empty() {
            break;
        }
        let off = layout.offset(c);
        let validity = col.validity();
        // One shrinking pass over the still-matching candidates: compact the
        // survivors in place, spill the failures to `no_match`.
        let mut keep = 0usize;
        macro_rules! compact {
            (|$i:ident, $slot:ident| $eq:expr) => {
                for k in 0..matched.len() {
                    let p = matched[k];
                    let $i = input_rows[p as usize] as usize;
                    let row = row_ptrs[p as usize];
                    let input_valid = validity.is_valid($i);
                    let ok = if input_valid != layout.is_valid(row, c) {
                        false
                    } else if !input_valid {
                        true // NULL == NULL for grouping
                    } else {
                        let $slot = row.add(off);
                        $eq
                    };
                    if ok {
                        matched[keep] = p;
                        keep += 1;
                    } else {
                        no_match.push(p);
                    }
                }
            };
        }
        match col.data() {
            VectorData::I32(v) => {
                compact!(|i, slot| std::ptr::read_unaligned(slot as *const i32) == v[i]);
            }
            VectorData::I64(v) => {
                compact!(|i, slot| std::ptr::read_unaligned(slot as *const i64) == v[i]);
            }
            VectorData::F64(v) => {
                compact!(|i, slot| std::ptr::read_unaligned(slot as *const u64)
                    == normalize_f64_key(v[i]).to_bits());
            }
            VectorData::Str(v) => {
                compact!(|i, slot| RexaString::read_from(slot).eq_bytes(v.get(i).as_bytes()));
            }
        }
        matched.truncate(keep);
    }
    // Failures were appended column by column, scrambling the original
    // order; restore it so callers can keep their probe selections ordered
    // (ordered selections make the vectorized operator's combine order — and
    // therefore its float results — identical to the scalar oracle's).
    no_match.sort_unstable();
}

/// Selection-vector form of [`row_row_match`]: compare a batch of candidate
/// (row, row) pairs on the first `key_cols` columns, grouped by column.
/// Contract mirrors [`rows_match_sel`]: `matched` and `no_match` receive the
/// positions of agreeing / differing pairs, in order.
///
/// # Safety
/// Every pointer in `a_ptrs` and `b_ptrs` must address live rows of
/// `layout`, pinned and pointer-recomputed.
pub unsafe fn row_row_match_sel(
    layout: &TupleDataLayout,
    key_cols: usize,
    a_ptrs: &[*const u8],
    b_ptrs: &[*const u8],
    matched: &mut Vec<u32>,
    no_match: &mut Vec<u32>,
) {
    debug_assert_eq!(a_ptrs.len(), b_ptrs.len());
    matched.clear();
    no_match.clear();
    matched.extend(0..a_ptrs.len() as u32);
    for c in 0..key_cols {
        if matched.is_empty() {
            break;
        }
        let off = layout.offset(c);
        let ty = layout.types()[c];
        let mut keep = 0usize;
        macro_rules! compact {
            (|$sa:ident, $sb:ident| $eq:expr) => {
                for k in 0..matched.len() {
                    let p = matched[k];
                    let a = a_ptrs[p as usize];
                    let b = b_ptrs[p as usize];
                    let av = layout.is_valid(a, c);
                    let ok = if av != layout.is_valid(b, c) {
                        false
                    } else if !av {
                        true
                    } else {
                        let $sa = a.add(off);
                        let $sb = b.add(off);
                        $eq
                    };
                    if ok {
                        matched[keep] = p;
                        keep += 1;
                    } else {
                        no_match.push(p);
                    }
                }
            };
        }
        match ty {
            rexa_exec::LogicalType::Int32 | rexa_exec::LogicalType::Date => {
                compact!(|sa, sb| std::ptr::read_unaligned(sa as *const i32)
                    == std::ptr::read_unaligned(sb as *const i32));
            }
            rexa_exec::LogicalType::Int64 | rexa_exec::LogicalType::Float64 => {
                compact!(|sa, sb| std::ptr::read_unaligned(sa as *const u64)
                    == std::ptr::read_unaligned(sb as *const u64));
            }
            rexa_exec::LogicalType::Varchar => {
                compact!(|sa, sb| RexaString::read_from(sa)
                    .eq_bytes(RexaString::read_from(sb).as_bytes()));
            }
        }
        matched.truncate(keep);
    }
    no_match.sort_unstable();
}

/// Compare the first `key_cols` columns of two materialized rows (used in
/// phase 2, where both sides are rows; payload columns after the keys are
/// not compared).
///
/// # Safety
/// Both pointers must address live rows of `layout`, pinned and recomputed.
pub unsafe fn row_row_match(
    layout: &TupleDataLayout,
    key_cols: usize,
    a: *const u8,
    b: *const u8,
) -> bool {
    for c in 0..key_cols {
        let av = layout.is_valid(a, c);
        let bv = layout.is_valid(b, c);
        if av != bv {
            return false;
        }
        if !av {
            continue;
        }
        let sa = a.add(layout.offset(c));
        let sb = b.add(layout.offset(c));
        let ty = layout.types()[c];
        let eq = match ty {
            rexa_exec::LogicalType::Int32 | rexa_exec::LogicalType::Date => {
                std::ptr::read_unaligned(sa as *const i32)
                    == std::ptr::read_unaligned(sb as *const i32)
            }
            rexa_exec::LogicalType::Int64 | rexa_exec::LogicalType::Float64 => {
                std::ptr::read_unaligned(sa as *const u64)
                    == std::ptr::read_unaligned(sb as *const u64)
            }
            rexa_exec::LogicalType::Varchar => {
                let ra = RexaString::read_from(sa);
                let rb = RexaString::read_from(sb);
                ra.eq_bytes(rb.as_bytes())
            }
        };
        if !eq {
            return false;
        }
    }
    true
}

/// Find the runs of adjacent equal group keys in a chunk of column-major
/// input. `run_starts` receives the index of every row that begins a new
/// run (always including 0 for non-empty input), cleared on entry.
///
/// Equality semantics match [`rows_match`]'s input side: NULL equals NULL,
/// Float64 compares by key-normalized bit pattern (NaN == NaN, -0.0 == 0.0),
/// Varchar by bytes. The type dispatch happens once per column, not per row.
pub fn adjacent_runs(cols: &[&Vector], len: usize, run_starts: &mut Vec<u32>) {
    run_starts.clear();
    if len == 0 {
        return;
    }
    run_starts.push(0);
    if len == 1 {
        return;
    }
    macro_rules! adjacent_neq {
        ($col:expr, $v:expr, |$a:ident, $b:ident| $eq:expr, $on_neq:expr) => {{
            let validity = $col.validity();
            for i in 1..len {
                let va = validity.is_valid(i - 1);
                let vb = validity.is_valid(i);
                let eq = if va != vb {
                    false
                } else if !va {
                    true // NULL == NULL for grouping
                } else {
                    let $a = i - 1;
                    let $b = i;
                    $eq
                };
                if !eq {
                    $on_neq(i);
                }
            }
        }};
    }
    macro_rules! scan_col {
        ($col:expr, $on_neq:expr) => {
            match $col.data() {
                VectorData::I32(v) => adjacent_neq!($col, v, |a, b| v[a] == v[b], $on_neq),
                VectorData::I64(v) => adjacent_neq!($col, v, |a, b| v[a] == v[b], $on_neq),
                VectorData::F64(v) => adjacent_neq!(
                    $col,
                    v,
                    |a, b| normalize_f64_key(v[a]).to_bits() == normalize_f64_key(v[b]).to_bits(),
                    $on_neq
                ),
                VectorData::Str(v) => adjacent_neq!(
                    $col,
                    v,
                    |a, b| v.get(a).as_bytes() == v.get(b).as_bytes(),
                    $on_neq
                ),
            }
        };
    }
    match cols {
        [col] => {
            // Single key column (the common case): push run starts directly,
            // no scratch needed.
            scan_col!(col, |i: usize| run_starts.push(i as u32));
        }
        _ => {
            // Multi-column keys: a row starts a run if *any* column differs
            // from the previous row. Mark differing rows column by column,
            // then collect.
            let mut neq = vec![false; len];
            for col in cols {
                scan_col!(col, |i: usize| neq[i] = true);
            }
            for (i, &n) in neq.iter().enumerate().skip(1) {
                if n {
                    run_starts.push(i as u32);
                }
            }
        }
    }
}

/// Total ordering over the first `key_cols` columns of two materialized
/// rows. NULL sorts before any value; Int32/Date compare as i32,
/// Int64/Float64 by their materialized 8-byte pattern (floats are stored
/// key-normalized, so the order is arbitrary but total and deterministic),
/// Varchar by bytes. Returns `Ordering::Equal` exactly when
/// [`row_row_match`] returns true — the property sorted-run spilling and the
/// streaming phase-2 merge rely on.
///
/// # Safety
/// Both pointers must address live rows of `layout`, pinned and recomputed.
pub unsafe fn row_row_cmp(
    layout: &TupleDataLayout,
    key_cols: usize,
    a: *const u8,
    b: *const u8,
) -> Ordering {
    for c in 0..key_cols {
        let av = layout.is_valid(a, c);
        let bv = layout.is_valid(b, c);
        match (av, bv) {
            (false, false) => continue, // NULL == NULL for grouping
            (false, true) => return Ordering::Less,
            (true, false) => return Ordering::Greater,
            (true, true) => {}
        }
        let sa = a.add(layout.offset(c));
        let sb = b.add(layout.offset(c));
        let ord = match layout.types()[c] {
            rexa_exec::LogicalType::Int32 | rexa_exec::LogicalType::Date => {
                let va = std::ptr::read_unaligned(sa as *const i32);
                let vb = std::ptr::read_unaligned(sb as *const i32);
                va.cmp(&vb)
            }
            rexa_exec::LogicalType::Int64 | rexa_exec::LogicalType::Float64 => {
                // Bitwise u64 order: consistent with row_row_match's bitwise
                // equality for both types (floats are key-normalized before
                // materialization).
                let va = std::ptr::read_unaligned(sa as *const u64);
                let vb = std::ptr::read_unaligned(sb as *const u64);
                va.cmp(&vb)
            }
            rexa_exec::LogicalType::Varchar => {
                let ra = RexaString::read_from(sa);
                let rb = RexaString::read_from(sb);
                ra.as_bytes().cmp(rb.as_bytes())
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Order-preserving prefix of a row's *first* key column, packed into a
/// `u128`: NULL maps to 0 and every non-NULL value maps above it, in exactly
/// the order [`row_row_cmp`] assigns to column 0. Merge loops cache this per
/// run cursor so most heap comparisons settle on one integer compare; a
/// prefix tie needs the full [`row_row_cmp`] only when [`prefix_is_exact`]
/// is false (multi-column keys, or a Varchar first column where the prefix
/// covers just the first eight bytes).
///
/// # Safety
/// `row` must address a live row of `layout`, pinned and recomputed.
pub unsafe fn key_prefix(layout: &TupleDataLayout, row: *const u8) -> u128 {
    if !layout.is_valid(row, 0) {
        return 0;
    }
    let s = row.add(layout.offset(0));
    let v = match layout.types()[0] {
        rexa_exec::LogicalType::Int32 | rexa_exec::LogicalType::Date => {
            // Flip the sign bit: signed i32 order becomes unsigned order.
            u64::from(std::ptr::read_unaligned(s as *const u32) ^ 0x8000_0000)
        }
        rexa_exec::LogicalType::Int64 | rexa_exec::LogicalType::Float64 => {
            // row_row_cmp orders these by their raw 8-byte pattern already.
            std::ptr::read_unaligned(s as *const u64)
        }
        rexa_exec::LogicalType::Varchar => {
            // First eight bytes, big-endian: lexicographic on the prefix.
            let rs = RexaString::read_from(s);
            let bytes = rs.as_bytes();
            let mut buf = [0u8; 8];
            let n = bytes.len().min(8);
            buf[..n].copy_from_slice(&bytes[..n]);
            u64::from_be_bytes(buf)
        }
    };
    (1u128 << 64) | u128::from(v)
}

/// True when [`key_prefix`] order *is* the [`row_row_cmp`] order — equal
/// prefixes imply equal keys, so callers can skip the row comparator
/// entirely: exactly one key column, of a fixed-width type.
pub fn prefix_is_exact(layout: &TupleDataLayout, key_cols: usize) -> bool {
    key_cols == 1 && layout.types()[0] != rexa_exec::LogicalType::Varchar
}

/// Compare the first `key_cols` columns of two rows that live in *different*
/// layouts (e.g. a join's build and probe rows). The key columns must have
/// identical types in both layouts, in the same order, but offsets may
/// differ (validity width depends on the total column count).
///
/// # Safety
/// `a` must be a live row of `layout_a` and `b` of `layout_b`, both pinned
/// and pointer-recomputed.
pub unsafe fn row_row_match_cross(
    layout_a: &TupleDataLayout,
    layout_b: &TupleDataLayout,
    key_cols: usize,
    a: *const u8,
    b: *const u8,
) -> bool {
    debug_assert!(key_cols <= layout_a.column_count());
    debug_assert!(key_cols <= layout_b.column_count());
    for c in 0..key_cols {
        debug_assert_eq!(layout_a.types()[c], layout_b.types()[c]);
        let av = layout_a.is_valid(a, c);
        let bv = layout_b.is_valid(b, c);
        if av != bv {
            return false;
        }
        if !av {
            continue;
        }
        let sa = a.add(layout_a.offset(c));
        let sb = b.add(layout_b.offset(c));
        let eq = match layout_a.types()[c] {
            rexa_exec::LogicalType::Int32 | rexa_exec::LogicalType::Date => {
                std::ptr::read_unaligned(sa as *const i32)
                    == std::ptr::read_unaligned(sb as *const i32)
            }
            rexa_exec::LogicalType::Int64 | rexa_exec::LogicalType::Float64 => {
                std::ptr::read_unaligned(sa as *const u64)
                    == std::ptr::read_unaligned(sb as *const u64)
            }
            rexa_exec::LogicalType::Varchar => {
                let ra = RexaString::read_from(sa);
                let rb = RexaString::read_from(sb);
                ra.eq_bytes(rb.as_bytes())
            }
        };
        if !eq {
            return false;
        }
    }
    true
}
