//! Radix-partitioned tuple data (paper Section V, "Partitioning").
//!
//! Pre-aggregated tuples are materialized *directly* into partitions — one
//! [`TupleDataCollection`] per radix — avoiding a second copy. The partition
//! of a tuple is a few middle bits of its hash, taken directly below the
//! salt so that neither the salt nor the table-offset bits are reused.

use crate::collection::TupleDataCollection;
use crate::row_layout::TupleDataLayout;
use rexa_buffer::BufferManager;
use rexa_exec::hashing;
use rexa_exec::{Result, Vector};
use std::sync::Arc;

/// A set of `2^radix_bits` collections, with hash-partitioned appends.
#[derive(Debug)]
pub struct PartitionedTupleData {
    radix_bits: u32,
    partitions: Vec<TupleDataCollection>,
    /// Scratch: per-partition selection vectors reused across appends.
    sel_scratch: Vec<Vec<u32>>,
    /// Scratch: input-row index -> output slot, reused across appends.
    pos_scratch: Vec<u32>,
}

impl PartitionedTupleData {
    /// Create `2^radix_bits` empty partitions.
    pub fn new(mgr: &Arc<BufferManager>, layout: &Arc<TupleDataLayout>, radix_bits: u32) -> Self {
        assert!(radix_bits <= hashing::MAX_RADIX_BITS);
        let n = 1usize << radix_bits;
        PartitionedTupleData {
            radix_bits,
            partitions: (0..n)
                .map(|_| TupleDataCollection::new(Arc::clone(mgr), Arc::clone(layout)))
                .collect(),
            sel_scratch: vec![Vec::new(); n],
            pos_scratch: Vec::new(),
        }
    }

    /// Number of radix bits.
    pub fn radix_bits(&self) -> u32 {
        self.radix_bits
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The partitions.
    pub fn partitions(&self) -> &[TupleDataCollection] {
        &self.partitions
    }

    /// Mutable access to one partition.
    pub fn partition_mut(&mut self, i: usize) -> &mut TupleDataCollection {
        &mut self.partitions[i]
    }

    /// Take ownership of one partition, leaving an empty one behind
    /// (phase 2 consumes partitions one at a time and destroys their pages
    /// eagerly).
    pub fn take_partition(&mut self, i: usize) -> TupleDataCollection {
        let mgr = Arc::clone(self.partitions[i].mgr_ref());
        let layout = Arc::clone(self.partitions[i].layout());
        std::mem::replace(
            &mut self.partitions[i],
            TupleDataCollection::new(mgr, layout),
        )
    }

    /// Total rows across partitions.
    pub fn rows(&self) -> usize {
        self.partitions.iter().map(|p| p.rows()).sum()
    }

    /// Total bytes of pages across partitions.
    pub fn data_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.data_bytes()).sum()
    }

    /// Append the rows selected by `sel`, routing each to its hash's radix
    /// partition. If `out_ptrs` is given it receives each appended row's
    /// address *in the order of `sel`* (the order the hash table expects).
    pub fn append(
        &mut self,
        cols: &[&Vector],
        hashes: &[u64],
        sel: &[u32],
        out_ptrs: Option<&mut Vec<*mut u8>>,
    ) -> Result<()> {
        for s in &mut self.sel_scratch {
            s.clear();
        }
        for &i in sel {
            let p = hashing::radix(hashes[i as usize], self.radix_bits);
            self.sel_scratch[p].push(i);
        }
        if let Some(out) = out_ptrs {
            // Remember where each appended row will land in `out`: input-row
            // index -> position within `sel` (bounded by the vector size, so
            // a flat scratch array beats a map on this hot path).
            let base = out.len();
            out.resize(base + sel.len(), std::ptr::null_mut());
            let max_row = sel.iter().copied().max().unwrap_or(0) as usize;
            if self.pos_scratch.len() <= max_row {
                self.pos_scratch.resize(max_row + 1, 0);
            }
            for (k, &i) in sel.iter().enumerate() {
                self.pos_scratch[i as usize] = (base + k) as u32;
            }
            let mut scratch = Vec::new();
            for p in 0..self.partitions.len() {
                if self.sel_scratch[p].is_empty() {
                    continue;
                }
                scratch.clear();
                let sel_p = std::mem::take(&mut self.sel_scratch[p]);
                self.partitions[p].append(cols, hashes, &sel_p, Some(&mut scratch))?;
                for (k, &i) in sel_p.iter().enumerate() {
                    out[self.pos_scratch[i as usize] as usize] = scratch[k];
                }
                self.sel_scratch[p] = sel_p;
            }
        } else {
            for p in 0..self.partitions.len() {
                if self.sel_scratch[p].is_empty() {
                    continue;
                }
                let sel_p = std::mem::take(&mut self.sel_scratch[p]);
                self.partitions[p].append(cols, hashes, &sel_p, None)?;
                self.sel_scratch[p] = sel_p;
            }
        }
        Ok(())
    }

    /// Seal the unsealed tail of every partition as one sorted run each
    /// (see [`TupleDataCollection::seal_sorted_run`] for the pin/layout
    /// contract). Returns the number of runs recorded. Called right before
    /// a pin release when the hybrid spill path wants phase 2 to merge
    /// sorted runs instead of re-hashing.
    pub fn seal_sorted_runs(&mut self, key_cols: usize) -> u64 {
        let mut runs = 0;
        for p in &mut self.partitions {
            if p.seal_sorted_run(key_cols) {
                runs += 1;
            }
        }
        runs
    }

    /// Release append pins on every partition (hash-table reset).
    pub fn release_pins(&mut self) {
        for p in &mut self.partitions {
            p.release_pins();
        }
    }

    /// Merge another partitioned set into this one, partition-wise
    /// (page-list moves, no copying). Both must have equal radix bits.
    pub fn combine(&mut self, mut other: PartitionedTupleData) {
        assert_eq!(self.radix_bits, other.radix_bits, "radix bits mismatch");
        for (dst, src) in self.partitions.iter_mut().zip(other.partitions.drain(..)) {
            dst.merge_from(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexa_buffer::BufferManagerConfig;
    use rexa_exec::LogicalType;
    use rexa_storage::scratch_dir;

    fn setup(bits: u32) -> (Arc<BufferManager>, PartitionedTupleData) {
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(usize::MAX)
                .page_size(4 << 10)
                .temp_dir(scratch_dir("part").unwrap()),
        )
        .unwrap();
        let layout = Arc::new(TupleDataLayout::new(vec![LogicalType::Int64], vec![]));
        let parts = PartitionedTupleData::new(&mgr, &layout, bits);
        (mgr, parts)
    }

    #[test]
    fn routing_follows_radix_bits() {
        let (_mgr, mut parts) = setup(3);
        assert_eq!(parts.partition_count(), 8);
        let keys = Vector::from_i64((0..1000).collect());
        let hashes = hashing::hash_columns(&[&keys], 1000);
        let sel: Vec<u32> = (0..1000).collect();
        let mut ptrs = Vec::new();
        parts
            .append(&[&keys], &hashes, &sel, Some(&mut ptrs))
            .unwrap();
        assert_eq!(parts.rows(), 1000);
        assert_eq!(ptrs.len(), 1000);
        assert!(ptrs.iter().all(|p| !p.is_null()));
        // Row i's materialized hash must route to the partition it is in;
        // verify via the hash stored in the row.
        let layout = parts.partitions()[0].layout().clone();
        for (i, &p) in ptrs.iter().enumerate() {
            let h = unsafe { layout.read_hash(p) };
            assert_eq!(h, hashes[i], "row {i}");
        }
        // Partition sizes are roughly balanced for uniform keys.
        let sizes: Vec<usize> = parts.partitions().iter().map(|p| p.rows()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes.iter().all(|&s| s > 60), "{sizes:?}");
    }

    #[test]
    fn out_ptrs_preserve_sel_order() {
        let (_mgr, mut parts) = setup(4);
        let keys = Vector::from_i64(vec![5, 3, 5, 9]);
        let hashes = hashing::hash_columns(&[&keys], 4);
        // Deliberately shuffled selection.
        let sel = [2u32, 0, 3, 1];
        let mut ptrs = Vec::new();
        parts
            .append(&[&keys], &hashes, &sel, Some(&mut ptrs))
            .unwrap();
        let layout = parts.partitions()[0].layout().clone();
        for (k, &i) in sel.iter().enumerate() {
            let h = unsafe { layout.read_hash(ptrs[k]) };
            assert_eq!(h, hashes[i as usize], "slot {k} holds sel[{k}]={i}");
        }
    }

    #[test]
    fn zero_radix_bits_is_single_partition() {
        let (_mgr, mut parts) = setup(0);
        assert_eq!(parts.partition_count(), 1);
        let keys = Vector::from_i64(vec![1, 2, 3]);
        let hashes = hashing::hash_columns(&[&keys], 3);
        parts.append(&[&keys], &hashes, &[0, 1, 2], None).unwrap();
        assert_eq!(parts.partitions()[0].rows(), 3);
    }

    #[test]
    fn combine_moves_rows_partitionwise() {
        let (mgr, mut a) = setup(2);
        let layout = a.partitions()[0].layout().clone();
        let mut b = PartitionedTupleData::new(&mgr, &layout, 2);
        let keys = Vector::from_i64((0..100).collect());
        let hashes = hashing::hash_columns(&[&keys], 100);
        let sel: Vec<u32> = (0..100).collect();
        a.append(&[&keys], &hashes, &sel, None).unwrap();
        b.append(&[&keys], &hashes, &sel, None).unwrap();
        let a_sizes: Vec<usize> = a.partitions().iter().map(|p| p.rows()).collect();
        a.release_pins();
        b.release_pins();
        a.combine(b);
        assert_eq!(a.rows(), 200);
        for (p, &before) in a.partitions().iter().zip(&a_sizes) {
            assert_eq!(p.rows(), before * 2, "same keys, same routing");
        }
    }

    #[test]
    fn take_partition_leaves_empty_slot() {
        let (_mgr, mut parts) = setup(2);
        let keys = Vector::from_i64((0..50).collect());
        let hashes = hashing::hash_columns(&[&keys], 50);
        let sel: Vec<u32> = (0..50).collect();
        parts.append(&[&keys], &hashes, &sel, None).unwrap();
        parts.release_pins();
        let total = parts.rows();
        let taken = parts.take_partition(1);
        assert_eq!(parts.partitions()[1].rows(), 0);
        assert_eq!(parts.rows() + taken.rows(), total);
    }
}
