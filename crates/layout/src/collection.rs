//! `TupleDataCollection`: materialized rows on buffer-managed pages.
//!
//! Fixed-size rows live on *row pages*; string bytes live on *heap pages*
//! (requirement 2 of the paper's page layout). Every append lands a batch of
//! rows contiguously on one row page with its heap data contiguously on one
//! heap page — appends are split to maintain this — and a small
//! `ChunkMeta` records the line-up. That metadata is all that is needed to
//! recompute heap pointers lazily after a spill/reload cycle (paper
//! Figure 2): when a heap page is re-pinned at a different base address,
//! exactly the rows of the chunks that reference it get their pointers
//! adjusted in place by `new_base - old_base`.
//!
//! Pin discipline:
//! * while appending (phase 1 of the aggregation), the pages written since
//!   the last [`TupleDataCollection::release_pins`] stay pinned, because the
//!   hash table holds raw pointers into them;
//! * [`TupleDataCollection::release_pins`] (called when the hash table is
//!   reset) unpins everything, letting the buffer manager spill any of it —
//!   the operator never writes to storage itself;
//! * [`TupleDataCollection::pin_all`] (phase 2) pins the whole collection,
//!   performs any pending pointer recomputation, and returns a
//!   [`CollectionPins`] guard that keeps the rows addressable.

use crate::row_layout::TupleDataLayout;
use crate::string::{RexaString, INLINE_LEN};
use rexa_buffer::{BlockHandle, BufferManager, PinGuard};
use rexa_exec::vector::VectorData;
use rexa_exec::{DataChunk, Error, LogicalType, Result, Vector};
use std::sync::Arc;

/// Sentinel: a chunk with no heap data.
const NO_HEAP: u32 = u32::MAX;

#[derive(Debug)]
struct RowPage {
    handle: Arc<BlockHandle>,
    rows: usize,
}

#[derive(Debug)]
struct HeapPage {
    handle: Arc<BlockHandle>,
    used: usize,
    size: usize,
}

/// How one appended batch of rows lines up with pages: `count` rows starting
/// at `row_start` on `row_page`, heap data (if any) on `heap_page`, written
/// while that heap page sat at `heap_base`. This is the paper's Figure 2
/// metadata: enough to recompute exactly the affected pointers after the
/// heap page returns from disk at a different address.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    row_page: u32,
    row_start: u32,
    count: u32,
    heap_page: u32,
    heap_base: u64,
}

/// Pins over an entire collection, returned by
/// [`TupleDataCollection::pin_all`]. Row pointers derived from it stay valid
/// while it lives.
#[derive(Debug)]
pub struct CollectionPins {
    row: Vec<PinGuard>,
    heap: Vec<PinGuard>,
}

/// A spillable collection of fixed-size rows plus their heap data.
#[derive(Debug)]
pub struct TupleDataCollection {
    layout: Arc<TupleDataLayout>,
    mgr: Arc<BufferManager>,
    row_pages: Vec<RowPage>,
    heap_pages: Vec<HeapPage>,
    chunks: Vec<ChunkMeta>,
    rows: usize,
    rows_per_page: usize,
    /// Pins of pages written since the last `release_pins`.
    active_row_pins: Vec<(usize, PinGuard)>,
    active_heap_pins: Vec<(usize, PinGuard)>,
    /// Index of the row/heap page currently being appended to, if pinned.
    cur_row: Option<usize>,
    cur_heap: Option<usize>,
    /// Sorted-run bookkeeping for the hybrid hash/sort spill path: ranges of
    /// logical rows (chunk order) whose contents are sorted by the leading
    /// key columns, recorded by [`Self::seal_sorted_run`].
    sorted_runs: Vec<(usize, usize)>,
    /// Rows already covered by sealed runs; rows past this form the tail.
    sorted_prefix: usize,
    /// Chunks already covered by sealed runs.
    sorted_chunks: usize,
}

impl TupleDataCollection {
    /// An empty collection using `mgr`'s pages.
    pub fn new(mgr: Arc<BufferManager>, layout: Arc<TupleDataLayout>) -> Self {
        let rows_per_page = mgr.page_size() / layout.row_width();
        assert!(rows_per_page > 0, "row wider than a page");
        TupleDataCollection {
            layout,
            mgr,
            row_pages: Vec::new(),
            heap_pages: Vec::new(),
            chunks: Vec::new(),
            rows: 0,
            rows_per_page,
            active_row_pins: Vec::new(),
            active_heap_pins: Vec::new(),
            cur_row: None,
            cur_heap: None,
            sorted_runs: Vec::new(),
            sorted_prefix: 0,
            sorted_chunks: 0,
        }
    }

    /// The row layout.
    pub fn layout(&self) -> &Arc<TupleDataLayout> {
        &self.layout
    }

    /// The buffer manager this collection allocates from.
    pub fn mgr_ref(&self) -> &Arc<BufferManager> {
        &self.mgr
    }

    /// Total rows materialized.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of appended batches (used by scans).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total bytes of pages owned by this collection (resident or spilled).
    pub fn data_bytes(&self) -> usize {
        self.row_pages.len() * self.mgr.page_size()
            + self.heap_pages.iter().map(|h| h.size).sum::<usize>()
    }

    /// Bytes of this collection's pages that are currently *not* resident —
    /// they were evicted and live in spill files (or the database file).
    /// A nonzero value before [`Self::pin_all`] means pinning will read
    /// them back from storage: the partition "went external".
    pub fn unloaded_bytes(&self) -> usize {
        let page = self.mgr.page_size();
        self.row_pages
            .iter()
            .filter(|p| !p.handle.is_loaded())
            .map(|_| page)
            .sum::<usize>()
            + self
                .heap_pages
                .iter()
                .filter(|h| !h.handle.is_loaded())
                .map(|h| h.size)
                .sum::<usize>()
    }

    /// Ask the buffer manager to load this collection's spilled pages in the
    /// background, so a later [`Self::pin_all`] finds them resident instead
    /// of stalling on synchronous reads. Purely advisory: pages are only
    /// loaded into free headroom (never by evicting working memory) and a
    /// prefetch that cannot be admitted is simply skipped. Returns the number
    /// of reads submitted.
    pub fn prefetch_all(&self) -> usize {
        let mut submitted = 0;
        for p in &self.row_pages {
            if self.mgr.prefetch(&p.handle) {
                submitted += 1;
            }
        }
        for h in &self.heap_pages {
            if self.mgr.prefetch(&h.handle) {
                submitted += 1;
            }
        }
        submitted
    }

    /// Heap bytes a value needs (non-inlined strings only).
    fn heap_need(cols: &[&Vector], var_cols: &[usize], row: usize) -> usize {
        let mut need = 0;
        for &c in var_cols {
            let col = cols[c];
            if col.validity().is_valid(row) {
                let len = col.str_at(row).len();
                if len > INLINE_LEN {
                    need += len;
                }
            }
        }
        need
    }

    fn new_row_page(&mut self) -> Result<()> {
        let (handle, pin) = self.mgr.allocate_page()?;
        let idx = self.row_pages.len();
        self.row_pages.push(RowPage { handle, rows: 0 });
        self.active_row_pins.push((idx, pin));
        self.cur_row = Some(idx);
        Ok(())
    }

    fn new_heap_page(&mut self) -> Result<()> {
        let (handle, pin) = self.mgr.allocate_page()?;
        let idx = self.heap_pages.len();
        self.heap_pages.push(HeapPage {
            handle,
            used: 0,
            size: self.mgr.page_size(),
        });
        self.active_heap_pins.push((idx, pin));
        self.cur_heap = Some(idx);
        Ok(())
    }

    /// Allocate a dedicated variable-size heap page for one oversized value
    /// batch. Never becomes the current heap page.
    fn oversized_heap_page(&mut self, size: usize) -> Result<usize> {
        let (handle, pin) = self.mgr.allocate_variable(size)?;
        let idx = self.heap_pages.len();
        self.heap_pages.push(HeapPage {
            handle,
            used: 0,
            size,
        });
        self.active_heap_pins.push((idx, pin));
        Ok(idx)
    }

    fn active_row_pin(&self, page: usize) -> &PinGuard {
        &self
            .active_row_pins
            .iter()
            .find(|(i, _)| *i == page)
            .expect("current row page must be pinned")
            .1
    }

    fn active_heap_pin(&self, page: usize) -> &PinGuard {
        &self
            .active_heap_pins
            .iter()
            .find(|(i, _)| *i == page)
            .expect("current heap page must be pinned")
            .1
    }

    /// Append the rows selected by `sel` from `cols` (with their precomputed
    /// `hashes`), materializing them row-major into pages. Pushes each new
    /// row's address to `out_ptrs` if given; the addresses stay valid until
    /// [`TupleDataCollection::release_pins`].
    pub fn append(
        &mut self,
        cols: &[&Vector],
        hashes: &[u64],
        sel: &[u32],
        mut out_ptrs: Option<&mut Vec<*mut u8>>,
    ) -> Result<()> {
        debug_assert_eq!(cols.len(), self.layout.column_count());
        let var_cols = self.layout.var_cols().to_vec();
        let page_size = self.mgr.page_size();
        let mut i = 0usize;
        while i < sel.len() {
            // Make sure there is a pinned row page with space. After a
            // release_pins (hash-table reset) the last page usually has room
            // left: re-pin and continue filling it instead of wasting the
            // tail (the buffer manager reloads it if it was spilled).
            if self.cur_row.is_none() {
                if let Some(last) = self.row_pages.len().checked_sub(1) {
                    if self.row_pages[last].rows < self.rows_per_page {
                        let pin = self.mgr.pin(&self.row_pages[last].handle)?;
                        self.active_row_pins.push((last, pin));
                        self.cur_row = Some(last);
                    }
                }
            }
            let need_new_row_page = match self.cur_row {
                None => true,
                Some(p) => self.row_pages[p].rows == self.rows_per_page,
            };
            if need_new_row_page {
                self.new_row_page()?;
            }
            let row_page = self.cur_row.unwrap();
            let rows_avail = self.rows_per_page - self.row_pages[row_page].rows;

            // Determine the sub-batch: contiguous rows whose heap data fits
            // on one heap page.
            let mut take = 0usize;
            let mut heap_total = 0usize;
            let mut heap_page = NO_HEAP as usize;
            if var_cols.is_empty() {
                take = rows_avail.min(sel.len() - i);
            } else {
                let first_need = Self::heap_need(cols, &var_cols, sel[i] as usize);
                if first_need > page_size {
                    // A single row larger than a page: dedicated heap page.
                    heap_page = self.oversized_heap_page(first_need)?;
                    heap_total = first_need;
                    take = 1;
                } else {
                    // Resume the last standard heap page if it still has
                    // room (chunks record their own base pointer, so chunks
                    // written in different pin epochs coexist on one page).
                    if self.cur_heap.is_none() {
                        if let Some(last) = self.heap_pages.len().checked_sub(1) {
                            let hp = &self.heap_pages[last];
                            if hp.size == page_size && hp.size - hp.used >= first_need.max(1) {
                                let pin = self.mgr.pin(&hp.handle)?;
                                self.active_heap_pins.push((last, pin));
                                self.cur_heap = Some(last);
                            }
                        }
                    }
                    let need_new_heap = match self.cur_heap {
                        None => true,
                        Some(h) => {
                            first_need > 0
                                && self.heap_pages[h].size - self.heap_pages[h].used < first_need
                        }
                    };
                    if need_new_heap {
                        self.new_heap_page()?;
                    }
                    let hp = self.cur_heap.unwrap();
                    let heap_avail = self.heap_pages[hp].size - self.heap_pages[hp].used;
                    while take < rows_avail && i + take < sel.len() {
                        let need = Self::heap_need(cols, &var_cols, sel[i + take] as usize);
                        if need > page_size || heap_total + need > heap_avail {
                            break;
                        }
                        heap_total += need;
                        take += 1;
                    }
                    if take == 0 {
                        // Next row needs a fresh (or oversized) heap page.
                        self.cur_heap = None;
                        continue;
                    }
                    heap_page = hp;
                }
            }
            debug_assert!(take > 0);

            // Scatter the sub-batch.
            let row_start = self.row_pages[row_page].rows;
            let row_base = self.active_row_pin(row_page).base_ptr();
            let (mut heap_ptr, heap_base) = if heap_total > 0 {
                let pin = self.active_heap_pin(heap_page);
                let used = self.heap_pages[heap_page].used;
                // SAFETY: offsets stay within the page (checked above).
                (unsafe { pin.base_ptr().add(used) }, pin.base_ptr() as u64)
            } else {
                (std::ptr::null_mut(), 0)
            };
            for k in 0..take {
                let input_row = sel[i + k] as usize;
                // SAFETY: row_start + k < rows_per_page by construction.
                let row = unsafe { row_base.add((row_start + k) * self.layout.row_width()) };
                unsafe {
                    self.scatter_row(cols, input_row, hashes[input_row], row, &mut heap_ptr);
                }
                if let Some(out) = out_ptrs.as_deref_mut() {
                    out.push(row);
                }
            }

            self.chunks.push(ChunkMeta {
                row_page: row_page as u32,
                row_start: row_start as u32,
                count: take as u32,
                heap_page: if heap_total > 0 {
                    heap_page as u32
                } else {
                    NO_HEAP
                },
                heap_base,
            });
            self.row_pages[row_page].rows += take;
            if heap_total > 0 {
                self.heap_pages[heap_page].used += heap_total;
            }
            self.rows += take;
            i += take;
        }
        Ok(())
    }

    /// Write one row: validity, hash, columns, and a zeroed aggregate-state
    /// region (pages are uninitialized; states must start at zero).
    ///
    /// # Safety
    /// `row` must point to `row_width` writable bytes; `heap_ptr` must have
    /// room for the row's non-inlined strings.
    unsafe fn scatter_row(
        &self,
        cols: &[&Vector],
        input_row: usize,
        hash: u64,
        row: *mut u8,
        heap_ptr: &mut *mut u8,
    ) {
        let (aggr_off, aggr_len) = self.layout.aggr_region();
        if aggr_len > 0 {
            std::ptr::write_bytes(row.add(aggr_off), 0, aggr_len);
        }
        self.layout.write_hash(row, hash);
        for (c, col) in cols.iter().enumerate() {
            let valid = col.validity().is_valid(input_row);
            self.layout.set_valid(row, c, valid);
            let dst = row.add(self.layout.offset(c));
            match col.data() {
                VectorData::I32(v) => {
                    std::ptr::write_unaligned(dst as *mut i32, if valid { v[input_row] } else { 0 })
                }
                VectorData::I64(v) => {
                    std::ptr::write_unaligned(dst as *mut i64, if valid { v[input_row] } else { 0 })
                }
                VectorData::F64(v) => std::ptr::write_unaligned(
                    dst as *mut f64,
                    if valid {
                        // Keys must materialize in normalized form (-0.0 ->
                        // 0.0) so bitwise row comparisons agree with hashing.
                        rexa_exec::hashing::normalize_f64_key(v[input_row])
                    } else {
                        0.0
                    },
                ),
                VectorData::Str(v) => {
                    let s = if valid {
                        v.get(input_row).as_bytes()
                    } else {
                        b""
                    };
                    let rs = if s.len() <= INLINE_LEN {
                        RexaString::inline(s)
                    } else {
                        std::ptr::copy_nonoverlapping(s.as_ptr(), *heap_ptr, s.len());
                        let rs = RexaString::pointed(s, *heap_ptr);
                        *heap_ptr = heap_ptr.add(s.len());
                        rs
                    };
                    rs.write_to(dst);
                }
            }
        }
    }

    /// The sorted-run ranges recorded so far, as `(start_row, len)` over
    /// logical row indices (the order [`Self::all_row_ptrs`] walks).
    pub fn sorted_runs(&self) -> &[(usize, usize)] {
        &self.sorted_runs
    }

    /// True when the recorded runs tile the whole collection with no gaps —
    /// the precondition for phase 2 to merge runs instead of re-hashing.
    /// Rows appended after the last seal (or before a run-sort was enabled)
    /// leave a gap, and callers fall back to the hash path.
    pub fn runs_cover_all_rows(&self) -> bool {
        let mut next = 0usize;
        for &(start, len) in &self.sorted_runs {
            if start != next {
                return false;
            }
            next += len;
        }
        next == self.rows
    }

    /// Sort the unsealed tail (every row appended since the last seal) by
    /// the first `key_cols` columns and record it as one sorted run, so that
    /// a spilled partition can be phase-2-merged instead of re-hashed. The
    /// slot positions and chunk metadata stay fixed; only row contents move.
    /// Returns true if a (non-empty) run was recorded.
    ///
    /// Must be called *before* [`Self::release_pins`]: the tail's pages are
    /// still append-pinned, which is what makes the in-place permutation
    /// possible without I/O. Any raw row pointers into the tail (hash-table
    /// entries, an in-stream aggregator's open group) are invalidated —
    /// callers seal exactly when they are about to drop those anyway.
    ///
    /// # Panics
    /// If the layout has var-size columns (heap pointers would need fixups;
    /// the chooser never enables run-sorting for string layouts).
    pub fn seal_sorted_run(&mut self, key_cols: usize) -> bool {
        let tail_rows = self.rows - self.sorted_prefix;
        if tail_rows == 0 {
            return false;
        }
        assert!(
            self.layout.var_cols().is_empty(),
            "sorted runs require a heapless layout"
        );
        // Gather the tail's row addresses in logical (chunk) order. Every
        // tail page was written since the last release_pins, so it is still
        // append-pinned.
        let rw = self.layout.row_width();
        let mut slots: Vec<*mut u8> = Vec::with_capacity(tail_rows);
        for meta in &self.chunks[self.sorted_chunks..] {
            let base = self.active_row_pin(meta.row_page as usize).base_ptr();
            for k in 0..meta.count as usize {
                // SAFETY: within the page by construction.
                slots.push(unsafe { base.add((meta.row_start as usize + k) * rw) });
            }
        }
        debug_assert_eq!(slots.len(), tail_rows);
        let layout = Arc::clone(&self.layout);
        // Already-sorted fast path: when the in-stream aggregator fed this
        // tail from genuinely sorted input, the append order *is* key order,
        // and one adjacency scan replaces the sort plus the two-pass
        // permutation — sealing a run on sorted data costs O(n) prefix
        // compares (`key_prefix`), with the row comparator consulted only on
        // prefix ties it cannot settle.
        // SAFETY (throughout): every slot addresses a live row of this
        // layout on a page gathered while append-pinned.
        let exact = crate::matcher::prefix_is_exact(&layout, key_cols);
        let mut already_sorted = true;
        let mut prev = unsafe { crate::matcher::key_prefix(&layout, slots[0]) };
        for i in 1..tail_rows {
            let cur = unsafe { crate::matcher::key_prefix(&layout, slots[i]) };
            let ok = match prev.cmp(&cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => {
                    exact
                        || unsafe {
                            crate::matcher::row_row_cmp(&layout, key_cols, slots[i - 1], slots[i])
                        }
                        .is_le()
                }
            };
            if !ok {
                already_sorted = false;
                break;
            }
            prev = cur;
        }
        if !already_sorted {
            // Stable sort keeps equal keys in append order: the run layout
            // is a deterministic function of the append sequence.
            let mut order: Vec<u32> = (0..tail_rows as u32).collect();
            order.sort_by(|&a, &b| unsafe {
                crate::matcher::row_row_cmp(&layout, key_cols, slots[a as usize], slots[b as usize])
            });
            // Permute row bytes into sorted order through a transient buffer.
            let mut buf = vec![0u8; tail_rows * rw];
            for (k, &i) in order.iter().enumerate() {
                // SAFETY: slots hold full rows; buf has tail_rows * rw bytes.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        slots[i as usize] as *const u8,
                        buf.as_mut_ptr().add(k * rw),
                        rw,
                    );
                }
            }
            for (k, &slot) in slots.iter().enumerate() {
                // SAFETY: same bounds as above.
                unsafe {
                    std::ptr::copy_nonoverlapping(buf.as_ptr().add(k * rw), slot, rw);
                }
            }
        }
        self.sorted_runs.push((self.sorted_prefix, tail_rows));
        self.sorted_prefix = self.rows;
        self.sorted_chunks = self.chunks.len();
        true
    }

    /// Unpin everything: from here on the buffer manager may spill any page
    /// of this collection. Row pointers handed out by `append` become
    /// invalid. Called when the aggregation hash table is reset.
    pub fn release_pins(&mut self) {
        self.active_row_pins.clear();
        self.active_heap_pins.clear();
        self.cur_row = None;
        self.cur_heap = None;
    }

    /// True if any pages are currently pinned for appending.
    pub fn has_active_pins(&self) -> bool {
        !self.active_row_pins.is_empty() || !self.active_heap_pins.is_empty()
    }

    /// Move all pages of `other` into `self` (O(pages), no row copying) —
    /// how thread-local partitions are combined into the shared state.
    ///
    /// # Panics
    /// If either collection still holds append pins or layouts differ.
    pub fn merge_from(&mut self, mut other: TupleDataCollection) {
        assert!(
            !self.has_active_pins() && !other.has_active_pins(),
            "merge requires released pins"
        );
        assert_eq!(self.layout, other.layout, "layout mismatch");
        let row_off = self.row_pages.len() as u32;
        let heap_off = self.heap_pages.len() as u32;
        self.row_pages.append(&mut other.row_pages);
        self.heap_pages.append(&mut other.heap_pages);
        for mut meta in other.chunks.drain(..) {
            meta.row_page += row_off;
            if meta.heap_page != NO_HEAP {
                meta.heap_page += heap_off;
            }
            self.chunks.push(meta);
        }
        // Carry the other side's sorted runs over, shifted past our rows.
        // Any unsealed tail (on either side) becomes a coverage gap that
        // runs_cover_all_rows reports; future seals only cover rows appended
        // after this merge.
        let row_base = self.rows;
        for &(start, len) in &other.sorted_runs {
            self.sorted_runs.push((row_base + start, len));
        }
        self.rows += other.rows;
        self.sorted_prefix = self.rows;
        self.sorted_chunks = self.chunks.len();
    }

    /// Pin every page of the collection and perform any pending pointer
    /// recomputation (paper Section IV, "Pointer Recomputation"): for every
    /// heap page whose base address changed since its pointers were written,
    /// rewrite the heap pointers of exactly the rows that reference it.
    pub fn pin_all(&mut self) -> Result<CollectionPins> {
        self.release_pins();
        let row: Vec<PinGuard> = self
            .row_pages
            .iter()
            .map(|p| self.mgr.pin(&p.handle))
            .collect::<Result<_>>()?;
        let heap: Vec<PinGuard> = self
            .heap_pages
            .iter()
            .map(|p| self.mgr.pin(&p.handle))
            .collect::<Result<_>>()?;

        for meta in &mut self.chunks {
            if meta.heap_page == NO_HEAP {
                continue;
            }
            let new_base = heap[meta.heap_page as usize].base_ptr() as u64;
            if new_base == meta.heap_base {
                continue; // page did not move: RAM performance unaffected
            }
            let old_base = meta.heap_base;
            let base = row[meta.row_page as usize].base_ptr();
            for k in 0..meta.count as usize {
                // SAFETY: rows were written by `append`; pages pinned.
                unsafe {
                    let r = base.add((meta.row_start as usize + k) * self.layout.row_width());
                    for &c in self.layout.var_cols() {
                        if !self.layout.is_valid(r, c) {
                            continue;
                        }
                        let slot = r.add(self.layout.offset(c));
                        let mut s = RexaString::read_from(slot);
                        if !s.is_inlined() {
                            s.set_pointer(s.pointer() - old_base + new_base);
                            s.write_to(slot);
                        }
                    }
                }
            }
            meta.heap_base = new_base;
        }
        Ok(CollectionPins { row, heap })
    }

    /// The addresses of the rows of batch `chunk_idx`, valid while `pins`
    /// lives.
    pub fn chunk_row_ptrs(&self, pins: &CollectionPins, chunk_idx: usize, out: &mut Vec<*mut u8>) {
        let meta = self.chunks[chunk_idx];
        let base = pins.row[meta.row_page as usize].base_ptr();
        for k in 0..meta.count as usize {
            // SAFETY: within the page by construction.
            out.push(unsafe { base.add((meta.row_start as usize + k) * self.layout.row_width()) });
        }
    }

    /// All row addresses, batch order. Valid while `pins` lives.
    pub fn all_row_ptrs(&self, pins: &CollectionPins) -> Vec<*mut u8> {
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.chunks.len() {
            self.chunk_row_ptrs(pins, i, &mut out);
        }
        out
    }

    /// Read the layout's columns from materialized rows back into an owned
    /// [`DataChunk`] (row-major → column-major conversion).
    ///
    /// # Safety
    /// Every pointer in `rows` must address a live row of this collection
    /// while its pages are pinned (e.g. obtained from
    /// [`TupleDataCollection::all_row_ptrs`] under the same `pins`).
    pub unsafe fn gather(&self, rows: &[*mut u8]) -> DataChunk {
        gather_rows(&self.layout, rows)
    }

    /// Verify internal consistency (tests and debug builds).
    pub fn verify(&self) -> Result<()> {
        let rows_in_pages: usize = self.row_pages.iter().map(|p| p.rows).sum();
        if rows_in_pages != self.rows {
            return Err(Error::Internal(format!(
                "row count mismatch: pages say {rows_in_pages}, collection says {}",
                self.rows
            )));
        }
        let rows_in_chunks: usize = self.chunks.iter().map(|c| c.count as usize).sum();
        if rows_in_chunks != self.rows {
            return Err(Error::Internal("chunk metadata count mismatch".into()));
        }
        for hp in &self.heap_pages {
            if hp.used > hp.size {
                return Err(Error::Internal("heap page overflow".into()));
            }
        }
        Ok(())
    }
}

/// Read the layout's columns from arbitrary materialized rows into an owned
/// [`DataChunk`]. Shared by collection scans and by operators (e.g. the hash
/// join) that assemble output from rows of several collections.
///
/// # Safety
/// Every pointer in `rows` must address a live row of `layout` whose row and
/// heap pages are pinned and pointer-recomputed.
pub unsafe fn gather_rows(layout: &TupleDataLayout, rows: &[*mut u8]) -> DataChunk {
    let mut columns = Vec::with_capacity(layout.column_count());
    for (c, &ty) in layout.types().iter().enumerate() {
        let off = layout.offset(c);
        let mut col = Vector::empty(ty);
        for &r in rows {
            let valid = layout.is_valid(r, c);
            match ty {
                LogicalType::Int32 | LogicalType::Date => {
                    let v = std::ptr::read_unaligned(r.add(off) as *const i32);
                    push_fixed(&mut col, ty, valid, |col| match ty {
                        LogicalType::Date => col.push_value(&rexa_exec::Value::Date(v)),
                        _ => col.push_value(&rexa_exec::Value::Int32(v)),
                    });
                }
                LogicalType::Int64 => {
                    let v = std::ptr::read_unaligned(r.add(off) as *const i64);
                    push_fixed(&mut col, ty, valid, |col| {
                        col.push_value(&rexa_exec::Value::Int64(v))
                    });
                }
                LogicalType::Float64 => {
                    let v = std::ptr::read_unaligned(r.add(off) as *const f64);
                    push_fixed(&mut col, ty, valid, |col| {
                        col.push_value(&rexa_exec::Value::Float64(v))
                    });
                }
                LogicalType::Varchar => {
                    if valid {
                        let s = RexaString::read_from(r.add(off));
                        let text = std::str::from_utf8_unchecked(s.as_bytes());
                        col.push_value(&rexa_exec::Value::Varchar(text.to_string()))
                            .expect("type matches");
                    } else {
                        col.push_value(&rexa_exec::Value::Null).expect("null ok");
                    }
                }
            }
        }
        columns.push(col);
    }
    DataChunk::new(columns)
}

fn push_fixed(
    col: &mut Vector,
    _ty: LogicalType,
    valid: bool,
    push: impl FnOnce(&mut Vector) -> Result<()>,
) {
    if valid {
        push(col).expect("type matches");
    } else {
        col.push_value(&rexa_exec::Value::Null).expect("null ok");
    }
}

impl CollectionPins {
    /// Number of pinned row pages.
    pub fn row_page_count(&self) -> usize {
        self.row.len()
    }

    /// Number of pinned heap pages (the guards exist to keep string data
    /// addressable; they are not otherwise read).
    pub fn heap_page_count(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexa_buffer::{BufferManagerConfig, EvictionPolicy};
    use rexa_exec::{hashing, Value};
    use rexa_storage::scratch_dir;

    const PAGE: usize = 1024;

    fn mgr(limit_pages: usize) -> Arc<BufferManager> {
        BufferManager::new(
            BufferManagerConfig::with_limit(limit_pages * PAGE)
                .page_size(PAGE)
                .policy(EvictionPolicy::Mixed)
                .temp_dir(scratch_dir("layout").unwrap()),
        )
        .unwrap()
    }

    fn layout_is() -> Arc<TupleDataLayout> {
        Arc::new(TupleDataLayout::new(
            vec![LogicalType::Int64, LogicalType::Varchar],
            vec![],
        ))
    }

    fn test_columns(n: usize) -> (Vector, Vector) {
        let keys: Vec<i64> = (0..n as i64).collect();
        let strs: Vec<String> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    format!("s{i}") // inline
                } else {
                    format!("this is a long string number {i:06} that lives on the heap")
                }
            })
            .collect();
        (Vector::from_i64(keys), Vector::from_strs(strs))
    }

    fn append_all(
        coll: &mut TupleDataCollection,
        a: &Vector,
        b: &Vector,
    ) -> (Vec<u64>, Vec<*mut u8>) {
        let n = a.len();
        let hashes = hashing::hash_columns(&[a, b], n);
        let sel: Vec<u32> = (0..n as u32).collect();
        let mut ptrs = Vec::new();
        coll.append(&[a, b], &hashes, &sel, Some(&mut ptrs))
            .unwrap();
        (hashes, ptrs)
    }

    #[test]
    fn append_and_gather_in_memory() {
        let m = mgr(64);
        let mut coll = TupleDataCollection::new(m, layout_is());
        let (a, b) = test_columns(100);
        let (hashes, ptrs) = append_all(&mut coll, &a, &b);
        assert_eq!(coll.rows(), 100);
        coll.verify().unwrap();

        // Hashes were materialized.
        for (i, &p) in ptrs.iter().enumerate() {
            assert_eq!(unsafe { coll.layout().read_hash(p) }, hashes[i]);
        }
        // Gather returns the original values.
        let out = unsafe { coll.gather(&ptrs) };
        for i in 0..100 {
            assert_eq!(out.column(0).value(i), a.value(i));
            assert_eq!(out.column(1).value(i), b.value(i));
        }
    }

    #[test]
    fn spill_reload_recomputes_pointers() {
        // Limit of 4 pages: appending ~20 pages forces spills mid-append is
        // not allowed (active pages are pinned), so append in rounds with
        // release_pins between, then squeeze with temp allocations.
        let m = mgr(8);
        let mut coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let (a, b) = test_columns(60);
        append_all(&mut coll, &a, &b);
        coll.release_pins();

        // Force everything out with page allocations.
        let mut hog = Vec::new();
        loop {
            match m.allocate_page() {
                Ok(p) => hog.push(p),
                Err(e) => {
                    assert!(e.is_oom());
                    break;
                }
            }
        }
        assert!(m.stats().evictions_temporary > 0, "collection was spilled");
        drop(hog);

        // Re-pin: pointers must be recomputed, values intact.
        let pins = coll.pin_all().unwrap();
        let ptrs = coll.all_row_ptrs(&pins);
        let out = unsafe { coll.gather(&ptrs) };
        for i in 0..60 {
            assert_eq!(out.column(0).value(i), a.value(i), "row {i} key");
            assert_eq!(out.column(1).value(i), b.value(i), "row {i} str");
        }
    }

    #[test]
    fn double_pin_all_is_idempotent() {
        let m = mgr(32);
        let mut coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let (a, b) = test_columns(40);
        append_all(&mut coll, &a, &b);
        coll.release_pins();

        let pins1 = coll.pin_all().unwrap();
        let snap1 = unsafe { coll.gather(&coll.all_row_ptrs(&pins1)) };
        drop(pins1);
        let pins2 = coll.pin_all().unwrap();
        let snap2 = unsafe { coll.gather(&coll.all_row_ptrs(&pins2)) };
        assert_eq!(snap1, snap2);
    }

    #[test]
    fn multiple_spill_cycles_preserve_data() {
        let m = mgr(8);
        let mut coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let (a, b) = test_columns(80);
        append_all(&mut coll, &a, &b);
        coll.release_pins();

        for _cycle in 0..3 {
            // Squeeze out...
            let mut hog = Vec::new();
            while let Ok(p) = m.allocate_page() {
                hog.push(p);
            }
            drop(hog);
            // ...and verify.
            let pins = coll.pin_all().unwrap();
            let out = unsafe { coll.gather(&coll.all_row_ptrs(&pins)) };
            for i in 0..80 {
                assert_eq!(out.column(1).value(i), b.value(i));
            }
            drop(pins);
        }
        assert!(m.stats().evictions_temporary > 0);
    }

    #[test]
    fn fixed_only_layout_uses_no_heap_pages() {
        let m = mgr(16);
        let layout = Arc::new(TupleDataLayout::new(vec![LogicalType::Int64], vec![]));
        let mut coll = TupleDataCollection::new(m, layout);
        let a = Vector::from_i64((0..500).collect());
        let hashes = hashing::hash_columns(&[&a], 500);
        let sel: Vec<u32> = (0..500).collect();
        coll.append(&[&a], &hashes, &sel, None).unwrap();
        coll.verify().unwrap();
        coll.release_pins();
        let pins = coll.pin_all().unwrap();
        assert_eq!(pins.heap_page_count(), 0);
        let out = unsafe { coll.gather(&coll.all_row_ptrs(&pins)) };
        assert_eq!(out.len(), 500);
        assert_eq!(out.column(0).i64s()[499], 499);
    }

    #[test]
    fn nulls_round_trip_through_rows() {
        let m = mgr(16);
        let mut coll = TupleDataCollection::new(m, layout_is());
        let keys = Vector::from_values(
            LogicalType::Int64,
            &[Value::Int64(1), Value::Null, Value::Int64(3)],
        )
        .unwrap();
        let strs = Vector::from_values(
            LogicalType::Varchar,
            &[
                Value::Null,
                Value::Varchar("a rather long string that goes to the heap".into()),
                Value::Varchar("tiny".into()),
            ],
        )
        .unwrap();
        let hashes = hashing::hash_columns(&[&keys, &strs], 3);
        let sel = [0u32, 1, 2];
        let mut ptrs = Vec::new();
        coll.append(&[&keys, &strs], &hashes, &sel, Some(&mut ptrs))
            .unwrap();
        let out = unsafe { coll.gather(&ptrs) };
        for i in 0..3 {
            assert_eq!(out.column(0).value(i), keys.value(i));
            assert_eq!(out.column(1).value(i), strs.value(i));
        }
    }

    #[test]
    fn oversized_string_gets_dedicated_heap_page() {
        let m = mgr(32);
        let mut coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let big = "x".repeat(3 * PAGE); // much larger than a page
        let keys = Vector::from_i64(vec![7]);
        let strs = Vector::from_strs([big.as_str()]);
        let hashes = hashing::hash_columns(&[&keys, &strs], 1);
        let mut ptrs = Vec::new();
        coll.append(&[&keys, &strs], &hashes, &[0], Some(&mut ptrs))
            .unwrap();
        coll.verify().unwrap();
        coll.release_pins();

        // Spill and reload the oversized page too.
        let mut hog = Vec::new();
        while let Ok(p) = m.allocate_page() {
            hog.push(p);
        }
        drop(hog);
        let pins = coll.pin_all().unwrap();
        let out = unsafe { coll.gather(&coll.all_row_ptrs(&pins)) };
        assert_eq!(out.column(1).value(0), Value::Varchar(big));
    }

    #[test]
    fn merge_from_moves_pages() {
        let m = mgr(64);
        let mut a_coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let mut b_coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let (a1, b1) = test_columns(30);
        let (a2, b2) = test_columns(20);
        append_all(&mut a_coll, &a1, &b1);
        append_all(&mut b_coll, &a2, &b2);
        a_coll.release_pins();
        b_coll.release_pins();

        a_coll.merge_from(b_coll);
        assert_eq!(a_coll.rows(), 50);
        a_coll.verify().unwrap();
        let pins = a_coll.pin_all().unwrap();
        let out = unsafe { a_coll.gather(&a_coll.all_row_ptrs(&pins)) };
        assert_eq!(out.len(), 50);
        // Last 20 rows are b's data.
        for i in 0..20 {
            assert_eq!(out.column(0).value(30 + i), a2.value(i));
            assert_eq!(out.column(1).value(30 + i), b2.value(i));
        }
    }

    #[test]
    #[should_panic(expected = "released pins")]
    fn merge_with_active_pins_panics() {
        let m = mgr(64);
        let mut a_coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let b_coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let (a1, b1) = test_columns(5);
        append_all(&mut a_coll, &a1, &b1); // pins still active
        a_coll.merge_from(b_coll);
    }

    #[test]
    fn aggregate_state_region_is_zeroed() {
        let m = mgr(16);
        let layout = Arc::new(TupleDataLayout::new(vec![LogicalType::Int64], vec![8, 16]));
        let mut coll = TupleDataCollection::new(m, layout.clone());
        let a = Vector::from_i64(vec![42]);
        let hashes = hashing::hash_columns(&[&a], 1);
        let mut ptrs = Vec::new();
        coll.append(&[&a], &hashes, &[0], Some(&mut ptrs)).unwrap();
        unsafe {
            let p = ptrs[0];
            for off in 0..24 {
                assert_eq!(*p.add(layout.aggr_offset(0) + off), 0);
            }
        }
    }

    #[test]
    fn sealed_runs_are_sorted_and_survive_spill() {
        let m = mgr(8);
        let layout = Arc::new(TupleDataLayout::new(vec![LogicalType::Int64], vec![]));
        let mut coll = TupleDataCollection::new(Arc::clone(&m), Arc::clone(&layout));
        // Two append epochs of descending keys, each sealed into one run.
        for epoch in 0..2 {
            let keys = Vector::from_i64((0..120).map(|i| 1000 * epoch + (120 - i)).collect());
            let hashes = hashing::hash_columns(&[&keys], 120);
            let sel: Vec<u32> = (0..120).collect();
            coll.append(&[&keys], &hashes, &sel, None).unwrap();
            assert!(coll.seal_sorted_run(1));
            coll.release_pins();
        }
        assert_eq!(coll.sorted_runs(), &[(0, 120), (120, 120)]);
        assert!(coll.runs_cover_all_rows());
        coll.verify().unwrap();

        // Spill, reload, and check each run really is sorted.
        let mut hog = Vec::new();
        while let Ok(p) = m.allocate_page() {
            hog.push(p);
        }
        drop(hog);
        let pins = coll.pin_all().unwrap();
        let ptrs = coll.all_row_ptrs(&pins);
        for &(start, len) in coll.sorted_runs() {
            for i in start + 1..start + len {
                let ord = unsafe { crate::matcher::row_row_cmp(&layout, 1, ptrs[i - 1], ptrs[i]) };
                assert_ne!(ord, std::cmp::Ordering::Greater, "run out of order at {i}");
            }
        }
        // All original keys are still present.
        let out = unsafe { coll.gather(&ptrs) };
        let mut keys: Vec<i64> = out.column(0).i64s().to_vec();
        keys.sort_unstable();
        let mut expect: Vec<i64> = (0..2)
            .flat_map(|e| (0..120).map(move |i| 1000 * e + (120 - i)))
            .collect();
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }

    #[test]
    fn unsealed_tail_breaks_run_coverage() {
        let m = mgr(16);
        let layout = Arc::new(TupleDataLayout::new(vec![LogicalType::Int64], vec![]));
        let mut coll = TupleDataCollection::new(m, layout);
        let keys = Vector::from_i64((0..50).collect());
        let hashes = hashing::hash_columns(&[&keys], 50);
        let sel: Vec<u32> = (0..50).collect();
        coll.append(&[&keys], &hashes, &sel, None).unwrap();
        assert!(coll.seal_sorted_run(1));
        assert!(coll.runs_cover_all_rows());
        // Another epoch without a seal: coverage must report the gap.
        coll.append(&[&keys], &hashes, &sel, None).unwrap();
        assert!(!coll.runs_cover_all_rows());
        coll.release_pins();
    }

    #[test]
    fn merge_from_offsets_sorted_runs() {
        let m = mgr(64);
        let layout = Arc::new(TupleDataLayout::new(vec![LogicalType::Int64], vec![]));
        let mut a_coll = TupleDataCollection::new(Arc::clone(&m), Arc::clone(&layout));
        let mut b_coll = TupleDataCollection::new(Arc::clone(&m), Arc::clone(&layout));
        for (coll, n) in [(&mut a_coll, 30usize), (&mut b_coll, 20usize)] {
            let keys = Vector::from_i64((0..n as i64).rev().collect());
            let hashes = hashing::hash_columns(&[&keys], n);
            let sel: Vec<u32> = (0..n as u32).collect();
            coll.append(&[&keys], &hashes, &sel, None).unwrap();
            assert!(coll.seal_sorted_run(1));
            coll.release_pins();
        }
        a_coll.merge_from(b_coll);
        assert_eq!(a_coll.sorted_runs(), &[(0, 30), (30, 20)]);
        assert!(a_coll.runs_cover_all_rows());
    }

    #[test]
    fn dropping_collection_frees_everything() {
        let m = mgr(16);
        let mut coll = TupleDataCollection::new(Arc::clone(&m), layout_is());
        let (a, b) = test_columns(150);
        append_all(&mut coll, &a, &b);
        coll.release_pins();
        // Spill some of it.
        let mut hog = Vec::new();
        while let Ok(p) = m.allocate_page() {
            hog.push(p);
        }
        drop(hog);
        drop(coll);
        assert_eq!(m.memory_used(), 0);
        assert_eq!(m.stats().temp_bytes_on_disk, 0, "spill space freed");
    }
}
