//! `rexa-layout`: the spillable page layout for temporary query
//! intermediates (paper Section IV).
//!
//! The layout satisfies the paper's four requirements:
//!
//! 1. **row-major, fixed-size rows** — a tuple's attributes are colocated at
//!    offsets known globally from the [`TupleDataLayout`], so comparing group
//!    keys touches one cache line chain and needs no per-page metadata;
//! 2. **variable-size data on separate pages** — string bytes live on *heap
//!    pages*, so a row page never wastes space because a long string did not
//!    fit;
//! 3. **explicit addressing** — rows store raw 8-byte pointers to their
//!    string data ([`RexaString`], Umbra's 16-byte string type), the fastest
//!    representation while everything is in memory;
//! 4. **spillable without serialization** — pages are written to storage
//!    byte-for-byte. When a heap page returns from disk at a different
//!    address, the pointers in exactly the affected rows are *recomputed in
//!    place* (`ptr - old_base + new_base`), lazily, using a small amount of
//!    in-memory metadata that records how row ranges line up with heap pages
//!    (paper Figure 2). Performance in RAM is unaffected: recomputation
//!    triggers only when the stored base and the current base differ.
//!
//! [`TupleDataCollection`] owns the pages of one stream of materialized
//! tuples; [`PartitionedTupleData`] fans appends out over radix partitions,
//! which is how the aggregation operator materializes pre-aggregated groups
//! directly into partitions.

pub mod collection;
pub mod matcher;
pub mod partitioned;
pub mod row_layout;
pub mod string;

pub use collection::{gather_rows, CollectionPins, TupleDataCollection};
pub use partitioned::PartitionedTupleData;
pub use row_layout::TupleDataLayout;
pub use string::RexaString;
