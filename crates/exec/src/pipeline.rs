//! A small morsel-driven parallelism framework (paper Section V,
//! "Parallelism").
//!
//! Data moves through a *pipeline*: a thread-safe [`ChunkSource`] hands out
//! morsels (small fragments of the input) to worker threads, each of which
//! streams the morsel's chunks into a thread-local [`LocalSink`]. When the
//! source is exhausted every local sink is *combined* into the shared sink
//! state. Blocking operators then run their second phase with
//! [`parallel_for`], which schedules fine-grained tasks (e.g. one per radix
//! partition) over the same worker threads.
//!
//! Operators are parallelism-aware (they manage local/shared state), exactly
//! the trade-off morsel-driven parallelism makes: no exchange operators, no
//! tuple re-routing, and work-stealing granularity of one morsel.

use crate::chunk::{ChunkCollection, DataChunk};
use crate::error::{Error, Result};
use crate::pool::ExecContext;
use rexa_obs::span::{self, cat as span_cat};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of chunks per morsel: 60 × 2048 ≈ 123k rows, DuckDB's morsel size.
pub const MORSEL_CHUNKS: usize = 60;

/// A thread-safe producer of input chunks. Each worker thread obtains its own
/// [`ChunkReader`]; morsel claiming happens inside the reader so that threads
/// contend only once per morsel, not once per chunk.
pub trait ChunkSource: Send + Sync {
    /// A reader for one worker thread.
    fn reader(&self) -> Box<dyn ChunkReader + '_>;
    /// Total rows, if known (used to size hash tables and pick radix bits).
    fn total_rows(&self) -> Option<usize> {
        None
    }

    /// Column indices this source's rows arrive sorted by (lexicographic;
    /// each worker's reader sees a non-interleaved subsequence), if known.
    /// An aggregation whose grouping keys are a prefix of this list may
    /// assert its sorted-input fast path instead of sampling. Default:
    /// unknown.
    fn sorted_by(&self) -> Option<&[usize]> {
        None
    }
}

/// A per-thread cursor over a [`ChunkSource`].
pub trait ChunkReader: Send {
    /// The next chunk assigned to this thread, or `None` when the source is
    /// exhausted. The reference is valid until the next call: in-memory
    /// sources hand out borrows of their stored chunks, so a scan never
    /// deep-copies vectors (readers that materialize chunks park the
    /// current one internally and lend it out).
    fn next(&mut self) -> Result<Option<&DataChunk>>;

    /// Morsels this reader has claimed from the shared cursor so far. Used
    /// for per-worker profile attribution; readers without morsel-granular
    /// claiming report 0.
    fn morsels_claimed(&self) -> u64 {
        0
    }
}

/// The shared side of a pipeline-breaking operator.
pub trait ParallelSink: Send + Sync {
    /// Create the thread-local state for one worker.
    fn local(&self) -> Result<Box<dyn LocalSink + '_>>;
}

/// The per-thread side of a pipeline-breaking operator.
pub trait LocalSink: Send {
    /// Consume one chunk.
    fn sink(&mut self, chunk: &DataChunk) -> Result<()>;
    /// Merge this thread's state into the shared state. Called exactly once,
    /// after the source is exhausted.
    fn combine(self: Box<Self>) -> Result<()>;
}

/// Cooperative cancellation, used by the benchmark harness to impose the
/// paper's query timeout.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; readers observe it on their next chunk.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True if cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Err(Cancelled) if cancellation was requested.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(Error::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// A [`ChunkSource`] over an in-memory [`ChunkCollection`].
pub struct CollectionSource<'a> {
    collection: &'a ChunkCollection,
    cursor: AtomicUsize,
    cancel: Option<CancelToken>,
}

impl<'a> CollectionSource<'a> {
    /// Serve morsels from `collection`.
    pub fn new(collection: &'a ChunkCollection) -> Self {
        CollectionSource {
            collection,
            cursor: AtomicUsize::new(0),
            cancel: None,
        }
    }

    /// Serve morsels from `collection`, aborting when `cancel` fires.
    pub fn with_cancel(collection: &'a ChunkCollection, cancel: CancelToken) -> Self {
        CollectionSource {
            collection,
            cursor: AtomicUsize::new(0),
            cancel: Some(cancel),
        }
    }
}

struct CollectionReader<'a> {
    source: &'a CollectionSource<'a>,
    /// Next chunk index within the currently claimed morsel.
    pos: usize,
    /// One past the last chunk of the current morsel.
    end: usize,
    /// Morsels this reader claimed (per-worker attribution).
    morsels: u64,
}

impl ChunkReader for CollectionReader<'_> {
    fn next(&mut self) -> Result<Option<&DataChunk>> {
        if let Some(cancel) = &self.source.cancel {
            cancel.check()?;
        }
        let n = self.source.collection.chunk_count();
        if self.pos == self.end {
            // Claim the next morsel.
            let start = self
                .source
                .cursor
                .fetch_add(MORSEL_CHUNKS, Ordering::Relaxed);
            if start >= n {
                return Ok(None);
            }
            self.pos = start;
            self.end = (start + MORSEL_CHUNKS).min(n);
            self.morsels += 1;
        }
        let chunk = &self.source.collection.chunks()[self.pos];
        self.pos += 1;
        Ok(Some(chunk))
    }

    fn morsels_claimed(&self) -> u64 {
        self.morsels
    }
}

impl ChunkSource for CollectionSource<'_> {
    fn reader(&self) -> Box<dyn ChunkReader + '_> {
        Box::new(CollectionReader {
            source: self,
            pos: 0,
            end: 0,
            morsels: 0,
        })
    }

    fn total_rows(&self) -> Option<usize> {
        Some(self.collection.rows())
    }
}

/// The pipeline executor.
pub struct Pipeline;

impl Pipeline {
    /// Run `source → sink` on `threads` worker threads: every worker streams
    /// morsels into its own local sink, then combines into the shared state.
    /// Returns the first error raised by any worker.
    ///
    /// Spawns scoped threads per call; a query service should prefer
    /// [`Pipeline::run_ctx`] with a pooled [`ExecContext`].
    pub fn run(source: &dyn ChunkSource, sink: &dyn ParallelSink, threads: usize) -> Result<()> {
        Self::run_ctx(source, sink, threads, &ExecContext::new())
    }

    /// Like [`Pipeline::run`], but schedules the workers through `ctx`: on
    /// the shared [`WorkerPool`](crate::pool::WorkerPool) when the context
    /// has one (the submitting thread participates, so a saturated pool
    /// degrades to inline execution rather than deadlock), and honouring the
    /// context's cancellation token between chunks.
    pub fn run_ctx(
        source: &dyn ChunkSource,
        sink: &dyn ParallelSink,
        threads: usize,
        ctx: &ExecContext,
    ) -> Result<()> {
        let threads = threads.max(1);
        let work = || {
            // Busy time and chunk counts are accumulated locally and
            // flushed to the profile collector once per worker, so the
            // streaming loop itself carries no profiling cost. Span
            // tracing adds one timestamp per chunk and one record per
            // morsel — and only when a collector is attached.
            let started = std::time::Instant::now();
            let mut chunks = 0u64;
            let mut morsels = 0u64;
            let sbuf = ctx.spans().map(|sc| sc.track_indexed("worker"));
            let t_worker = sbuf.as_ref().map(|b| b.now_ns());
            let result = (|| {
                let mut reader = source.reader();
                let mut local = sink.local()?;
                // Morsel-batch segmentation: a span per claimed morsel,
                // closed when the reader moves on to the next claim.
                let mut m_seen = 0u64;
                let mut m_start = 0u64;
                while let Some(chunk) = reader.next()? {
                    ctx.check_cancelled()?;
                    let t_chunk = sbuf.as_ref().map(|b| b.now_ns());
                    local.sink(chunk)?;
                    chunks += 1;
                    if let (Some(b), Some(t)) = (&sbuf, t_chunk) {
                        let claimed = reader.morsels_claimed();
                        if claimed != m_seen {
                            if m_seen > 0 {
                                b.complete_between(
                                    "morsel",
                                    span_cat::COMPUTE,
                                    m_start,
                                    t,
                                    span::arg1("morsel", m_seen - 1),
                                );
                            }
                            m_seen = claimed;
                            m_start = t;
                        }
                    }
                }
                morsels = reader.morsels_claimed();
                if let Some(b) = &sbuf {
                    if m_seen > 0 {
                        b.complete(
                            "morsel",
                            span_cat::COMPUTE,
                            m_start,
                            span::arg1("morsel", m_seen - 1),
                        );
                    }
                    let t_combine = b.now_ns();
                    let r = local.combine();
                    b.complete("combine", span_cat::COMPUTE, t_combine, span::NO_ARGS);
                    r
                } else {
                    local.combine()
                }
            })();
            if let (Some(b), Some(t)) = (&sbuf, t_worker) {
                b.complete(
                    "pipeline",
                    span_cat::COMPUTE,
                    t,
                    span::arg2("chunks", chunks, "morsels", morsels),
                );
            }
            if let Some(p) = ctx.profile() {
                p.add_busy(started.elapsed());
                p.add_units(chunks);
                p.record_worker(p.begin_worker(), started.elapsed(), morsels, chunks);
            }
            result
        };
        if threads == 1 {
            return work();
        }
        ctx.run_units(threads, &work)
    }
}

/// Run `tasks` independent tasks on `threads` worker threads, pulling task
/// ids from a shared atomic counter (the second-phase scheduling pattern:
/// tasks are radix partitions). Returns the first error.
///
/// Spawns scoped threads per call; a query service should prefer
/// [`parallel_for_ctx`] with a pooled [`ExecContext`].
pub fn parallel_for(
    tasks: usize,
    threads: usize,
    f: &(dyn Fn(usize) -> Result<()> + Sync),
) -> Result<()> {
    parallel_for_ctx(tasks, threads, &ExecContext::new(), f)
}

/// Like [`parallel_for`], but schedules the claim loops through `ctx` and
/// checks the context's cancellation token before each task.
pub fn parallel_for_ctx(
    tasks: usize,
    threads: usize,
    ctx: &ExecContext,
    f: &(dyn Fn(usize) -> Result<()> + Sync),
) -> Result<()> {
    let threads = threads.max(1).min(tasks.max(1));
    let next = AtomicUsize::new(0);
    let work = || {
        let started = std::time::Instant::now();
        let mut executed = 0u64;
        let sbuf = ctx.spans().map(|sc| sc.track_indexed("worker"));
        let result = (|| {
            while let Some(task) = claim(&next, tasks) {
                ctx.check_cancelled()?;
                let t_task = sbuf.as_ref().map(|b| b.now_ns());
                f(task)?;
                executed += 1;
                if let (Some(b), Some(t)) = (&sbuf, t_task) {
                    b.complete(
                        "task",
                        span_cat::COMPUTE,
                        t,
                        span::arg1("task", task as u64),
                    );
                }
            }
            Ok(())
        })();
        if let Some(p) = ctx.profile() {
            p.add_busy(started.elapsed());
            p.add_units(executed);
        }
        result
    };
    if threads == 1 {
        return work();
    }
    ctx.run_units(threads, &work)
}

fn claim(next: &AtomicUsize, tasks: usize) -> Option<usize> {
    let t = next.fetch_add(1, Ordering::Relaxed);
    (t < tasks).then_some(t)
}

/// Spawn `threads` scoped workers running `work`; propagate the first error,
/// preferring "real" errors over `Cancelled` (a worker that observes another
/// worker's failure-induced cancellation should not mask the root cause).
/// This is the pool-less fallback used by [`ExecContext::run_units`].
pub(crate) fn run_scoped(threads: usize, work: &(dyn Fn() -> Result<()> + Sync)) -> Result<()> {
    let results: Vec<Result<()>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(work)).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(Error::Internal("worker thread panicked".into())),
            })
            .collect()
    });
    let mut first_cancel = None;
    for r in results {
        match r {
            Ok(()) => {}
            Err(Error::Cancelled) => first_cancel = Some(Error::Cancelled),
            Err(e) => return Err(e),
        }
    }
    first_cancel.map_or(Ok(()), Err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LogicalType;
    use crate::vector::Vector;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicI64;

    fn make_collection(chunks: usize, rows_per_chunk: usize) -> ChunkCollection {
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64]);
        let mut next = 0i64;
        for _ in 0..chunks {
            let vals: Vec<i64> = (0..rows_per_chunk as i64).map(|i| next + i).collect();
            next += rows_per_chunk as i64;
            coll.push(DataChunk::new(vec![Vector::from_i64(vals)]))
                .unwrap();
        }
        coll
    }

    /// A sink that sums the single int64 column; local partial sums are
    /// folded into a shared atomic at combine time.
    struct SumSink {
        total: AtomicI64,
        combines: AtomicUsize,
    }

    struct LocalSum<'a> {
        parent: &'a SumSink,
        sum: i64,
    }

    impl ParallelSink for SumSink {
        fn local(&self) -> Result<Box<dyn LocalSink + '_>> {
            Ok(Box::new(LocalSum {
                parent: self,
                sum: 0,
            }))
        }
    }

    impl LocalSink for LocalSum<'_> {
        fn sink(&mut self, chunk: &DataChunk) -> Result<()> {
            self.sum += chunk.column(0).i64s().iter().sum::<i64>();
            Ok(())
        }
        fn combine(self: Box<Self>) -> Result<()> {
            self.parent.total.fetch_add(self.sum, Ordering::Relaxed);
            self.parent.combines.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let coll = make_collection(200, 100);
        let expected: i64 = (0..200 * 100).sum();
        for threads in [1, 2, 4, 8] {
            let sink = SumSink {
                total: AtomicI64::new(0),
                combines: AtomicUsize::new(0),
            };
            let source = CollectionSource::new(&coll);
            Pipeline::run(&source, &sink, threads).unwrap();
            assert_eq!(
                sink.total.load(Ordering::Relaxed),
                expected,
                "threads={threads}"
            );
            assert_eq!(sink.combines.load(Ordering::Relaxed), threads);
        }
    }

    #[test]
    fn every_chunk_is_delivered_exactly_once() {
        let coll = make_collection(137, 3); // not a multiple of MORSEL_CHUNKS
        let seen = Mutex::new(vec![0u32; 137 * 3]);

        struct Recorder<'a> {
            seen: &'a Mutex<Vec<u32>>,
        }
        struct LocalRec<'a> {
            seen: &'a Mutex<Vec<u32>>,
        }
        impl ParallelSink for Recorder<'_> {
            fn local(&self) -> Result<Box<dyn LocalSink + '_>> {
                Ok(Box::new(LocalRec { seen: self.seen }))
            }
        }
        impl LocalSink for LocalRec<'_> {
            fn sink(&mut self, chunk: &DataChunk) -> Result<()> {
                let mut seen = self.seen.lock();
                for &v in chunk.column(0).i64s() {
                    seen[v as usize] += 1;
                }
                Ok(())
            }
            fn combine(self: Box<Self>) -> Result<()> {
                Ok(())
            }
        }

        let source = CollectionSource::new(&coll);
        Pipeline::run(&source, &Recorder { seen: &seen }, 4).unwrap();
        assert!(seen.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn sink_error_propagates() {
        struct FailSink;
        struct FailLocal;
        impl ParallelSink for FailSink {
            fn local(&self) -> Result<Box<dyn LocalSink + '_>> {
                Ok(Box::new(FailLocal))
            }
        }
        impl LocalSink for FailLocal {
            fn sink(&mut self, _chunk: &DataChunk) -> Result<()> {
                Err(Error::Unsupported("boom".into()))
            }
            fn combine(self: Box<Self>) -> Result<()> {
                Ok(())
            }
        }
        let coll = make_collection(10, 10);
        let source = CollectionSource::new(&coll);
        let err = Pipeline::run(&source, &FailSink, 4).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn cancellation_stops_pipeline() {
        let coll = make_collection(500, 100);
        let token = CancelToken::new();
        token.cancel();
        let source = CollectionSource::with_cancel(&coll, token);
        let sink = SumSink {
            total: AtomicI64::new(0),
            combines: AtomicUsize::new(0),
        };
        let err = Pipeline::run(&source, &sink, 4).unwrap_err();
        assert!(matches!(err, Error::Cancelled));
    }

    #[test]
    fn parallel_for_covers_all_tasks() {
        let done: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(97, 8, &|t| {
            done[t].fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_tasks() {
        parallel_for(0, 4, &|_| panic!("no tasks expected")).unwrap();
    }

    #[test]
    fn parallel_for_error_wins_over_cancel() {
        // Two tasks, two workers: each worker claims exactly one task (a
        // worker stops after its first failure), so one observes Cancelled
        // and the other the real error; the real error must win.
        let err = parallel_for(2, 2, &|t| {
            if t == 0 {
                Err(Error::Cancelled)
            } else {
                Err(Error::Unsupported("specific".into()))
            }
        })
        .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn pooled_context_matches_scoped_execution() {
        use crate::pool::WorkerPool;
        let coll = make_collection(200, 100);
        let expected: i64 = (0..200 * 100).sum();
        let pool = Arc::new(WorkerPool::new(3));
        let ctx = ExecContext::with_pool(Arc::clone(&pool));
        let sink = SumSink {
            total: AtomicI64::new(0),
            combines: AtomicUsize::new(0),
        };
        let source = CollectionSource::new(&coll);
        Pipeline::run_ctx(&source, &sink, 4, &ctx).unwrap();
        assert_eq!(sink.total.load(Ordering::Relaxed), expected);
        assert_eq!(sink.combines.load(Ordering::Relaxed), 4);

        let done: Vec<AtomicUsize> = (0..31).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_ctx(31, 4, &ctx, &|t| {
            done[t].fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn profile_collector_records_busy_time_and_units() {
        use rexa_obs::{Phase, ProfileCollector};
        let coll = make_collection(150, 100);
        let profile = Arc::new(ProfileCollector::new());
        let ctx = ExecContext::new().with_profile(Arc::clone(&profile));

        profile.set_phase(Phase::Probe);
        let sink = SumSink {
            total: AtomicI64::new(0),
            combines: AtomicUsize::new(0),
        };
        let source = CollectionSource::new(&coll);
        Pipeline::run_ctx(&source, &sink, 4, &ctx).unwrap();

        profile.set_phase(Phase::Merge);
        parallel_for_ctx(31, 4, &ctx, &|_| Ok(())).unwrap();

        let p = profile.finish("x", std::time::Duration::ZERO);
        // Every chunk is credited to the probe phase, every task to merge.
        assert_eq!(p.phases[Phase::Probe.index()].units, 150);
        assert_eq!(p.phases[Phase::Merge.index()].units, 31);
        assert!(p.phases[Phase::Probe.index()].busy > std::time::Duration::ZERO);
    }

    #[test]
    fn per_worker_attribution_covers_all_morsels_and_chunks() {
        use rexa_obs::{Phase, ProfileCollector};
        let coll = make_collection(150, 100); // 150 chunks = 3 morsels
        let profile = Arc::new(ProfileCollector::new());
        let ctx = ExecContext::new().with_profile(Arc::clone(&profile));
        profile.set_phase(Phase::Probe);
        let sink = SumSink {
            total: AtomicI64::new(0),
            combines: AtomicUsize::new(0),
        };
        let source = CollectionSource::new(&coll);
        Pipeline::run_ctx(&source, &sink, 4, &ctx).unwrap();
        let p = profile.finish("x", std::time::Duration::ZERO);
        assert_eq!(p.workers.len(), 4, "one record per worker: {:?}", p.workers);
        assert_eq!(p.workers.iter().map(|w| w.chunks).sum::<u64>(), 150);
        assert_eq!(
            p.workers.iter().map(|w| w.morsels).sum::<u64>(),
            3,
            "every morsel claimed exactly once: {:?}",
            p.workers
        );
        // Ids are dense and sorted.
        for (i, w) in p.workers.iter().enumerate() {
            assert_eq!(w.worker, i);
        }
    }

    #[test]
    fn parallel_for_panic_surfaces_internal_error_without_hanging() {
        // A panicking task at threads > 1 must not strand the other claim
        // loops at the completion barrier: the panic is caught, converted
        // to Error::Internal, and the call returns.
        let err = parallel_for(8, 4, &|t| {
            if t == 3 {
                panic!("injected worker panic");
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, Error::Internal(_)), "got {err}");

        // Same through a pooled context: the pool worker catches the panic,
        // completes the unit, and the pool survives for the next job.
        use crate::pool::WorkerPool;
        let pool = Arc::new(WorkerPool::new(4));
        let ctx = ExecContext::with_pool(Arc::clone(&pool));
        let err = parallel_for_ctx(8, 4, &ctx, &|t| {
            if t == 0 {
                panic!("injected worker panic");
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, Error::Internal(_)), "got {err}");
        let done: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_ctx(8, 4, &ctx, &|t| {
            done[t].fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn cancelled_context_stops_parallel_for() {
        let ctx = ExecContext::new();
        ctx.cancel_token().cancel();
        let err = parallel_for_ctx(8, 4, &ctx, &|_| Ok(())).unwrap_err();
        assert!(matches!(err, Error::Cancelled));
    }

    #[test]
    fn total_rows_is_reported() {
        let coll = make_collection(3, 7);
        let source = CollectionSource::new(&coll);
        assert_eq!(source.total_rows(), Some(21));
    }
}
