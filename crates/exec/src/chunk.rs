//! `DataChunk`: a horizontal slice of a table, at most [`VECTOR_SIZE`] rows,
//! stored column-major — the unit that flows through pipelines.

use crate::error::{Error, Result};
use crate::types::LogicalType;
use crate::value::Value;
use crate::vector::Vector;

/// Maximum number of tuples per chunk (DuckDB's standard vector size; the
/// paper scans morsels "in batches of up to 2,048 tuples").
pub const VECTOR_SIZE: usize = 2048;

/// A batch of rows in column-major representation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataChunk {
    columns: Vec<Vector>,
    len: usize,
}

impl DataChunk {
    /// Assemble a chunk from equal-length columns.
    ///
    /// # Panics
    /// If the columns differ in length or exceed [`VECTOR_SIZE`].
    pub fn new(columns: Vec<Vector>) -> Self {
        let len = columns.first().map_or(0, Vector::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), len, "column {i} length mismatch");
        }
        assert!(
            len <= VECTOR_SIZE,
            "chunk of {len} rows exceeds VECTOR_SIZE"
        );
        DataChunk { columns, len }
    }

    /// An empty chunk with the given column types.
    pub fn empty(types: &[LogicalType]) -> Self {
        DataChunk {
            columns: types.iter().map(|&t| Vector::empty(t)).collect(),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// The column vectors.
    pub fn columns(&self) -> &[Vector] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Vector {
        &self.columns[i]
    }

    /// The logical types of all columns.
    pub fn types(&self) -> Vec<LogicalType> {
        self.columns.iter().map(Vector::logical_type).collect()
    }

    /// Append one row of owned values (slow path: builders and tests).
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::InvalidInput(format!(
                "row has {} values, chunk has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        if self.len == VECTOR_SIZE {
            return Err(Error::InvalidInput("chunk full".into()));
        }
        for (col, val) in self.columns.iter_mut().zip(row) {
            col.push_value(val)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Row `i` as owned values (slow path).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// A copy of rows `[start, start + count)` as a new chunk.
    pub fn slice(&self, start: usize, count: usize) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| c.slice(start, count)).collect(),
            len: count,
        }
    }

    /// A chunk with the subset of columns given by `projection`.
    pub fn project(&self, projection: &[usize]) -> DataChunk {
        DataChunk {
            columns: projection
                .iter()
                .map(|&i| self.columns[i].clone())
                .collect(),
            len: self.len,
        }
    }
}

/// An owned, in-memory sequence of chunks with a shared schema — the simplest
/// input for the aggregation operator (generated data, test fixtures). The
/// persistent-table source in `rexa-storage` provides the paged alternative.
#[derive(Debug, Clone, Default)]
pub struct ChunkCollection {
    types: Vec<LogicalType>,
    chunks: Vec<DataChunk>,
    rows: usize,
}

impl ChunkCollection {
    /// An empty collection with the given schema.
    pub fn new(types: Vec<LogicalType>) -> Self {
        ChunkCollection {
            types,
            chunks: Vec::new(),
            rows: 0,
        }
    }

    /// The schema.
    pub fn types(&self) -> &[LogicalType] {
        &self.types
    }

    /// Append a chunk; its types must match the schema.
    pub fn push(&mut self, chunk: DataChunk) -> Result<()> {
        if chunk.types() != self.types {
            return Err(Error::InvalidInput(format!(
                "chunk schema {:?} does not match collection schema {:?}",
                chunk.types(),
                self.types
            )));
        }
        self.rows += chunk.len();
        self.chunks.push(chunk);
        Ok(())
    }

    /// Total number of rows across all chunks.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The chunks.
    pub fn chunks(&self) -> &[DataChunk] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Approximate in-memory size in bytes (row-width based; strings counted
    /// by character data). Used by benchmarks to size memory limits.
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0;
        for chunk in &self.chunks {
            for col in chunk.columns() {
                total += match col.logical_type() {
                    LogicalType::Varchar => {
                        let mut bytes = 16 * col.len();
                        for i in 0..col.len() {
                            bytes += col.str_at(i).len();
                        }
                        bytes
                    }
                    t => t.row_width() * col.len(),
                };
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![1, 2, 3]),
            Vector::from_strs(["a", "b", "c"]),
        ])
    }

    #[test]
    fn basic_accessors() {
        let c = two_col_chunk();
        assert_eq!(c.len(), 3);
        assert_eq!(c.column_count(), 2);
        assert_eq!(c.types(), vec![LogicalType::Int64, LogicalType::Varchar]);
        assert_eq!(c.row(1), vec![Value::Int64(2), Value::Varchar("b".into())]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        DataChunk::new(vec![
            Vector::from_i64(vec![1]),
            Vector::from_i64(vec![1, 2]),
        ]);
    }

    #[test]
    fn push_row_and_fill() {
        let mut c = DataChunk::empty(&[LogicalType::Int32]);
        for i in 0..VECTOR_SIZE {
            c.push_row(&[Value::Int32(i as i32)]).unwrap();
        }
        assert_eq!(c.len(), VECTOR_SIZE);
        assert!(matches!(
            c.push_row(&[Value::Int32(0)]),
            Err(Error::InvalidInput(_))
        ));
    }

    #[test]
    fn push_row_arity_check() {
        let mut c = DataChunk::empty(&[LogicalType::Int32, LogicalType::Int64]);
        assert!(c.push_row(&[Value::Int32(1)]).is_err());
    }

    #[test]
    fn projection() {
        let c = two_col_chunk();
        let p = c.project(&[1]);
        assert_eq!(p.column_count(), 1);
        assert_eq!(p.len(), 3);
        assert_eq!(p.column(0).str_at(2), "c");
    }

    #[test]
    fn collection_schema_enforced() {
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64]);
        assert!(coll.push(two_col_chunk()).is_err());
        coll.push(DataChunk::new(vec![Vector::from_i64(vec![5])]))
            .unwrap();
        assert_eq!(coll.rows(), 1);
        assert_eq!(coll.chunk_count(), 1);
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let mut coll = ChunkCollection::new(vec![LogicalType::Varchar]);
        coll.push(DataChunk::new(vec![Vector::from_strs(["abcd"])]))
            .unwrap();
        assert_eq!(coll.approx_bytes(), 16 + 4);
    }

    #[test]
    fn empty_chunk_has_zero_len() {
        let c = DataChunk::empty(&[LogicalType::Varchar, LogicalType::Date]);
        assert!(c.is_empty());
        assert_eq!(c.types(), vec![LogicalType::Varchar, LogicalType::Date]);
    }
}
