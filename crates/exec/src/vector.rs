//! Column vectors: the unit of vectorized data flow.

use crate::error::{Error, Result};
use crate::types::LogicalType;
use crate::validity::Validity;
use crate::value::Value;

/// Compact storage for a vector of strings: concatenated bytes plus
/// `n + 1` offsets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrVec {
    offsets: Vec<u32>,
    bytes: Vec<u8>,
}

impl StrVec {
    /// An empty string vector.
    pub fn new() -> Self {
        StrVec {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if there are no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a string.
    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(
            u32::try_from(self.bytes.len()).expect("string vector exceeds 4 GiB of character data"),
        );
    }

    /// The string at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // SAFETY: only `push(&str)` writes `bytes`, so every offset range is
        // valid UTF-8.
        unsafe { std::str::from_utf8_unchecked(&self.bytes[start..end]) }
    }
}

impl<S: AsRef<str>> FromIterator<S> for StrVec {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        let mut v = StrVec::new();
        for s in iter {
            v.push(s.as_ref());
        }
        v
    }
}

/// Physical storage of a [`Vector`].
#[derive(Debug, Clone, PartialEq)]
pub enum VectorData {
    /// 32-bit integers (also backs [`LogicalType::Date`]).
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Strings.
    Str(StrVec),
}

impl VectorData {
    fn len(&self) -> usize {
        match self {
            VectorData::I32(v) => v.len(),
            VectorData::I64(v) => v.len(),
            VectorData::F64(v) => v.len(),
            VectorData::Str(v) => v.len(),
        }
    }

    fn empty_for(ty: LogicalType) -> Self {
        match ty {
            LogicalType::Int32 | LogicalType::Date => VectorData::I32(Vec::new()),
            LogicalType::Int64 => VectorData::I64(Vec::new()),
            LogicalType::Float64 => VectorData::F64(Vec::new()),
            LogicalType::Varchar => VectorData::Str(StrVec::new()),
        }
    }
}

/// A typed column of up to [`crate::VECTOR_SIZE`] values with a validity mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    ty: LogicalType,
    data: VectorData,
    validity: Validity,
}

impl Vector {
    /// An empty vector of the given type.
    pub fn empty(ty: LogicalType) -> Self {
        Vector {
            ty,
            data: VectorData::empty_for(ty),
            validity: Validity::all_valid(0),
        }
    }

    /// Build from 32-bit integers, no NULLs.
    pub fn from_i32(vals: Vec<i32>) -> Self {
        let validity = Validity::all_valid(vals.len());
        Vector {
            ty: LogicalType::Int32,
            data: VectorData::I32(vals),
            validity,
        }
    }

    /// Build a date vector (days since epoch), no NULLs.
    pub fn from_dates(vals: Vec<i32>) -> Self {
        let validity = Validity::all_valid(vals.len());
        Vector {
            ty: LogicalType::Date,
            data: VectorData::I32(vals),
            validity,
        }
    }

    /// Build from 64-bit integers, no NULLs.
    pub fn from_i64(vals: Vec<i64>) -> Self {
        let validity = Validity::all_valid(vals.len());
        Vector {
            ty: LogicalType::Int64,
            data: VectorData::I64(vals),
            validity,
        }
    }

    /// Build from 64-bit floats, no NULLs.
    pub fn from_f64(vals: Vec<f64>) -> Self {
        let validity = Validity::all_valid(vals.len());
        Vector {
            ty: LogicalType::Float64,
            data: VectorData::F64(vals),
            validity,
        }
    }

    /// Build from strings, no NULLs.
    pub fn from_strs<S: AsRef<str>>(vals: impl IntoIterator<Item = S>) -> Self {
        let data: StrVec = vals.into_iter().collect();
        let validity = Validity::all_valid(data.len());
        Vector {
            ty: LogicalType::Varchar,
            data: VectorData::Str(data),
            validity,
        }
    }

    /// Build from 32-bit integers with an explicit validity mask (vectorized
    /// kernel output; invalid rows carry an arbitrary placeholder value).
    pub fn from_i32_validity(vals: Vec<i32>, validity: Validity) -> Self {
        assert_eq!(vals.len(), validity.len());
        Vector {
            ty: LogicalType::Int32,
            data: VectorData::I32(vals),
            validity,
        }
    }

    /// Build a date vector with an explicit validity mask.
    pub fn from_dates_validity(vals: Vec<i32>, validity: Validity) -> Self {
        assert_eq!(vals.len(), validity.len());
        Vector {
            ty: LogicalType::Date,
            data: VectorData::I32(vals),
            validity,
        }
    }

    /// Build from 64-bit integers with an explicit validity mask.
    pub fn from_i64_validity(vals: Vec<i64>, validity: Validity) -> Self {
        assert_eq!(vals.len(), validity.len());
        Vector {
            ty: LogicalType::Int64,
            data: VectorData::I64(vals),
            validity,
        }
    }

    /// Build from 64-bit floats with an explicit validity mask.
    pub fn from_f64_validity(vals: Vec<f64>, validity: Validity) -> Self {
        assert_eq!(vals.len(), validity.len());
        Vector {
            ty: LogicalType::Float64,
            data: VectorData::F64(vals),
            validity,
        }
    }

    /// Build from owned [`Value`]s of a declared type; `Value::Null` entries
    /// become NULLs.
    pub fn from_values(ty: LogicalType, vals: &[Value]) -> Result<Self> {
        let mut v = Vector::empty(ty);
        for val in vals {
            v.push_value(val)?;
        }
        Ok(v)
    }

    /// The logical type of this vector.
    pub fn logical_type(&self) -> LogicalType {
        self.ty
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the vector has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw physical storage (used by vectorized kernels like hashing).
    #[inline]
    pub fn data(&self) -> &VectorData {
        &self.data
    }

    /// The validity mask.
    pub fn validity(&self) -> &Validity {
        &self.validity
    }

    /// Mutable access to the validity mask.
    pub fn validity_mut(&mut self) -> &mut Validity {
        &mut self.validity
    }

    /// The underlying 32-bit integer slice. Panics on type mismatch.
    #[inline]
    pub fn i32s(&self) -> &[i32] {
        match &self.data {
            VectorData::I32(v) => v,
            _ => panic!("vector is {}, not int32/date", self.ty),
        }
    }

    /// The underlying 64-bit integer slice. Panics on type mismatch.
    #[inline]
    pub fn i64s(&self) -> &[i64] {
        match &self.data {
            VectorData::I64(v) => v,
            _ => panic!("vector is {}, not int64", self.ty),
        }
    }

    /// The underlying float slice. Panics on type mismatch.
    #[inline]
    pub fn f64s(&self) -> &[f64] {
        match &self.data {
            VectorData::F64(v) => v,
            _ => panic!("vector is {}, not float64", self.ty),
        }
    }

    /// The string at row `i`. Panics on type mismatch.
    #[inline]
    pub fn str_at(&self, i: usize) -> &str {
        match &self.data {
            VectorData::Str(v) => v.get(i),
            _ => panic!("vector is {}, not varchar", self.ty),
        }
    }

    /// The string storage. Panics on type mismatch.
    pub fn strs(&self) -> &StrVec {
        match &self.data {
            VectorData::Str(v) => v,
            _ => panic!("vector is {}, not varchar", self.ty),
        }
    }

    /// The owned value at row `i` (NULL-aware). For tests and result
    /// extraction; not used on hot paths.
    pub fn value(&self, i: usize) -> Value {
        if !self.validity.is_valid(i) {
            return Value::Null;
        }
        match (&self.data, self.ty) {
            (VectorData::I32(v), LogicalType::Date) => Value::Date(v[i]),
            (VectorData::I32(v), _) => Value::Int32(v[i]),
            (VectorData::I64(v), _) => Value::Int64(v[i]),
            (VectorData::F64(v), _) => Value::Float64(v[i]),
            (VectorData::Str(v), _) => Value::Varchar(v.get(i).to_string()),
        }
    }

    /// A copy of rows `[start, start + count)` as a new vector.
    pub fn slice(&self, start: usize, count: usize) -> Vector {
        assert!(start + count <= self.len());
        let data = match &self.data {
            VectorData::I32(v) => VectorData::I32(v[start..start + count].to_vec()),
            VectorData::I64(v) => VectorData::I64(v[start..start + count].to_vec()),
            VectorData::F64(v) => VectorData::F64(v[start..start + count].to_vec()),
            VectorData::Str(v) => {
                let mut s = StrVec::new();
                for i in start..start + count {
                    s.push(v.get(i));
                }
                VectorData::Str(s)
            }
        };
        let mut validity = Validity::all_valid(0);
        for i in start..start + count {
            validity.push(self.validity.is_valid(i));
        }
        Vector {
            ty: self.ty,
            data,
            validity,
        }
    }

    /// Append an owned value, which must match the vector's type or be NULL.
    pub fn push_value(&mut self, val: &Value) -> Result<()> {
        match (val, &mut self.data) {
            (Value::Null, data) => {
                // Push a zero of the right physical type, marked invalid.
                match data {
                    VectorData::I32(v) => v.push(0),
                    VectorData::I64(v) => v.push(0),
                    VectorData::F64(v) => v.push(0.0),
                    VectorData::Str(v) => v.push(""),
                }
                self.validity.push(false);
                return Ok(());
            }
            (Value::Int32(x), VectorData::I32(v)) if self.ty == LogicalType::Int32 => v.push(*x),
            (Value::Date(x), VectorData::I32(v)) if self.ty == LogicalType::Date => v.push(*x),
            (Value::Int64(x), VectorData::I64(v)) => v.push(*x),
            (Value::Float64(x), VectorData::F64(v)) => v.push(*x),
            (Value::Varchar(x), VectorData::Str(v)) => v.push(x),
            _ => {
                return Err(Error::InvalidInput(format!(
                    "cannot push {:?} into a {} vector",
                    val.logical_type(),
                    self.ty
                )))
            }
        }
        self.validity.push(true);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_round_trip() {
        let v = Vector::from_i64(vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.i64s(), &[1, 2, 3]);
        assert_eq!(v.value(1), Value::Int64(2));
        assert_eq!(v.logical_type(), LogicalType::Int64);
    }

    #[test]
    fn date_is_i32_backed() {
        let v = Vector::from_dates(vec![10, 20]);
        assert_eq!(v.logical_type(), LogicalType::Date);
        assert_eq!(v.i32s(), &[10, 20]);
        assert_eq!(v.value(0), Value::Date(10));
    }

    #[test]
    fn strings() {
        let v = Vector::from_strs(["a", "", "long string that is not inlined anywhere"]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.str_at(0), "a");
        assert_eq!(v.str_at(1), "");
        assert_eq!(v.str_at(2), "long string that is not inlined anywhere");
    }

    #[test]
    fn nulls_via_values() {
        let vals = vec![Value::Int64(1), Value::Null, Value::Int64(3)];
        let v = Vector::from_values(LogicalType::Int64, &vals).unwrap();
        assert_eq!(v.value(0), Value::Int64(1));
        assert_eq!(v.value(1), Value::Null);
        assert_eq!(v.value(2), Value::Int64(3));
        assert_eq!(v.validity().null_count(), 1);
    }

    #[test]
    fn type_mismatch_push_errors() {
        let mut v = Vector::empty(LogicalType::Int64);
        let err = v.push_value(&Value::Varchar("x".into())).unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)));
    }

    #[test]
    fn int32_vs_date_push_are_distinct() {
        let mut d = Vector::empty(LogicalType::Date);
        assert!(d.push_value(&Value::Int32(5)).is_err());
        assert!(d.push_value(&Value::Date(5)).is_ok());

        let mut i = Vector::empty(LogicalType::Int32);
        assert!(i.push_value(&Value::Date(5)).is_err());
        assert!(i.push_value(&Value::Int32(5)).is_ok());
    }

    #[test]
    #[should_panic(expected = "not int64")]
    fn wrong_accessor_panics() {
        Vector::from_i32(vec![1]).i64s();
    }

    #[test]
    fn slice_copies_values_and_validity() {
        let vals = vec![
            Value::Int64(1),
            Value::Null,
            Value::Int64(3),
            Value::Int64(4),
        ];
        let v = Vector::from_values(LogicalType::Int64, &vals).unwrap();
        let s = v.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(0), Value::Null);
        assert_eq!(s.value(1), Value::Int64(3));
    }

    #[test]
    fn slice_strings() {
        let v = Vector::from_strs(["aa", "bb", "cc"]);
        let s = v.slice(2, 1);
        assert_eq!(s.str_at(0), "cc");
        let empty = v.slice(1, 0);
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn null_string_round_trip() {
        let vals = vec![Value::Varchar("x".into()), Value::Null];
        let v = Vector::from_values(LogicalType::Varchar, &vals).unwrap();
        assert_eq!(v.value(0), Value::Varchar("x".into()));
        assert_eq!(v.value(1), Value::Null);
    }
}
