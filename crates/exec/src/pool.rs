//! A shared worker pool and per-query execution context.
//!
//! The original pipeline executor spawned a fresh set of scoped threads for
//! every [`Pipeline::run`](crate::pipeline::Pipeline::run) and
//! [`parallel_for`](crate::pipeline::parallel_for) call. That is fine for a
//! single benchmark query but wrong for a concurrent query service: `Q`
//! queries × `T` pipeline threads each would burst-spawn `Q×T` OS threads and
//! oversubscribe the machine precisely when it is busiest.
//!
//! [`WorkerPool`] fixes the thread count once. Work is submitted as a *job*
//! of `units` identical work units (one unit = one pipeline worker streaming
//! morsels, or one `parallel_for` claim loop). The submitting thread always
//! participates in its own job: it claims units from the same atomic counter
//! the pool workers use, so a job makes progress even when every pool worker
//! is busy with other queries — saturation degrades to inline execution
//! instead of deadlock.
//!
//! [`ExecContext`] bundles the pool handle with a [`CancelToken`] so that
//! operators deep in the engine can both schedule work and observe
//! cancellation without threading two extra parameters everywhere.

use crate::error::{Error, Result};
use crate::pipeline::CancelToken;
use parking_lot::{Condvar, Mutex};
use rexa_obs::{ProfileCollector, SpanCollector};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Spawn a named long-lived worker thread. The pool uses this for its
/// compute workers and the buffer manager's I/O scheduler for its
/// writer/reader threads, so every engine thread follows the same naming
/// convention (`rexa-*`) and spawn-failure policy.
pub fn spawn_named(name: String, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("spawn engine worker thread")
}

/// A fixed-size pool of OS worker threads shared by all running queries.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

struct PoolShared {
    /// Jobs with unclaimed units. A job appears once per helper ticket; a
    /// popped ticket drains the job's unit counter until it is exhausted.
    queue: Mutex<VecDeque<Arc<JobCore>>>,
    /// Signalled when tickets are enqueued or shutdown is requested.
    work_ready: Condvar,
    shutdown: AtomicBool,
}

/// Shared state of one `run` call.
///
/// # Safety
///
/// `work` is a raw pointer to a closure on the submitting thread's stack. It
/// is only dereferenced between a successful unit claim (`next_unit` below
/// `units`) and that unit's completion decrement of `remaining`; `run`
/// blocks until `remaining` reaches zero, so the referent outlives every
/// dereference. A ticket popped after the counter is exhausted returns
/// without touching `work`, which is why it is stored as a raw pointer (a
/// dangling reference would be invalid even if never dereferenced).
struct JobCore {
    work: *const (dyn Fn() -> Result<()> + Sync),
    units: usize,
    next_unit: AtomicUsize,
    /// Units not yet completed; guarded so `done` can be waited on.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First error, preferring real errors over `Cancelled` (a worker that
    /// observes failure-induced cancellation must not mask the root cause).
    first_err: Mutex<Option<Error>>,
}

unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Claim and execute units until the counter is exhausted.
    ///
    /// A panicking unit is converted to [`Error::Internal`], matching the
    /// scoped-thread fallback ([`run_scoped`](crate::pipeline)): the panic
    /// must not unwind out of here, because the completion decrement below
    /// is what lets `run` release the closure — skipping it would leave
    /// `run` deadlocked and other claimants dereferencing a freed closure.
    fn run_units(&self) {
        loop {
            let unit = self.next_unit.fetch_add(1, Ordering::Relaxed);
            if unit >= self.units {
                return;
            }
            // SAFETY: the claim above succeeded, so `run` is still blocked
            // waiting for this unit and the closure is alive (see JobCore).
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (*self.work)()
            }))
            .unwrap_or_else(|_| Err(Error::Internal("worker thread panicked".into())));
            if let Err(e) = result {
                let mut slot = self.first_err.lock();
                match &*slot {
                    None => *slot = Some(e),
                    Some(Error::Cancelled) if !matches!(e, Error::Cancelled) => *slot = Some(e),
                    Some(_) => {}
                }
            }
            let mut remaining = self.remaining.lock();
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Block until every unit has completed.
    fn wait_done(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.done.wait(&mut remaining);
        }
    }
}

/// Blocks in `Drop` until the job's units are all complete. `run` holds one
/// of these across everything it does after publishing helper tickets, so
/// even if it unwinds (nothing in `run` should panic, but the closure
/// dereferences make the cost of being wrong a use-after-free), the stack
/// frame holding the work closure cannot be popped while a helper might
/// still dereference it.
struct WaitDoneGuard<'a>(&'a JobCore);

impl Drop for WaitDoneGuard<'_> {
    fn drop(&mut self) {
        self.0.wait_done();
    }
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                spawn_named(format!("rexa-worker-{i}"), move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            threads,
        }
    }

    /// Number of pool workers (not counting participating submitters).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `units` invocations of `work`, spread across the pool workers
    /// and the calling thread. Blocks until every unit has finished; returns
    /// the first error, preferring real errors over [`Error::Cancelled`].
    pub fn run(&self, units: usize, work: &(dyn Fn() -> Result<()> + Sync)) -> Result<()> {
        if units == 0 {
            return Ok(());
        }
        if units == 1 {
            return std::panic::catch_unwind(std::panic::AssertUnwindSafe(work))
                .unwrap_or_else(|_| Err(Error::Internal("worker thread panicked".into())));
        }
        // SAFETY: lifetime erasure only; the pointer is stored raw and the
        // JobCore invariant (dereference only between claim and completion,
        // `run` blocks until all units complete) keeps every use in-bounds.
        let work: &'static (dyn Fn() -> Result<()> + Sync) = unsafe { std::mem::transmute(work) };
        let job = Arc::new(JobCore {
            work: work as *const _,
            units,
            next_unit: AtomicUsize::new(0),
            remaining: Mutex::new(units),
            done: Condvar::new(),
            first_err: Mutex::new(None),
        });
        // One helper ticket per unit the caller will not run itself, capped
        // at the pool size: each ticket drains the counter, so more tickets
        // than workers buys nothing.
        let helpers = (units - 1).min(self.threads);
        // Once a ticket is published the closure may be dereferenced by
        // helpers; the guard keeps this frame alive until every unit
        // completes even if an unexpected unwind tries to pop it early.
        let guard = WaitDoneGuard(&job);
        {
            let mut queue = self.shared.queue.lock();
            for _ in 0..helpers {
                queue.push_back(Arc::clone(&job));
            }
        }
        for _ in 0..helpers {
            self.shared.work_ready.notify_one();
        }
        // The caller works on its own job: progress is guaranteed even when
        // every pool worker is busy elsewhere. Panicking units are caught
        // inside `run_units` and surfaced as `Error::Internal`.
        job.run_units();
        drop(guard); // blocks until all units (including helpers') are done
        let first_err = job.first_err.lock().take();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                shared.work_ready.wait(&mut queue);
            }
        };
        job.run_units();
    }
}

/// A pre-admitted memory grant that a query's unspillable allocations draw
/// from instead of charging the global accounting a second time.
///
/// The query service reserves a query's estimated footprint *before* launch;
/// the reservation is the grant. As the operator materialises the memory the
/// estimate promised (hash-table entry arrays), it carves matching bytes out
/// of the grant, so the global gauge sees each byte once: first as grant,
/// then as allocation. The returned token owns the carved bytes — dropping
/// it releases them to the underlying accounting, not back to the grant.
pub trait MemoryGrant: Send + Sync {
    /// Take `bytes` from the grant, or `None` when less than that remains.
    fn take(&self, bytes: usize) -> Option<Box<dyn std::any::Any + Send + Sync>>;

    /// Release up to `bytes` from the grant back to the underlying
    /// accounting, returning how many were released. Used to offset charges
    /// that cannot route through a token — e.g. pages about to be pinned:
    /// the grant gives the headroom back just as the pins consume it.
    fn spend(&self, bytes: usize) -> usize;
}

/// Per-query execution context: where to run parallel work and how to notice
/// cancellation. Cheap to clone; all clones share the same token and pool.
#[derive(Clone, Default)]
pub struct ExecContext {
    pool: Option<Arc<WorkerPool>>,
    cancel: CancelToken,
    grant: Option<Arc<dyn MemoryGrant>>,
    profile: Option<Arc<ProfileCollector>>,
    spans: Option<Arc<SpanCollector>>,
}

impl ExecContext {
    /// A context with no pool (parallel work falls back to scoped threads)
    /// and a fresh token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context that schedules parallel work on `pool`.
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        ExecContext {
            pool: Some(pool),
            cancel: CancelToken::new(),
            grant: None,
            profile: None,
            spans: None,
        }
    }

    /// Replace the cancellation token (builder style).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attach a memory grant (builder style).
    pub fn with_grant(mut self, grant: Arc<dyn MemoryGrant>) -> Self {
        self.grant = Some(grant);
        self
    }

    /// Attach a per-query profile collector (builder style). Pipeline and
    /// `parallel_for` workers credit their busy time and executed work
    /// units to the collector's current phase.
    pub fn with_profile(mut self, profile: Arc<ProfileCollector>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// The attached profile collector, if any.
    pub fn profile(&self) -> Option<&Arc<ProfileCollector>> {
        self.profile.as_ref()
    }

    /// Attach a per-query span collector (builder style). Workers record
    /// timeline spans (probe, flush, per-partition merge, background I/O)
    /// into lock-free per-worker buffers; the operator merges them into
    /// `QueryProfile::timeline` at query end. When absent — the default —
    /// every instrumentation site is a skipped `Option` check and no
    /// timestamps are taken.
    pub fn with_spans(mut self, spans: Arc<SpanCollector>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// The attached span collector, if any.
    pub fn spans(&self) -> Option<&Arc<SpanCollector>> {
        self.spans.as_ref()
    }

    /// Carve `bytes` out of the attached grant. `None` when no grant is
    /// attached or it has fewer than `bytes` left — the caller then charges
    /// the regular accounting instead.
    pub fn carve(&self, bytes: usize) -> Option<Box<dyn std::any::Any + Send + Sync>> {
        self.grant.as_ref()?.take(bytes)
    }

    /// Release up to `bytes` from the attached grant to the underlying
    /// accounting (see [`MemoryGrant::spend`]); 0 when no grant is attached.
    pub fn spend_grant(&self, bytes: usize) -> usize {
        self.grant.as_ref().map_or(0, |g| g.spend(bytes))
    }

    /// The query's cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Err([`Error::Cancelled`]) if cancellation was requested.
    pub fn check_cancelled(&self) -> Result<()> {
        self.cancel.check()
    }

    /// The shared pool, if this context has one.
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Run `units` invocations of `work` on the pool (caller participating),
    /// or on scoped threads when no pool is attached.
    pub fn run_units(&self, units: usize, work: &(dyn Fn() -> Result<()> + Sync)) -> Result<()> {
        match &self.pool {
            Some(pool) => pool.run(units, work),
            None => crate::pipeline::run_scoped(units, work),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;
    use std::time::Duration;

    #[test]
    fn pool_runs_all_units() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.run(16, &|| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_zero_and_one_units() {
        let pool = WorkerPool::new(2);
        pool.run(0, &|| panic!("no units expected")).unwrap();
        let ran = AtomicBool::new(false);
        pool.run(1, &|| {
            ran.store(true, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn pool_prefers_real_error_over_cancelled() {
        let pool = WorkerPool::new(2);
        let n = AtomicUsize::new(0);
        let err = pool
            .run(2, &|| match n.fetch_add(1, Ordering::Relaxed) {
                0 => Err(Error::Cancelled),
                _ => Err(Error::Unsupported("specific".into())),
            })
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn panicking_units_surface_as_error_and_pool_survives() {
        let pool = WorkerPool::new(2);
        // Multi-unit job: panics on helper workers and on the submitting
        // thread must all be caught, every unit accounted for (no deadlock,
        // no use-after-free), and the pool must stay usable afterwards.
        let n = AtomicUsize::new(0);
        let err = pool
            .run(8, &|| {
                if n.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                    panic!("unit panic");
                }
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
        // Single-unit fast path panics are converted the same way.
        let err = pool.run(1, &|| panic!("single unit panic")).unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
        // All workers are still alive and serving jobs.
        let counter = AtomicUsize::new(0);
        pool.run(8, &|| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn saturated_pool_still_makes_progress() {
        // Two concurrent jobs on a single-worker pool: even if the worker is
        // stuck on one job, the other job's submitter drives its own units.
        let pool = Arc::new(WorkerPool::new(1));
        let total = Arc::new(AtomicI64::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    pool.run(8, &|| {
                        std::thread::sleep(Duration::from_millis(2));
                        total.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })
                    .unwrap();
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn sequential_jobs_reuse_workers() {
        let pool = WorkerPool::new(3);
        for round in 0..10 {
            let counter = AtomicUsize::new(0);
            pool.run(4, &|| {
                counter.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 4, "round {round}");
        }
    }

    #[test]
    fn context_without_pool_falls_back_to_scoped_threads() {
        let ctx = ExecContext::new();
        let counter = AtomicUsize::new(0);
        ctx.run_units(4, &|| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn context_cancellation_is_shared_between_clones() {
        let ctx = ExecContext::with_pool(Arc::new(WorkerPool::new(2)));
        let clone = ctx.clone();
        assert!(ctx.check_cancelled().is_ok());
        clone.cancel_token().cancel();
        assert!(matches!(ctx.check_cancelled(), Err(Error::Cancelled)));
    }
}
