//! Engine-wide error type.

use std::fmt;

/// Convenience alias used across all rexa crates.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type shared by every rexa crate.
#[derive(Debug)]
pub enum Error {
    /// A memory reservation could not be satisfied even after evicting every
    /// evictable buffer. The robust aggregation operator is designed to avoid
    /// this error by keeping its working set pinned below the limit; the
    /// in-memory baseline aborts with it, reproducing the 'A' cells of the
    /// paper's Tables II/III.
    OutOfMemory {
        /// Bytes the failing reservation asked for.
        requested: usize,
        /// The configured memory limit in bytes.
        limit: usize,
        /// Bytes in use at the time of the failure.
        used: usize,
    },
    /// An I/O error from the database file or a temporary spill file.
    Io(std::io::Error),
    /// A spill write failed even after the buffer manager's bounded
    /// retry-with-backoff: the eviction path could not move a temporary
    /// page to disk (disk full, device error, …). The failing query is
    /// aborted cleanly — pins, reservations, and temp-file slots released —
    /// while the shared buffer manager stays usable for other queries.
    SpillFailed {
        /// The underlying I/O error from the final attempt.
        source: std::io::Error,
        /// Size of the buffer that could not be spilled.
        bytes: usize,
        /// Transient-error retries performed before giving up.
        retries: u32,
    },
    /// The query was cancelled, e.g. by the benchmark harness timeout
    /// (the paper times queries out after 10 minutes; 'T' cells).
    Cancelled,
    /// The query exceeded its per-query deadline and was cancelled by the
    /// service; distinguished from [`Error::Cancelled`] so callers can tell
    /// their own `cancel()` apart from a timeout.
    DeadlineExceeded,
    /// The query service shed this request: the admission queue was already
    /// holding `queued` requests against a bound of `bound`. Overload is
    /// reported as this typed error instead of letting requests pile up
    /// until memory runs out.
    Overloaded {
        /// Requests waiting for admission when this one arrived.
        queued: usize,
        /// The configured admission-queue bound.
        bound: usize,
    },
    /// A feature that rexa intentionally does not implement
    /// (e.g. MIN/MAX over VARCHAR, see DESIGN.md).
    Unsupported(String),
    /// A caller error: mismatched types, wrong column counts, etc.
    InvalidInput(String),
    /// An internal invariant was violated; always a bug.
    Internal(String),
}

impl Error {
    /// True if this is the out-of-memory condition.
    pub fn is_oom(&self) -> bool {
        matches!(self, Error::OutOfMemory { .. })
    }

    /// True for errors rooted in storage I/O — a raw [`Error::Io`] or a
    /// spill failure wrapping one. The chaos suite accepts exactly these
    /// (plus OOM) as legal outcomes of a fault-injected run.
    pub fn is_io(&self) -> bool {
        matches!(self, Error::Io(_) | Error::SpillFailed { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfMemory {
                requested,
                limit,
                used,
            } => write!(
                f,
                "out of memory: requested {requested} bytes with {used}/{limit} in use \
                 and nothing left to evict"
            ),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::SpillFailed {
                source,
                bytes,
                retries,
            } => write!(
                f,
                "spill of {bytes} bytes failed after {retries} retries: {source}"
            ),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::DeadlineExceeded => write!(f, "query deadline exceeded"),
            Error::Overloaded { queued, bound } => write!(
                f,
                "service overloaded: admission queue full ({queued}/{bound} requests waiting)"
            ),
            Error::Unsupported(s) => write!(f, "unsupported: {s}"),
            Error::InvalidInput(s) => write!(f, "invalid input: {s}"),
            Error::Internal(s) => write!(f, "internal error (bug): {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::SpillFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_oom() {
        let e = Error::OutOfMemory {
            requested: 42,
            limit: 100,
            used: 90,
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("90/100"));
        assert!(e.is_oom());
    }

    #[test]
    fn io_error_round_trip() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(!e.is_oom());
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn cancelled_is_not_oom() {
        assert!(!Error::Cancelled.is_oom());
    }

    #[test]
    fn spill_failed_carries_context() {
        let e = Error::SpillFailed {
            source: std::io::Error::from_raw_os_error(28),
            bytes: 4096,
            retries: 3,
        };
        assert!(e.is_io());
        assert!(!e.is_oom());
        let s = e.to_string();
        assert!(s.contains("4096"), "{s}");
        assert!(s.contains("3 retries"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_service_errors() {
        assert!(Error::DeadlineExceeded.to_string().contains("deadline"));
        let e = Error::Overloaded {
            queued: 7,
            bound: 4,
        };
        let s = e.to_string();
        assert!(s.contains("7/4"));
        assert!(!e.is_oom());
    }
}
