//! The logical type system of the engine.
//!
//! rexa implements the types the paper's grouping benchmark needs:
//! fixed-width integers, floats, dates (stored as days since epoch), and
//! variable-length strings. Decimals (e.g. `l_quantity`) are represented as
//! scaled 64-bit integers by the data generator, matching how analytical
//! engines store low-precision decimals physically.

use std::fmt;

/// A column's logical type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalType {
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Calendar date, physically a 32-bit day offset from 1970-01-01.
    Date,
    /// Variable-length UTF-8 string. The only variable-width type; inside the
    /// spillable row layout it becomes a 16-byte Umbra-style string
    /// (see `rexa-layout`).
    Varchar,
}

impl LogicalType {
    /// Width in bytes of the *row-layout representation* of this type.
    /// Fixed-width types store their value inline; `Varchar` stores a
    /// 16-byte Umbra-style string struct.
    pub const fn row_width(self) -> usize {
        match self {
            LogicalType::Int32 | LogicalType::Date => 4,
            LogicalType::Int64 | LogicalType::Float64 => 8,
            LogicalType::Varchar => 16,
        }
    }

    /// True for types whose value data can be larger than the row slot
    /// (strings with their character data on heap pages).
    pub const fn is_variable(self) -> bool {
        matches!(self, LogicalType::Varchar)
    }

    /// Short lowercase name, used in error messages and harness output.
    pub const fn name(self) -> &'static str {
        match self {
            LogicalType::Int32 => "int32",
            LogicalType::Int64 => "int64",
            LogicalType::Float64 => "float64",
            LogicalType::Date => "date",
            LogicalType::Varchar => "varchar",
        }
    }
}

impl fmt::Display for LogicalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(LogicalType::Int32.row_width(), 4);
        assert_eq!(LogicalType::Date.row_width(), 4);
        assert_eq!(LogicalType::Int64.row_width(), 8);
        assert_eq!(LogicalType::Float64.row_width(), 8);
        assert_eq!(LogicalType::Varchar.row_width(), 16);
    }

    #[test]
    fn variability() {
        assert!(LogicalType::Varchar.is_variable());
        assert!(!LogicalType::Int64.is_variable());
        assert!(!LogicalType::Date.is_variable());
    }

    #[test]
    fn display_names_are_unique() {
        let names = [
            LogicalType::Int32,
            LogicalType::Int64,
            LogicalType::Float64,
            LogicalType::Date,
            LogicalType::Varchar,
        ]
        .map(|t| t.to_string());
        let mut sorted = names.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
