//! `rexa-exec`: the vectorized execution substrate of the rexa engine.
//!
//! This crate provides the building blocks every other rexa crate stands on:
//!
//! * [`LogicalType`] / [`Value`] — the type system of the engine,
//! * [`Vector`] / [`DataChunk`] — columnar batches of up to
//!   [`VECTOR_SIZE`] tuples, the unit of vectorized execution,
//! * [`hashing`] — vectorized 64-bit hashing with the salt/radix/offset
//!   bit-budget used by the aggregation hash table,
//! * [`pipeline`] — a small morsel-driven parallelism framework
//!   (sources, sinks, thread-local state, combine, parallel task loops),
//! * [`pool`] — a shared [`WorkerPool`] plus the per-query [`ExecContext`]
//!   (pool handle + cancellation token) that the query service hands down
//!   to operators,
//! * [`Error`] — the engine-wide error type, including the
//!   [`Error::OutOfMemory`] condition that the robust aggregation is designed
//!   never to hit and that the baseline algorithms hit head-on.
//!
//! The design follows the paper's description of DuckDB's vectorized engine
//! (Section II, "Streaming query execution"): small, cache-resident column
//! vectors flow through operators in batches of at most 2048 tuples.

pub mod chunk;
pub mod error;
pub mod hashing;
pub mod pipeline;
pub mod pool;
pub mod types;
pub mod validity;
pub mod value;
pub mod vector;

pub use chunk::{ChunkCollection, DataChunk, VECTOR_SIZE};
pub use error::{Error, Result};
pub use pipeline::{CancelToken, ChunkSource, LocalSink, ParallelSink, Pipeline};
pub use pool::{spawn_named, ExecContext, MemoryGrant, WorkerPool};
pub use types::LogicalType;
pub use validity::Validity;
pub use value::Value;
pub use vector::Vector;
