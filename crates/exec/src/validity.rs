//! NULL tracking for vectors: a bit-packed validity mask.

/// A validity mask over the rows of a [`crate::Vector`].
///
/// `None` inside means "all rows valid", the common fast path: no bitmask is
/// allocated or consulted until the first NULL is set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Validity {
    /// One bit per row, 1 = valid. Lazily allocated.
    bits: Option<Vec<u64>>,
    /// Number of rows covered.
    len: usize,
}

impl Validity {
    /// An all-valid mask over `len` rows.
    pub fn all_valid(len: usize) -> Self {
        Validity { bits: None, len }
    }

    /// Number of rows covered by this mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if no row is NULL (fast path check).
    pub fn no_nulls(&self) -> bool {
        self.bits.is_none()
    }

    /// Whether row `i` is valid (non-NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        match &self.bits {
            None => true,
            Some(bits) => (bits[i / 64] >> (i % 64)) & 1 == 1,
        }
    }

    /// Mark row `i` as NULL, materializing the bitmask if necessary.
    pub fn set_invalid(&mut self, i: usize) {
        assert!(i < self.len, "validity index {i} out of range {}", self.len);
        let bits = self
            .bits
            .get_or_insert_with(|| vec![u64::MAX; self.len.div_ceil(64)]);
        bits[i / 64] &= !(1u64 << (i % 64));
    }

    /// Mark row `i` as valid.
    pub fn set_valid(&mut self, i: usize) {
        assert!(i < self.len);
        if let Some(bits) = &mut self.bits {
            bits[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Extend the mask to cover one more row, with the given validity.
    pub fn push(&mut self, valid: bool) {
        let i = self.len;
        self.len += 1;
        if let Some(bits) = &mut self.bits {
            if bits.len() * 64 < self.len {
                bits.push(u64::MAX);
            }
        } else if !valid {
            self.bits = Some(vec![u64::MAX; self.len.div_ceil(64)]);
        }
        if !valid {
            self.set_invalid(i);
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match &self.bits {
            None => 0,
            Some(bits) => {
                let mut nulls = 0;
                for i in 0..self.len {
                    if (bits[i / 64] >> (i % 64)) & 1 == 0 {
                        nulls += 1;
                    }
                }
                nulls
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_has_no_mask() {
        let v = Validity::all_valid(100);
        assert!(v.no_nulls());
        assert!(v.is_valid(0));
        assert!(v.is_valid(99));
        assert_eq!(v.null_count(), 0);
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn set_invalid_materializes() {
        let mut v = Validity::all_valid(130);
        v.set_invalid(0);
        v.set_invalid(64);
        v.set_invalid(129);
        assert!(!v.no_nulls());
        assert!(!v.is_valid(0));
        assert!(v.is_valid(1));
        assert!(!v.is_valid(64));
        assert!(v.is_valid(65));
        assert!(!v.is_valid(129));
        assert_eq!(v.null_count(), 3);
    }

    #[test]
    fn set_valid_restores() {
        let mut v = Validity::all_valid(10);
        v.set_invalid(5);
        assert!(!v.is_valid(5));
        v.set_valid(5);
        assert!(v.is_valid(5));
        assert_eq!(v.null_count(), 0);
    }

    #[test]
    fn push_grows() {
        let mut v = Validity::all_valid(0);
        for i in 0..200 {
            v.push(i % 3 != 0);
        }
        assert_eq!(v.len(), 200);
        for i in 0..200 {
            assert_eq!(v.is_valid(i), i % 3 != 0, "row {i}");
        }
        assert_eq!(v.null_count(), 67);
    }

    #[test]
    fn push_all_valid_stays_maskless() {
        let mut v = Validity::all_valid(0);
        for _ in 0..100 {
            v.push(true);
        }
        assert!(v.no_nulls());
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn push_after_materialization_tracks_words() {
        let mut v = Validity::all_valid(0);
        v.push(false);
        for _ in 0..127 {
            v.push(true);
        }
        v.push(false);
        assert_eq!(v.len(), 129);
        assert!(!v.is_valid(0));
        assert!(!v.is_valid(128));
        assert_eq!(v.null_count(), 2);
    }
}
