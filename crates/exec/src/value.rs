//! Owned scalar values, used for query results, testing, and debugging.
//! The hot paths never allocate `Value`s; they operate on vectors and rows.

use crate::types::LogicalType;
use std::cmp::Ordering;
use std::fmt;

/// An owned scalar value of any [`LogicalType`], plus NULL.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (of any type).
    Null,
    /// A 32-bit integer.
    Int32(i32),
    /// A 64-bit integer.
    Int64(i64),
    /// A 64-bit float.
    Float64(f64),
    /// A date (days since 1970-01-01).
    Date(i32),
    /// A string.
    Varchar(String),
}

impl Value {
    /// The logical type of this value, or `None` for NULL.
    pub fn logical_type(&self) -> Option<LogicalType> {
        match self {
            Value::Null => None,
            Value::Int32(_) => Some(LogicalType::Int32),
            Value::Int64(_) => Some(LogicalType::Int64),
            Value::Float64(_) => Some(LogicalType::Float64),
            Value::Date(_) => Some(LogicalType::Date),
            Value::Varchar(_) => Some(LogicalType::Varchar),
        }
    }

    /// True if this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used by tests and the sort-based baseline: NULLs first,
    /// then by value; floats ordered by `total_cmp`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int32(a), Int32(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            _ => panic!(
                "total_cmp across mismatched types: {:?} vs {:?}",
                self.logical_type(),
                other.logical_type()
            ),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date({v})"),
            Value::Varchar(v) => write!(f, "'{v}'"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types() {
        assert_eq!(Value::from(3i64).logical_type(), Some(LogicalType::Int64));
        assert_eq!(Value::from("x").logical_type(), Some(LogicalType::Varchar));
        assert_eq!(Value::Null.logical_type(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn ordering_nulls_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int64(1)), Ordering::Less);
        assert_eq!(Value::Int64(1).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn ordering_floats_total() {
        let nan = Value::Float64(f64::NAN);
        let one = Value::Float64(1.0);
        // total_cmp puts NaN after all numbers
        assert_eq!(nan.total_cmp(&one), Ordering::Greater);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int32(7).to_string(), "7");
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn ordering_mismatched_types_panics() {
        let _ = Value::Int64(1).total_cmp(&Value::Varchar("x".into()));
    }
}
