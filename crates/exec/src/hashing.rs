//! Vectorized 64-bit hashing and the hash bit budget.
//!
//! One 64-bit hash per tuple is computed once, when the tuple first enters
//! the aggregation, and reused everywhere after (it is materialized in the
//! row layout). The paper carves the 64 bits into three non-overlapping
//! regions:
//!
//! ```text
//!   63 ........ 48 | 47 ...... 48-r | ...........  0
//!   salt (16 bits) | radix (r bits) | table offset (low bits)
//! ```
//!
//! * **salt** — the top 16 bits, stored in the unused upper bits of hash
//!   table entries so most non-matching collisions are rejected without a
//!   pointer dereference (Section V, "Salt");
//! * **radix** — up to [`MAX_RADIX_BITS`] bits directly below the salt,
//!   selecting the partition (Section V, "Partitioning");
//! * **offset** — the low bits, indexing the hash table's entry array.
//!
//! Keeping the regions disjoint matters: reusing salt bits for partitioning
//! would make every tuple in a partition share part of its salt, weakening
//! collision rejection.

use crate::vector::{Vector, VectorData};

/// Bits of the hash used as the in-entry salt (the top 16).
pub const SALT_BITS: u32 = 16;

/// Bits of a hash-table entry used for the row pointer (x86-64/aarch64
/// canonical user-space addresses fit in 48 bits).
pub const POINTER_BITS: u32 = 48;

/// Maximum radix partition bits, keeping the radix region inside bits
/// `[48 - MAX_RADIX_BITS, 48)`, below the salt.
pub const MAX_RADIX_BITS: u32 = 16;

/// Hash reserved for NULL values so NULL groups hash consistently.
const NULL_HASH: u64 = 0xbf58_476d_1ce4_e5b9;

/// The salt of a hash: its top 16 bits.
#[inline]
pub fn salt(hash: u64) -> u16 {
    (hash >> POINTER_BITS) as u16
}

/// The radix partition index of a hash for a given number of radix bits.
///
/// # Panics
/// If `bits > MAX_RADIX_BITS` (debug only).
#[inline]
pub fn radix(hash: u64, bits: u32) -> usize {
    debug_assert!(bits <= MAX_RADIX_BITS);
    if bits == 0 {
        return 0;
    }
    ((hash >> (POINTER_BITS - bits)) & ((1u64 << bits) - 1)) as usize
}

/// SplitMix64 / MurmurHash3 finalizer: a full-avalanche mix of 64 bits.
#[inline]
pub fn mix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Combine two hashes (boost-style), order-sensitive.
#[inline]
pub fn combine_hashes(lhs: u64, rhs: u64) -> u64 {
    lhs ^ rhs
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lhs << 6)
        .wrapping_add(lhs >> 2)
}

/// Hash a byte string (FNV-1a over 8-byte lanes, then finalized).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lane = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ lane).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    h = (h ^ tail ^ (bytes.len() as u64) << 56).wrapping_mul(0x0000_0100_0000_01b3);
    mix64(h)
}

/// Hash a single 64-bit lane (used for all fixed-width types).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    mix64(v)
}

/// Normalize a float *group key*: `-0.0` becomes `0.0` so the two equal
/// values hash, compare, and materialize identically (one group). NaN bit
/// patterns are preserved — NaN keys group bitwise, which keeps grouping
/// total without imposing an order. Every place a float key is hashed,
/// compared against a materialized row, or written into one must go through
/// this function.
#[inline]
pub fn normalize_f64_key(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// Hash every row of `col` into `hashes`. If `combine` is false the hashes
/// are overwritten (first group column); otherwise they are combined with the
/// existing values (subsequent group columns).
pub fn hash_vector(col: &Vector, hashes: &mut [u64], combine: bool) {
    assert_eq!(col.len(), hashes.len());
    let validity = col.validity();
    macro_rules! go {
        ($iter:expr) => {
            if combine {
                for (i, h) in $iter {
                    hashes[i] = combine_hashes(hashes[i], h);
                }
            } else {
                for (i, h) in $iter {
                    hashes[i] = h;
                }
            }
        };
    }
    match col.data() {
        VectorData::I32(vals) => {
            go!(vals.iter().enumerate().map(|(i, &v)| {
                let h = if validity.is_valid(i) {
                    hash_u64(v as u32 as u64)
                } else {
                    NULL_HASH
                };
                (i, h)
            }));
        }
        VectorData::I64(vals) => {
            go!(vals.iter().enumerate().map(|(i, &v)| {
                let h = if validity.is_valid(i) {
                    hash_u64(v as u64)
                } else {
                    NULL_HASH
                };
                (i, h)
            }));
        }
        VectorData::F64(vals) => {
            go!(vals.iter().enumerate().map(|(i, &v)| {
                let h = if validity.is_valid(i) {
                    hash_u64(normalize_f64_key(v).to_bits())
                } else {
                    NULL_HASH
                };
                (i, h)
            }));
        }
        VectorData::Str(vals) => {
            go!((0..col.len()).map(|i| {
                let h = if validity.is_valid(i) {
                    hash_bytes(vals.get(i).as_bytes())
                } else {
                    NULL_HASH
                };
                (i, h)
            }));
        }
    }
}

/// Hash a set of group columns into one 64-bit hash per row.
pub fn hash_columns(cols: &[&Vector], len: usize) -> Vec<u64> {
    let mut hashes = vec![0u64; len];
    for (ci, col) in cols.iter().enumerate() {
        hash_vector(col, &mut hashes, ci > 0);
    }
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::LogicalType;

    #[test]
    fn salt_is_top_bits() {
        assert_eq!(salt(0xABCD_0000_0000_0000), 0xABCD);
        assert_eq!(salt(0x0000_FFFF_FFFF_FFFF), 0);
    }

    #[test]
    fn radix_region_below_salt() {
        let h = 0xFFFF_0000_0000_0000u64; // only salt bits set
        for bits in 0..=MAX_RADIX_BITS {
            assert_eq!(radix(h, bits), 0, "radix must not read salt bits");
        }
        let h = u64::MAX >> SALT_BITS; // all bits below the salt
        assert_eq!(radix(h, 4), 0b1111);
        assert_eq!(radix(h, 0), 0);
    }

    #[test]
    fn radix_and_offset_disjoint_for_phase1_table() {
        // Phase-1 table has 2^17 entries -> offset bits [0, 17).
        // With max radix bits the radix region is [32, 48): disjoint.
        let offset_mask = (1u64 << 17) - 1;
        let h = offset_mask; // only offset bits set
        assert_eq!(radix(h, MAX_RADIX_BITS), 0);
    }

    #[test]
    fn mix64_avalanches() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = mix64(1);
        let b = mix64(2);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "poor avalanche: {flipped}");
    }

    #[test]
    fn hash_bytes_length_sensitivity() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abcd"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefgh\0"));
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
    }

    #[test]
    fn null_hashes_consistently() {
        let a = Vector::from_values(LogicalType::Int64, &[Value::Null, Value::Null]).unwrap();
        let h = hash_columns(&[&a], 2);
        assert_eq!(h[0], h[1]);
        let b = Vector::from_values(LogicalType::Varchar, &[Value::Null]).unwrap();
        let h2 = hash_columns(&[&b], 1);
        assert_eq!(h[0], h2[0], "NULL hash must be type-independent");
    }

    #[test]
    fn null_differs_from_zero() {
        let v = Vector::from_values(LogicalType::Int64, &[Value::Null, Value::Int64(0)]).unwrap();
        let h = hash_columns(&[&v], 2);
        assert_ne!(h[0], h[1]);
    }

    #[test]
    fn multi_column_combination_is_order_sensitive() {
        let a = Vector::from_i64(vec![1]);
        let b = Vector::from_i64(vec![2]);
        let h_ab = hash_columns(&[&a, &b], 1);
        let h_ba = hash_columns(&[&b, &a], 1);
        assert_ne!(h_ab, h_ba);
    }

    #[test]
    fn negative_zero_equals_zero() {
        let v = Vector::from_f64(vec![0.0, -0.0]);
        let h = hash_columns(&[&v], 2);
        assert_eq!(h[0], h[1]);
    }

    #[test]
    fn i32_and_date_hash_by_value() {
        let a = Vector::from_i32(vec![-1, 5]);
        let d = Vector::from_dates(vec![-1, 5]);
        assert_eq!(hash_columns(&[&a], 2), hash_columns(&[&d], 2));
    }

    #[test]
    fn string_hash_matches_per_row() {
        let v = Vector::from_strs(["x", "y", "x"]);
        let h = hash_columns(&[&v], 3);
        assert_eq!(h[0], h[2]);
        assert_ne!(h[0], h[1]);
    }
}
