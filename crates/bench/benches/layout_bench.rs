//! Page-layout micro-benchmarks (Figure 2's design claims):
//! scatter (column→row while partitioning), gather (row→column),
//! and the spill→reload→pointer-recomputation cycle vs. re-pinning pages
//! that never moved.

use criterion::{criterion_group, criterion_main, Criterion};
use rexa_buffer::{BufferManager, BufferManagerConfig};
use rexa_exec::{hashing, LogicalType, Vector};
use rexa_layout::{TupleDataCollection, TupleDataLayout};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 100_000;
const PAGE: usize = 64 << 10;

fn columns() -> (Vector, Vector) {
    let keys: Vec<i64> = (0..ROWS as i64).collect();
    let strs: Vec<String> = (0..ROWS)
        .map(|i| {
            if i % 2 == 0 {
                format!("k{i}")
            } else {
                format!("a longer string payload for row {i:08}")
            }
        })
        .collect();
    (Vector::from_i64(keys), Vector::from_strs(strs))
}

fn mgr() -> Arc<BufferManager> {
    BufferManager::new(
        BufferManagerConfig::with_limit(1 << 30)
            .page_size(PAGE)
            .temp_dir(rexa_storage::scratch_dir("lbench").unwrap()),
    )
    .unwrap()
}

fn layout() -> Arc<TupleDataLayout> {
    Arc::new(TupleDataLayout::new(
        vec![LogicalType::Int64, LogicalType::Varchar],
        vec![],
    ))
}

fn bench_layout(c: &mut Criterion) {
    let (keys, strs) = columns();
    let cols: Vec<&Vector> = vec![&keys, &strs];
    let hashes = hashing::hash_columns(&cols, ROWS);
    let m = mgr();

    let mut g = c.benchmark_group("layout");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(ROWS as u64));

    g.bench_function("scatter_100k_rows", |b| {
        b.iter(|| {
            let mut coll = TupleDataCollection::new(Arc::clone(&m), layout());
            for start in (0..ROWS).step_by(2048) {
                let end = (start + 2048).min(ROWS);
                let sel: Vec<u32> = (start as u32..end as u32).collect();
                coll.append(&cols, &hashes, &sel, None).unwrap();
            }
            black_box(coll.rows());
        })
    });

    let mut coll = TupleDataCollection::new(Arc::clone(&m), layout());
    for start in (0..ROWS).step_by(2048) {
        let end = (start + 2048).min(ROWS);
        let sel: Vec<u32> = (start as u32..end as u32).collect();
        coll.append(&cols, &hashes, &sel, None).unwrap();
    }
    coll.release_pins();

    g.bench_function("gather_100k_rows", |b| {
        let pins = coll.pin_all().unwrap();
        let ptrs = coll.all_row_ptrs(&pins);
        b.iter(|| {
            for batch in ptrs.chunks(2048) {
                black_box(unsafe { coll.gather(batch) });
            }
        })
    });

    g.bench_function("repin_nothing_moved", |b| {
        b.iter(|| {
            black_box(coll.pin_all().unwrap());
        })
    });

    g.bench_function("spill_reload_recompute", |b| {
        b.iter(|| {
            // Push everything out...
            m.set_memory_limit(4 * PAGE);
            let mut hog = Vec::new();
            while let Ok(p) = m.allocate_page() {
                hog.push(p);
            }
            drop(hog);
            m.set_memory_limit(1 << 30);
            // ...and reload with pointer recomputation.
            black_box(coll.pin_all().unwrap());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
