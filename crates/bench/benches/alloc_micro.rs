//! Criterion version of the Section VII allocation micro-benchmark:
//! buffer-manager allocation latency vs. the raw allocator, with ample and
//! with full memory.

use criterion::{criterion_group, criterion_main, Criterion};
use rexa_buffer::{BufferManager, BufferManagerConfig};
use rexa_storage::DatabaseFile;
use std::hint::black_box;
use std::sync::Arc;

const PAGE: usize = 64 << 10;

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_micro");
    g.sample_size(20);

    g.bench_function("raw_allocator_small", |b| {
        let layout = std::alloc::Layout::from_size_align(PAGE, 64).unwrap();
        b.iter(|| unsafe {
            let p = std::alloc::alloc(layout);
            black_box(p);
            std::alloc::dealloc(p, layout);
        })
    });

    let dir = rexa_storage::scratch_dir("calloc").unwrap();
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(256 << 20)
            .page_size(PAGE)
            .temp_dir(dir.join("tmp")),
    )
    .unwrap();
    g.bench_function("buffer_manager_small_ample", |b| {
        b.iter(|| {
            let (h, p) = mgr.allocate_page().unwrap();
            black_box(&p);
            drop(p);
            drop(h);
        })
    });

    // Fill memory with cached persistent pages; every allocation must evict
    // one (free) and reuses its buffer.
    let db = Arc::new(DatabaseFile::create(&dir.join("fill.db"), PAGE).unwrap());
    let filler = vec![0xAB; PAGE];
    let handles: Vec<_> = (0..(256 << 20) / PAGE + 16)
        .map(|_| {
            let id = db.append_block(&filler).unwrap();
            mgr.register_persistent(&db, id)
        })
        .collect();
    for h in &handles {
        if mgr.pin(h).is_err() {
            break;
        }
    }
    g.bench_function("buffer_manager_small_full_memory", |b| {
        b.iter_batched(
            || (),
            |()| {
                let (h, p) = mgr.allocate_page().unwrap();
                black_box(&p);
                drop(p);
                h // kept alive by criterion's drop batch: pool stays full
            },
            criterion::BatchSize::NumIterations(1024),
        )
    });
    g.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
