//! Scaled-down Criterion versions of the evaluation's macro experiments:
//!
//! * `groupings_thin` / `groupings_wide` — Tables II/III shape: grouping 4
//!   on generated lineitem, robust engine vs. baselines;
//! * `fig1_regimes` — the cliff: the robust engine below and above the
//!   memory limit (graceful degradation is "above ≈ 2-4x below", not 100x);
//! * `eviction_policies` — Figure 4 shape: repeated runs per policy;
//! * ablations: `reset_threshold` (the 2/3-full reset) and `radix_bits`
//!   (over-partitioning degree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rexa_bench::{build_env, dataset, grouping_plan, HarnessArgs, OffsetConsumer};
use rexa_buffer::EvictionPolicy;
use rexa_core::baselines::{in_memory_aggregate, sort_aggregate};
use rexa_core::{hash_aggregate_streaming, AggregateConfig};
use rexa_exec::pipeline::CancelToken;
use rexa_exec::VECTOR_SIZE;
use rexa_tpch::{lineitem_schema, Grouping};
use std::time::Duration;

fn args() -> HarnessArgs {
    HarnessArgs {
        scale: 0.002, // ~12k rows per paper SF unit
        timeout: Duration::from_secs(60),
        threads: 4,
        reps: 1,
        page_size: 16 << 10,
        mem_limit: Some(48 << 20),
        csv: false,
        threads_list: Vec::new(),
        smoke: false,
    }
}

fn agg_config(threads: usize, radix_bits: u32, reset: u32) -> AggregateConfig {
    AggregateConfig {
        threads,
        radix_bits: Some(radix_bits),
        ht_capacity: 1 << 14,
        output_chunk_size: VECTOR_SIZE,
        reset_fill_percent: reset,
        ..Default::default()
    }
}

fn bench_groupings(c: &mut Criterion) {
    let a = args();
    let ds = dataset(4.0, &a); // ~48k rows
    let env = build_env(&ds, &a, EvictionPolicy::Mixed);
    let schema = lineitem_schema();
    let grouping = Grouping::by_id(4).unwrap();

    for wide in [false, true] {
        let plan = grouping_plan(grouping, wide);
        let label = if wide {
            "groupings_wide"
        } else {
            "groupings_thin"
        };
        let mut g = c.benchmark_group(label);
        g.sample_size(10);
        g.throughput(criterion::Throughput::Elements(ds.coll.rows() as u64));
        g.bench_function("rexa", |b| {
            b.iter(|| {
                let token = CancelToken::new();
                let consumer = OffsetConsumer::new(token.clone());
                let source = env.table.scan(&env.mgr);
                hash_aggregate_streaming(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan,
                    &agg_config(4, 4, 66),
                    &|c| consumer.consume(c),
                )
                .unwrap();
            })
        });
        g.bench_function("inmem", |b| {
            b.iter(|| {
                let token = CancelToken::new();
                let consumer = OffsetConsumer::new(token.clone());
                let source = env.table.scan(&env.mgr);
                in_memory_aggregate(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan.group_cols,
                    &plan.aggregates,
                    4,
                    &token,
                    &|c| consumer.consume(c),
                )
                .unwrap();
            })
        });
        g.bench_function("extsort", |b| {
            b.iter(|| {
                let token = CancelToken::new();
                let consumer = OffsetConsumer::new(token.clone());
                let source = env.table.scan(&env.mgr);
                sort_aggregate(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan.group_cols,
                    &plan.aggregates,
                    &token,
                    &|c| consumer.consume(c),
                )
                .unwrap();
            })
        });
        g.finish();
    }
}

fn bench_cliff_regimes(c: &mut Criterion) {
    let a = args();
    let ds = dataset(16.0, &a); // ~190k rows
    let schema = lineitem_schema();
    let plan = grouping_plan(Grouping::by_id(4).unwrap(), false);

    let mut g = c.benchmark_group("fig1_regimes");
    g.sample_size(10);
    for (label, limit) in [("in_memory", 256usize << 20), ("beyond_limit", 3 << 20)] {
        let mut a2 = a.clone();
        a2.mem_limit = Some(limit);
        a2.page_size = 8 << 10;
        let env = build_env(&ds, &a2, EvictionPolicy::Mixed);
        g.bench_function(label, |b| {
            b.iter(|| {
                let token = CancelToken::new();
                let consumer = OffsetConsumer::new(token.clone());
                let source = env.table.scan(&env.mgr);
                let stats = hash_aggregate_streaming(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan,
                    &agg_config(4, 4, 66),
                    &|c| consumer.consume(c),
                )
                .unwrap();
                assert!(stats.groups > 0);
            })
        });
    }
    g.finish();
}

fn bench_eviction_policies(c: &mut Criterion) {
    let a = args();
    let ds = dataset(8.0, &a);
    let schema = lineitem_schema();
    let plan = grouping_plan(Grouping::by_id(4).unwrap(), false);
    let mut g = c.benchmark_group("eviction_policies");
    g.sample_size(10);
    for policy in [
        EvictionPolicy::Mixed,
        EvictionPolicy::TemporaryFirst,
        EvictionPolicy::PersistentFirst,
    ] {
        let mut a2 = a.clone();
        a2.mem_limit = Some(6 << 20);
        a2.page_size = 8 << 10;
        let env = build_env(&ds, &a2, policy);
        g.bench_function(policy.to_string(), |b| {
            b.iter(|| {
                let token = CancelToken::new();
                let consumer = OffsetConsumer::new(token.clone());
                let source = env.table.scan(&env.mgr);
                hash_aggregate_streaming(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan,
                    &agg_config(4, 4, 66),
                    &|c| consumer.consume(c),
                )
                .unwrap();
            })
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let a = args();
    let ds = dataset(8.0, &a);
    let env = build_env(&ds, &a, EvictionPolicy::Mixed);
    let schema = lineitem_schema();
    let plan = grouping_plan(Grouping::by_id(4).unwrap(), false);

    let mut g = c.benchmark_group("reset_threshold");
    g.sample_size(10);
    for reset in [33u32, 50, 66, 90] {
        g.bench_with_input(BenchmarkId::from_parameter(reset), &reset, |b, &reset| {
            b.iter(|| {
                let token = CancelToken::new();
                let consumer = OffsetConsumer::new(token.clone());
                let source = env.table.scan(&env.mgr);
                hash_aggregate_streaming(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan,
                    &agg_config(4, 4, reset),
                    &|c| consumer.consume(c),
                )
                .unwrap();
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("radix_bits");
    g.sample_size(10);
    for bits in [2u32, 4, 6, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| {
                let token = CancelToken::new();
                let consumer = OffsetConsumer::new(token.clone());
                let source = env.table.scan(&env.mgr);
                hash_aggregate_streaming(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan,
                    &agg_config(4, bits, 66),
                    &|c| consumer.consume(c),
                )
                .unwrap();
            })
        });
    }
    g.finish();
}

/// Skew robustness (paper Section V, "Data Distributions"): same row count
/// and key domain, increasing Zipf exponent. Pre-aggregation should make the
/// skewed cases *cheaper*, not pathological (heavy hitters collapse in the
/// thread-local table; partitions stay balanced because they are formed
/// after reduction).
fn bench_skew(c: &mut Criterion) {
    use rexa_core::hash_aggregate_collect;
    use rexa_exec::pipeline::CollectionSource;

    let rows = 200_000;
    let keys = 50_000;
    let mut g = c.benchmark_group("skew_robustness");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(rows as u64));
    for s in [0.0f64, 0.8, 1.2] {
        let coll = rexa_tpch::zipf_table(rows, keys, s, 99);
        let plan = rexa_core::HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![
                rexa_core::AggregateSpec::count_star(),
                rexa_core::AggregateSpec::sum(1),
            ],
        };
        let mgr = rexa_buffer::BufferManager::new(
            rexa_buffer::BufferManagerConfig::with_limit(256 << 20).page_size(16 << 10),
        )
        .unwrap();
        g.bench_function(format!("zipf_s{s}"), |b| {
            b.iter(|| {
                let source = CollectionSource::new(&coll);
                let (out, _) = hash_aggregate_collect(
                    &mgr,
                    &source,
                    coll.types(),
                    &plan,
                    &agg_config(4, 4, 66),
                )
                .unwrap();
                assert!(out.rows() > 0);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_groupings,
    bench_cliff_regimes,
    bench_eviction_policies,
    bench_ablations,
    bench_skew
);
criterion_main!(benches);
