//! Ablation: the **salt** (paper Section V). Probe a linear-probing table of
//! pointers to out-of-line keys, with and without comparing the 16-bit salt
//! before following the pointer, at increasing fill factors.
//!
//! Expected shape: without the salt, every collision dereferences a random
//! row (cache miss); with it, all but ~1/65536 of non-matching collisions
//! are rejected from the entry itself, so performance degrades far more
//! gently as the table fills up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rexa_exec::hashing::{mix64, POINTER_BITS};
use std::hint::black_box;

const TABLE_BITS: u32 = 17; // the paper's 2^17 table
const CAPACITY: usize = 1 << TABLE_BITS;
const PROBES: usize = 1 << 16;

struct Fixture {
    entries: Vec<u64>,
    /// Out-of-line "rows": 64-byte records whose first lane is the group
    /// key. The entries hold raw pointers into this allocation; the field
    /// exists to keep it alive.
    #[allow(dead_code)]
    rows: Box<[u64]>,
    probe_hashes: Vec<u64>,
    probe_keys: Vec<u64>,
}

/// u64 lanes per "row": 64 bytes, like a realistic group row — so following
/// a pointer is a genuine cache miss, as in the paper's setting.
const ROW_LANES: usize = 8;

fn build(fill: f64) -> Fixture {
    let n = (CAPACITY as f64 * fill) as usize;
    let rows = vec![0u64; n * ROW_LANES].into_boxed_slice();
    let mut entries = vec![0u64; CAPACITY];
    let mask = CAPACITY as u64 - 1;
    for i in 0..n {
        let key = i as u64 * 2 + 1; // odd keys exist
        let row = &rows[i * ROW_LANES] as *const u64;
        // SAFETY: within the allocation; exclusive during build.
        unsafe { (row as *mut u64).write(key) };
        let h = mix64(key);
        let mut slot = (h & mask) as usize;
        while entries[slot] != 0 {
            slot = (slot + 1) & mask as usize;
        }
        entries[slot] = (h & !((1u64 << POINTER_BITS) - 1)) | row as u64;
    }
    // Probe a mix of hits (odd keys) and misses (even keys).
    let probe_keys: Vec<u64> = (0..PROBES as u64)
        .map(|i| i * 37 % (2 * n as u64))
        .collect();
    let probe_hashes: Vec<u64> = probe_keys.iter().map(|&k| mix64(k)).collect();
    Fixture {
        entries,
        rows,
        probe_hashes,
        probe_keys,
    }
}

const PTR_MASK: u64 = (1u64 << POINTER_BITS) - 1;

fn probe_salted(f: &Fixture) -> u64 {
    let mask = CAPACITY as u64 - 1;
    let mut found = 0u64;
    for (&h, &k) in f.probe_hashes.iter().zip(&f.probe_keys) {
        let salt = h & !PTR_MASK;
        let mut slot = (h & mask) as usize;
        loop {
            let e = f.entries[slot];
            if e == 0 {
                break;
            }
            // Salt first: only dereference on a salt match.
            if (e & !PTR_MASK) == salt {
                let row = (e & PTR_MASK) as *const u64;
                // SAFETY: entries point into f.rows.
                if unsafe { *row } == k {
                    found += 1;
                    break;
                }
            }
            slot = (slot + 1) & mask as usize;
        }
    }
    found
}

fn probe_unsalted(f: &Fixture) -> u64 {
    let mask = CAPACITY as u64 - 1;
    let mut found = 0u64;
    for (&h, &k) in f.probe_hashes.iter().zip(&f.probe_keys) {
        let mut slot = (h & mask) as usize;
        loop {
            let e = f.entries[slot];
            if e == 0 {
                break;
            }
            // No salt: every occupied slot dereferences the row.
            let row = (e & PTR_MASK) as *const u64;
            // SAFETY: entries point into f.rows.
            if unsafe { *row } == k {
                found += 1;
                break;
            }
            slot = (slot + 1) & mask as usize;
        }
    }
    found
}

fn bench_salt(c: &mut Criterion) {
    let mut g = c.benchmark_group("salt_ablation");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(PROBES as u64));
    for fill in [0.25, 0.5, 0.66, 0.85] {
        let f = build(fill);
        // Both variants must agree on the result.
        assert_eq!(probe_salted(&f), probe_unsalted(&f));
        g.bench_with_input(BenchmarkId::new("salted", fill), &f, |b, f| {
            b.iter(|| black_box(probe_salted(f)))
        });
        g.bench_with_input(BenchmarkId::new("unsalted", fill), &f, |b, f| {
            b.iter(|| black_box(probe_unsalted(f)))
        });
        drop(f);
    }
    g.finish();
}

criterion_group!(benches, bench_salt);
criterion_main!(benches);
