//! `rexa-bench`: the benchmark harness.
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index) plus Criterion micro-benches. This library holds the
//! shared machinery: laptop-scale parameter mapping, environment setup,
//! the four "systems" (robust rexa, in-memory/abort, switch-on-overflow,
//! external sort), per-query timeouts, and result formatting.
//!
//! Scaling: the paper runs SF 1–128 (0.7–97 GB) against 32 GB of RAM on an
//! AWS c6id.4xlarge. The harness maps paper scale factors with a single
//! `--scale` knob (default 1/512): data *and* memory limit shrink together,
//! preserving the governing intermediate-size/memory-limit ratio. Pages
//! shrink from 256 KiB to 64 KiB so the page count stays realistic.

pub mod tables;

use parking_lot::Mutex;
use rexa_buffer::{BufferManager, BufferManagerConfig, EvictionPolicy, Table};
use rexa_core::baselines::switch::Scannable;
use rexa_core::baselines::{in_memory_aggregate, sort_aggregate, switch_aggregate};
use rexa_core::{
    hash_aggregate_streaming, AggregateConfig, AggregateSpec, HashAggregatePlan, RunStats,
};
use rexa_exec::pipeline::{CancelToken, ChunkSource};
use rexa_exec::{ChunkCollection, DataChunk, Error, Result, Value};
use rexa_storage::DatabaseFile;
use rexa_tpch::{generate_lineitem, lineitem_schema, Grouping};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Paper hardware constants (c6id.4xlarge): 32 GB RAM.
pub const PAPER_MEM_BYTES: f64 = 32.0 * 1024.0 * 1024.0 * 1024.0;

/// Harness parameters, parsed from the command line.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Scale-down factor applied to paper scale factors and to the paper's
    /// 32 GB memory limit.
    pub scale: f64,
    /// Per-query timeout (the paper uses 600 s at full scale).
    pub timeout: Duration,
    /// Worker threads.
    pub threads: usize,
    /// Repetitions per measurement (paper: median of 5).
    pub reps: usize,
    /// Buffer page size.
    pub page_size: usize,
    /// Memory-limit override in bytes (default: 32 GB × scale).
    pub mem_limit: Option<usize>,
    /// Emit CSV rows in addition to the text table.
    pub csv: bool,
    /// Extra thread counts to run the robust engine at (the threads axis of
    /// the scaling figures); the four-system comparison stays at `threads`.
    pub threads_list: Vec<usize>,
    /// CI smoke mode: tiny scale, short timeout, truncated SF list — checks
    /// the driver end to end, measures nothing meaningful.
    pub smoke: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1.0 / 512.0,
            timeout: Duration::from_secs(60),
            threads: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(8),
            reps: 1,
            page_size: 64 << 10,
            mem_limit: None,
            csv: false,
            threads_list: Vec::new(),
            smoke: false,
        }
    }
}

impl HarnessArgs {
    /// Parse `--scale X --timeout-secs N --threads N --threads-list T1,T2,…
    /// --reps N --page-kib N --mem-mib N --csv --smoke` from the process
    /// arguments.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[*i - 1]);
                std::process::exit(2);
            })
        };
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => args.scale = value(&mut i).parse().expect("--scale"),
                "--timeout-secs" => {
                    args.timeout = Duration::from_secs(value(&mut i).parse().expect("--timeout"))
                }
                "--threads" => args.threads = value(&mut i).parse().expect("--threads"),
                "--threads-list" => {
                    args.threads_list = value(&mut i)
                        .split(',')
                        .map(|t| t.trim().parse().expect("--threads-list"))
                        .collect()
                }
                "--reps" => args.reps = value(&mut i).parse().expect("--reps"),
                "--page-kib" => {
                    args.page_size = value(&mut i).parse::<usize>().expect("--page-kib") << 10
                }
                "--mem-mib" => {
                    args.mem_limit = Some(value(&mut i).parse::<usize>().expect("--mem-mib") << 20)
                }
                "--csv" => args.csv = true,
                "--smoke" => {
                    args.smoke = true;
                    args.scale = 0.002;
                    args.reps = 1;
                    args.timeout = Duration::from_secs(60);
                    args.mem_limit = Some(64 << 20);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale F --timeout-secs N --threads N \
                         --threads-list T1,T2,… --reps N --page-kib N --mem-mib N \
                         --csv --smoke"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        args
    }

    /// The effective (generated) scale factor for a paper scale factor.
    pub fn effective_sf(&self, paper_sf: f64) -> f64 {
        paper_sf * self.scale
    }

    /// The scaled memory limit in bytes.
    pub fn memory_limit(&self) -> usize {
        self.mem_limit
            .unwrap_or((PAPER_MEM_BYTES * self.scale) as usize)
    }
}

/// One generated dataset (kept in RAM; the persistent table is rebuilt per
/// environment from it).
pub struct Dataset {
    /// The paper-scale factor this stands in for.
    pub paper_sf: f64,
    /// The generated rows.
    pub coll: ChunkCollection,
}

/// Generate the lineitem dataset for a paper scale factor.
pub fn dataset(paper_sf: f64, args: &HarnessArgs) -> Dataset {
    Dataset {
        paper_sf,
        coll: generate_lineitem(args.effective_sf(paper_sf), 0xDB),
    }
}

/// A benchmark environment: one buffer manager plus the dataset bulk-loaded
/// as a persistent paged table (fresh scratch files).
pub struct Env {
    /// The unified buffer manager.
    pub mgr: Arc<BufferManager>,
    /// The database file backing the table.
    pub db: Arc<DatabaseFile>,
    /// The lineitem table.
    pub table: Table,
}

/// Build a fresh environment for `ds` with the given eviction policy.
pub fn build_env(ds: &Dataset, args: &HarnessArgs, policy: EvictionPolicy) -> Env {
    let dir = rexa_storage::scratch_dir("bench").expect("scratch dir");
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(args.memory_limit())
            .page_size(args.page_size)
            .policy(policy)
            .temp_dir(dir.join("tmp")),
    )
    .expect("buffer manager");
    let db = Arc::new(DatabaseFile::create(&dir.join("lineitem.db"), args.page_size).unwrap());
    let mut builder =
        rexa_buffer::TableBuilder::new(Arc::clone(&mgr), Arc::clone(&db), lineitem_schema());
    for chunk in ds.coll.chunks() {
        builder.append(chunk).unwrap();
    }
    let table = builder.finish().unwrap();
    Env { mgr, db, table }
}

/// The four aggregation strategies the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The robust external hash aggregation (the paper's contribution;
    /// DuckDB's role in the evaluation).
    Robust,
    /// In-memory hash aggregation that aborts on OOM (Umbra's observed role).
    InMemory,
    /// In-memory first, restart with external sort on OOM (HyPer-like).
    Switch,
    /// Always the external merge-sort aggregation (the traditional
    /// disk-based algorithm).
    External,
}

impl SystemKind {
    /// All four, in reporting order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Robust,
        SystemKind::InMemory,
        SystemKind::Switch,
        SystemKind::External,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Robust => "rexa",
            SystemKind::InMemory => "inmem",
            SystemKind::Switch => "switch",
            SystemKind::External => "extsort",
        }
    }
}

/// The result of one measured query.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Completed: seconds, group count, operator stats if the robust engine
    /// ran.
    Done {
        /// Median wall seconds.
        secs: f64,
        /// Groups produced.
        groups: usize,
        /// Robust-engine stats (last rep), boxed: [`RunStats`] carries a
        /// full [`rexa_obs::QueryProfile`] and would dominate the enum size.
        stats: Option<Box<RunStats>>,
    },
    /// Aborted with out-of-memory (the paper's 'A').
    Aborted,
    /// Hit the timeout (the paper's 'T').
    TimedOut,
}

impl Outcome {
    /// Seconds if completed.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Outcome::Done { secs, .. } => Some(*secs),
            _ => None,
        }
    }

    /// The paper-style cell: seconds, 'A', or 'T'.
    pub fn cell(&self) -> String {
        match self {
            Outcome::Done { secs, .. } => format!("{secs:.2}"),
            Outcome::Aborted => "A".to_string(),
            Outcome::TimedOut => "T".to_string(),
        }
    }
}

/// The benchmark query plan for a grouping: thin selects only the group
/// columns; wide adds `ANY_VALUE` over every other column (paper Sec. VI).
pub fn grouping_plan(grouping: Grouping, wide: bool) -> HashAggregatePlan {
    let aggregates = if wide {
        grouping
            .other_col_indices()
            .into_iter()
            .map(AggregateSpec::any_value)
            .collect()
    } else {
        Vec::new()
    };
    HashAggregatePlan {
        group_cols: grouping.group_col_indices(),
        aggregates,
    }
}

struct TableScannable<'a> {
    table: &'a Table,
    mgr: Arc<BufferManager>,
    token: CancelToken,
}

impl Scannable for TableScannable<'_> {
    fn scan_source(&self) -> Box<dyn ChunkSource + '_> {
        Box::new(self.table.scan_with_cancel(&self.mgr, self.token.clone()))
    }
}

/// The benchmark consumer, reproducing the paper's `OFFSET N-1` trick: every
/// group must be materialized and streamed, but only the last row is kept.
pub struct OffsetConsumer {
    groups: AtomicUsize,
    last_row: Mutex<Option<Vec<Value>>>,
    token: CancelToken,
}

impl OffsetConsumer {
    /// A consumer bound to a cancellation token.
    pub fn new(token: CancelToken) -> Self {
        OffsetConsumer {
            groups: AtomicUsize::new(0),
            last_row: Mutex::new(None),
            token,
        }
    }

    /// Consume one output chunk.
    pub fn consume(&self, chunk: DataChunk) -> Result<()> {
        self.token.check()?;
        if !chunk.is_empty() {
            self.groups.fetch_add(chunk.len(), Ordering::Relaxed);
            *self.last_row.lock() = Some(chunk.row(chunk.len() - 1));
        }
        Ok(())
    }

    /// Groups seen.
    pub fn groups(&self) -> usize {
        self.groups.load(Ordering::Relaxed)
    }
}

/// Run `f` with a watchdog that fires `token` after `timeout`.
pub fn with_timeout<T>(
    timeout: Duration,
    token: &CancelToken,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let watchdog_token = token.clone();
    let watchdog = std::thread::spawn(move || {
        if done_rx.recv_timeout(timeout).is_err() {
            watchdog_token.cancel();
        }
    });
    let result = f();
    let _ = done_tx.send(());
    let _ = watchdog.join();
    result
}

/// Run one (system, grouping, variant) measurement: `reps` repetitions,
/// median seconds, with timeout and abort handling.
pub fn run_grouping(
    kind: SystemKind,
    env: &Env,
    grouping: Grouping,
    wide: bool,
    args: &HarnessArgs,
) -> Outcome {
    let plan = grouping_plan(grouping, wide);
    let schema = lineitem_schema();
    let mut secs = Vec::with_capacity(args.reps);
    let mut groups = 0usize;
    let mut stats = None;
    for _ in 0..args.reps.max(1) {
        let token = CancelToken::new();
        let consumer = OffsetConsumer::new(token.clone());
        let start = Instant::now();
        let result: Result<usize> = with_timeout(args.timeout, &token, || match kind {
            SystemKind::Robust => {
                let source = env.table.scan_with_cancel(&env.mgr, token.clone());
                let config = AggregateConfig {
                    threads: args.threads,
                    radix_bits: None,
                    ht_capacity: 1 << 14,
                    output_chunk_size: rexa_exec::VECTOR_SIZE,
                    reset_fill_percent: 66,
                    ..Default::default()
                };
                let run =
                    hash_aggregate_streaming(&env.mgr, &source, &schema, &plan, &config, &|c| {
                        consumer.consume(c)
                    })?;
                stats = Some(Box::new(run.clone()));
                Ok(run.groups)
            }
            SystemKind::InMemory => {
                let source = env.table.scan_with_cancel(&env.mgr, token.clone());
                in_memory_aggregate(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan.group_cols,
                    &plan.aggregates,
                    args.threads,
                    &token,
                    &|c| consumer.consume(c),
                )
            }
            SystemKind::Switch => {
                let scannable = TableScannable {
                    table: &env.table,
                    mgr: Arc::clone(&env.mgr),
                    token: token.clone(),
                };
                let outcome = switch_aggregate(
                    &env.mgr,
                    &scannable,
                    &schema,
                    &plan.group_cols,
                    &plan.aggregates,
                    args.threads,
                    &token,
                    &|c| consumer.consume(c),
                )?;
                Ok(outcome.groups())
            }
            SystemKind::External => {
                let source = env.table.scan_with_cancel(&env.mgr, token.clone());
                let s = sort_aggregate(
                    &env.mgr,
                    &source,
                    &schema,
                    &plan.group_cols,
                    &plan.aggregates,
                    &token,
                    &|c| consumer.consume(c),
                )?;
                Ok(s.groups)
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        match result {
            Ok(g) => {
                groups = g;
                secs.push(elapsed);
            }
            Err(Error::Cancelled) => return Outcome::TimedOut,
            Err(e) if e.is_oom() => return Outcome::Aborted,
            Err(e) => panic!("benchmark query failed: {e}"),
        }
    }
    secs.sort_by(f64::total_cmp);
    Outcome::Done {
        secs: secs[secs.len() / 2],
        groups,
        stats,
    }
}

/// Geometric mean of `others / robust` over queries where both completed
/// (the paper's per-scale-factor summary row).
pub fn geo_mean_normalized(robust: &[Outcome], other: &[Outcome]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (r, o) in robust.iter().zip(other) {
        match (r.secs(), o.secs()) {
            (Some(r), Some(o)) if r > 0.0 => {
                log_sum += (o / r).ln();
                n += 1;
            }
            _ => return None, // an A or T poisons the mean, as in the paper
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Print an aligned table: header then rows.
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |row: &[String]| {
        row.iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexa_tpch::GROUPINGS;

    fn tiny_args() -> HarnessArgs {
        HarnessArgs {
            scale: 0.002,
            timeout: Duration::from_secs(30),
            threads: 2,
            reps: 1,
            page_size: 8 << 10,
            mem_limit: Some(64 << 20),
            csv: false,
            threads_list: Vec::new(),
            smoke: false,
        }
    }

    #[test]
    fn all_systems_agree_on_group_counts() {
        let args = tiny_args();
        let ds = dataset(1.0, &args); // effective SF 0.002 (~12k rows)
        let g = GROUPINGS[3]; // l_orderkey
        let mut counts = Vec::new();
        for kind in SystemKind::ALL {
            let env = build_env(&ds, &args, EvictionPolicy::Mixed);
            match run_grouping(kind, &env, g, false, &args) {
                Outcome::Done { groups, .. } => counts.push(groups),
                other => panic!("{kind:?} did not finish: {other:?}"),
            }
        }
        assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
        assert!(counts[0] > 1000);
    }

    #[test]
    fn wide_variant_runs_and_matches_thin_group_count() {
        let args = tiny_args();
        let ds = dataset(1.0, &args);
        let g = GROUPINGS[0]; // returnflag, linestatus
        let env = build_env(&ds, &args, EvictionPolicy::Mixed);
        let thin = run_grouping(SystemKind::Robust, &env, g, false, &args);
        let wide = run_grouping(SystemKind::Robust, &env, g, true, &args);
        match (&thin, &wide) {
            (Outcome::Done { groups: a, .. }, Outcome::Done { groups: b, .. }) => {
                assert_eq!(a, b);
                assert_eq!(*a, 4, "returnflag x linestatus has 4 groups");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn inmemory_aborts_under_tiny_limit_and_robust_survives() {
        let mut args = tiny_args();
        args.scale = 0.005;
        args.mem_limit = Some(6 << 20); // 6 MiB
        let ds = dataset(1.0, &args); // ~30k rows
        let g = GROUPINGS[12]; // all-distinct grouping
        let env = build_env(&ds, &args, EvictionPolicy::Mixed);
        let robust = run_grouping(SystemKind::Robust, &env, g, true, &args);
        assert!(
            matches!(robust, Outcome::Done { .. }),
            "robust must survive: {robust:?}"
        );
        let env = build_env(&ds, &args, EvictionPolicy::Mixed);
        let inmem = run_grouping(SystemKind::InMemory, &env, g, true, &args);
        assert!(matches!(inmem, Outcome::Aborted), "inmem: {inmem:?}");
    }

    #[test]
    fn timeout_produces_t() {
        let mut args = tiny_args();
        args.scale = 0.01;
        args.timeout = Duration::from_millis(1);
        let ds = dataset(1.0, &args);
        let env = build_env(&ds, &args, EvictionPolicy::Mixed);
        let out = run_grouping(SystemKind::External, &env, GROUPINGS[12], true, &args);
        assert!(matches!(out, Outcome::TimedOut), "{out:?}");
    }

    #[test]
    fn geo_mean_handles_aborts() {
        let done = |s| Outcome::Done {
            secs: s,
            groups: 1,
            stats: None,
        };
        let r = vec![done(1.0), done(2.0)];
        let o = vec![done(2.0), done(4.0)];
        let g = geo_mean_normalized(&r, &o).unwrap();
        assert!((g - 2.0).abs() < 1e-9);
        let with_abort = vec![done(2.0), Outcome::Aborted];
        assert!(geo_mean_normalized(&r, &with_abort).is_none());
    }
}
