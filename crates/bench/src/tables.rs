//! Shared driver for Tables II (thin) and III (wide): groupings 1–13 at the
//! given paper scale factors across the four systems, with the per-SF
//! geometric mean normalized to the robust engine. Cells are median seconds,
//! 'A' (aborted, out of memory), or 'T' (timed out) — exactly the cell
//! vocabulary of the paper's tables.

use crate::*;
use rexa_buffer::EvictionPolicy;
use rexa_tpch::GROUPINGS;

/// Run the grouping-table experiment and print it.
pub fn run_groupings_table(wide: bool, paper_sfs: &[f64]) {
    let args = HarnessArgs::parse();
    let paper_sfs = if args.smoke {
        &paper_sfs[..paper_sfs.len().min(2)]
    } else {
        paper_sfs
    };
    let variant = if wide { "wide" } else { "thin" };
    println!(
        "Table {}: {variant} groupings | scale={} mem={} MiB threads={} timeout={}s reps={}",
        if wide { "III" } else { "II" },
        args.scale,
        args.memory_limit() >> 20,
        args.threads,
        args.timeout.as_secs(),
        args.reps,
    );

    let mut header = vec!["grouping".to_string()];
    for sf in paper_sfs {
        for kind in SystemKind::ALL {
            header.push(format!("sf{}:{}", sf, kind.label()));
        }
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    // outcomes[sf][system][grouping]
    let mut outcomes: Vec<Vec<Vec<Outcome>>> = Vec::new();

    for &sf in paper_sfs {
        let ds = dataset(sf, &args);
        let mut per_system = Vec::new();
        for kind in SystemKind::ALL {
            let env = build_env(&ds, &args, EvictionPolicy::Mixed);
            let mut per_grouping = Vec::new();
            for g in GROUPINGS {
                let out = run_grouping(kind, &env, g, wide, &args);
                eprintln!(
                    "  sf={sf} {} grouping {} ({}): {}",
                    kind.label(),
                    g.id,
                    g.describe(),
                    out.cell()
                );
                per_grouping.push(out);
            }
            per_system.push(per_grouping);
        }
        outcomes.push(per_system);
    }

    for (gi, g) in GROUPINGS.iter().enumerate() {
        let mut row = vec![format!("{} ({})", g.id, g.describe())];
        for (si, _) in paper_sfs.iter().enumerate() {
            for (ki, _) in SystemKind::ALL.iter().enumerate() {
                row.push(outcomes[si][ki][gi].cell());
            }
        }
        rows.push(row);
    }
    // Geometric mean normalized to the robust engine, per SF.
    let mut gm_row = vec!["geomean/rexa".to_string()];
    for (si, _) in paper_sfs.iter().enumerate() {
        for (ki, _) in SystemKind::ALL.iter().enumerate() {
            let cell = match geo_mean_normalized(&outcomes[si][0], &outcomes[si][ki]) {
                Some(g) => format!("{g:.2}"),
                None => "-".to_string(),
            };
            gm_row.push(cell);
        }
    }
    rows.push(gm_row);
    print_table(&header, &rows);

    if args.csv {
        println!("\ncsv:variant,paper_sf,system,grouping,cell");
        for (si, sf) in paper_sfs.iter().enumerate() {
            for (ki, kind) in SystemKind::ALL.iter().enumerate() {
                for (gi, g) in GROUPINGS.iter().enumerate() {
                    println!(
                        "csv:{variant},{sf},{},{},{}",
                        kind.label(),
                        g.id,
                        outcomes[si][ki][gi].cell()
                    );
                }
            }
        }
    }
}

/// Shared driver for Figures 5 (thin) and 6 (wide): runtime vs. paper SF for
/// groupings 3, 6, and 13, every system, log-log series. With
/// `--threads-list T1,T2,…` the robust engine additionally runs at each
/// listed thread count (columns `gN:rexa@tT`), making worker threads a
/// second axis of the figure; `--smoke` truncates the SF list for CI.
pub fn run_scaling_figure(wide: bool, paper_sfs: &[f64]) {
    let args = HarnessArgs::parse();
    let paper_sfs = if args.smoke {
        &paper_sfs[..paper_sfs.len().min(2)]
    } else {
        paper_sfs
    };
    let variant = if wide { "wide" } else { "thin" };
    println!(
        "Figure {}: execution time vs. scale factor, {variant} groupings 3/6/13 | scale={} mem={} MiB",
        if wide { 6 } else { 5 },
        args.scale,
        args.memory_limit() >> 20,
    );
    let groupings = [3usize, 6, 13].map(|id| rexa_tpch::Grouping::by_id(id).unwrap());

    let mut header = vec!["paper_sf".to_string()];
    for g in &groupings {
        for kind in SystemKind::ALL {
            header.push(format!("g{}:{}", g.id, kind.label()));
        }
        for &t in &args.threads_list {
            header.push(format!("g{}:rexa@t{t}", g.id));
        }
    }
    let mut rows = Vec::new();
    println!("csv:variant,paper_sf,grouping,system,cell");
    for &sf in paper_sfs {
        let ds = dataset(sf, &args);
        let mut row = vec![format!("{sf}")];
        for g in &groupings {
            for kind in SystemKind::ALL {
                let env = build_env(&ds, &args, EvictionPolicy::Mixed);
                let out = run_grouping(kind, &env, *g, wide, &args);
                println!(
                    "csv:{variant},{sf},{},{},{}",
                    g.id,
                    kind.label(),
                    out.cell()
                );
                row.push(out.cell());
            }
            // The threads axis: the robust engine again at each extra
            // worker count, same dataset and memory limit.
            for &t in &args.threads_list {
                let mut targs = args.clone();
                targs.threads = t;
                let env = build_env(&ds, &targs, EvictionPolicy::Mixed);
                let out = run_grouping(SystemKind::Robust, &env, *g, wide, &targs);
                println!("csv:{variant},{sf},{},rexa@t{t},{}", g.id, out.cell());
                row.push(out.cell());
            }
        }
        rows.push(row);
    }
    print_table(&header, &rows);
}
