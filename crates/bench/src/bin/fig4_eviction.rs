//! **Figure 4**: how the buffer manager loads and spills under the three
//! eviction policies (Mixed / TemporaryFirst / PersistentFirst), repeating
//! grouping 4 (thin) in a single-connection and a multi-connection scenario.
//!
//! The paper's setup: memory limit ≈ the grouping's intermediate size, 10
//! repetitions; single connection with 4 threads, or 4 connections with
//! 4 threads each and 4x the memory. Connections are modelled as concurrent
//! submissions to a [`QueryService`] with `max_concurrent = connections` —
//! the service replaces the hand-rolled worker threads this benchmark used
//! to carry. The admission footprint is overridden with the phase-1 floor:
//! the figure studies eviction behaviour *under* concurrent pressure, so
//! queries must genuinely overlap rather than serialize on their phase-2
//! peak. The harness reproduces both scenarios at laptop scale, prints
//! per-policy total runtimes (the numbers quoted in Section VII), and emits
//! a CSV time series of resident persistent bytes, resident temporary
//! bytes, and temp-file size — the curves of the figure.

use parking_lot::Mutex;
use rexa_bench::*;
use rexa_buffer::EvictionPolicy;
use rexa_core::AggregateConfig;
use rexa_service::{
    estimate_footprint, QueryInput, QueryOptions, QueryRequest, QueryService, ServiceConfig,
};
use rexa_tpch::Grouping;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut args = HarnessArgs::parse();
    if args.reps == 1 {
        args.reps = 4; // repetitions per connection (paper: 10)
    }
    let grouping = Grouping::by_id(4).unwrap();
    let ds = dataset(128.0, &args); // the paper runs SF 128 for this figure

    // Memory limit ~= the intermediate size of grouping 4 (one 24-byte row
    // per order, padded), as in the paper ("approximately the total size of
    // the intermediates").
    let orders = ds.coll.rows() / 4;
    let base_limit = (orders * 40).max(64 * args.page_size);

    println!(
        "Figure 4: eviction policies | grouping 4 thin, rows={}, base mem limit={} MiB, reps={}",
        ds.coll.rows(),
        base_limit >> 20,
        args.reps
    );
    println!("csv:scenario,policy,ms,persistent_mib,temporary_mib,tempfile_mib");

    let mut header: Vec<String> = ["scenario", "policy", "total_s", "max_tempfile_mib"]
        .map(String::from)
        .to_vec();
    header.push("evictions_p/t".into());
    let mut rows = Vec::new();

    for connections in [1usize, 4] {
        for policy in [
            EvictionPolicy::Mixed,
            EvictionPolicy::TemporaryFirst,
            EvictionPolicy::PersistentFirst,
        ] {
            let mut run_args = args.clone();
            run_args.mem_limit = Some(base_limit * connections);
            let env = build_env(&ds, &run_args, policy);
            let Env {
                mgr,
                db: _db,
                table,
            } = env;
            let table = Arc::new(table);
            let stats_before = mgr.stats();

            let config = AggregateConfig {
                threads: run_args.threads,
                radix_bits: None,
                ht_capacity: 1 << 14,
                output_chunk_size: rexa_exec::VECTOR_SIZE,
                reset_fill_percent: 66,
                ..Default::default()
            };
            // Phase-1 floor only (rows = 0): connections must overlap.
            let floor = estimate_footprint(&config, run_args.page_size, 0, 0);
            let service = QueryService::new(
                Arc::clone(&mgr),
                ServiceConfig {
                    pool_threads: run_args.threads * connections,
                    max_concurrent: connections,
                    queue_bound: connections * run_args.reps,
                    slow_query: None,
                },
            );
            let request = || QueryRequest {
                plan: grouping_plan(grouping, false),
                input: QueryInput::Table(Arc::clone(&table)),
                options: QueryOptions {
                    config: config.clone(),
                    deadline: Some(run_args.timeout),
                    footprint: Some(floor),
                    consumer: Some(Arc::new(|_| Ok(()))),
                    spans: None,
                },
            };

            // Sampler thread: the memory time series of the figure.
            let stop = AtomicBool::new(false);
            let series: Mutex<Vec<(u128, usize, usize, u64)>> = Mutex::new(Vec::new());
            let max_temp = Mutex::new(0u64);
            let start = Instant::now();
            let total = std::thread::scope(|s| {
                let sampler = s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let st = mgr.stats();
                        series.lock().push((
                            start.elapsed().as_millis(),
                            st.persistent_resident,
                            st.temporary_resident,
                            st.temp_bytes_on_disk,
                        ));
                        let mut mt = max_temp.lock();
                        *mt = (*mt).max(st.temp_bytes_on_disk);
                        std::thread::sleep(Duration::from_millis(25));
                    }
                });
                // `connections x reps` queries, `connections` running at
                // once — the service's admission queue carries the backlog
                // the per-connection loops used to.
                let handles: Vec<_> = (0..connections * run_args.reps)
                    .map(|_| {
                        service
                            .submit(request())
                            .expect("submit within queue bound")
                    })
                    .collect();
                for h in handles {
                    let out = h.wait();
                    assert!(out.is_ok(), "robust run failed: {:?}", out.err());
                }
                stop.store(true, Ordering::Relaxed);
                sampler.join().unwrap();
                start.elapsed().as_secs_f64()
            });

            let delta = mgr.stats().delta_since(&stats_before);
            for (ms, p, t, f) in series.lock().iter() {
                println!(
                    "csv:{connections}conn,{policy},{ms},{:.2},{:.2},{:.2}",
                    *p as f64 / 1048576.0,
                    *t as f64 / 1048576.0,
                    *f as f64 / 1048576.0
                );
            }
            rows.push(vec![
                format!("{connections} connection(s)"),
                policy.to_string(),
                format!("{total:.2}"),
                format!("{:.1}", *max_temp.lock() as f64 / 1048576.0),
                format!(
                    "{}/{}",
                    delta.evictions_persistent, delta.evictions_temporary
                ),
            ]);
            eprintln!(
                "  {connections}conn {policy}: {total:.2}s (max temp file {:.1} MiB)",
                *max_temp.lock() as f64 / 1048576.0
            );
        }
    }
    print_table(&header, &rows);
    println!(
        "\nExpected shape (paper Sec. VII): with 1 connection PersistentFirst wins\n\
         (persistent eviction is free); with 4 connections TemporaryFirst wins\n\
         (keeping the scanned table cached avoids thrashing); Mixed sits between."
    );
}
