//! **Figure 2** (page-layout design figure): demonstrates and measures the
//! property the layout was designed for — pages spill and reload
//! byte-for-byte with *lazy pointer recomputation*, versus a conventional
//! (de)serialization round trip of the same data.
//!
//! Prints: scatter (column→row) and gather (row→column) throughput, the cost
//! of a spill→reload→recompute cycle, and the cost of the serialization
//! baseline (serialize → write → read → deserialize via the persistent table
//! path).

use rexa_bench::HarnessArgs;
use rexa_buffer::{BufferManager, BufferManagerConfig, TableBuilder};
use rexa_exec::{hashing, LogicalType, Vector};
use rexa_layout::{TupleDataCollection, TupleDataLayout};
use rexa_storage::DatabaseFile;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = HarnessArgs::parse();
    let rows: usize = 400_000;
    let page = args.page_size;
    println!(
        "Figure 2: spillable page layout vs (de)serialization | {rows} rows, page={} KiB",
        page >> 10
    );

    // A realistic mixed row: one integer key, one string (half non-inline).
    let keys: Vec<i64> = (0..rows as i64).collect();
    let strs: Vec<String> = (0..rows)
        .map(|i| {
            if i % 2 == 0 {
                format!("k{i}")
            } else {
                format!("a longer string payload for row number {i:08}")
            }
        })
        .collect();
    let key_col = Vector::from_i64(keys);
    let str_col = Vector::from_strs(&strs);
    let cols: Vec<&Vector> = vec![&key_col, &str_col];
    let types = vec![LogicalType::Int64, LogicalType::Varchar];

    let dir = rexa_storage::scratch_dir("fig2").unwrap();
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(1 << 30)
            .page_size(page)
            .temp_dir(dir.join("tmp")),
    )
    .unwrap();
    let layout = Arc::new(TupleDataLayout::new(types.clone(), vec![]));
    let mut coll = TupleDataCollection::new(Arc::clone(&mgr), Arc::clone(&layout));

    // Scatter.
    let hashes = hashing::hash_columns(&cols, rows);
    let t = Instant::now();
    for start in (0..rows).step_by(2048) {
        let end = (start + 2048).min(rows);
        let sel: Vec<u32> = (start as u32..end as u32).collect();
        coll.append(&cols, &hashes, &sel, None).unwrap();
    }
    let scatter_s = t.elapsed().as_secs_f64();
    coll.release_pins();
    let data_mib = coll.data_bytes() as f64 / 1048576.0;

    // Gather (in memory).
    let pins = coll.pin_all().unwrap();
    let ptrs = coll.all_row_ptrs(&pins);
    let t = Instant::now();
    for batch in ptrs.chunks(2048) {
        let c = unsafe { coll.gather(batch) };
        std::hint::black_box(&c);
    }
    let gather_s = t.elapsed().as_secs_f64();
    drop(pins);

    // Spill everything, then time reload + pointer recomputation.
    let stats0 = mgr.stats();
    mgr.set_memory_limit(4 * page);
    let mut hog = Vec::new();
    while let Ok(p) = mgr.allocate_page() {
        hog.push(p);
    }
    drop(hog);
    mgr.set_memory_limit(1 << 30);
    let spilled = mgr.stats().delta_since(&stats0).temp_bytes_written;
    let t = Instant::now();
    let pins = coll.pin_all().unwrap(); // reload + lazy recompute
    let reload_s = t.elapsed().as_secs_f64();
    // Verify: data still correct after the cycle.
    let ptrs = coll.all_row_ptrs(&pins);
    let check = unsafe { coll.gather(&ptrs[..100]) };
    assert_eq!(check.column(1).str_at(1), strs[1]);
    drop(pins);

    // Re-pin with nothing moved: recomputation must be free.
    let t = Instant::now();
    let pins = coll.pin_all().unwrap();
    let repin_s = t.elapsed().as_secs_f64();
    drop(pins);

    // Serialization baseline: the same rows through serialize→write→
    // read→deserialize (the persistent-table path).
    let db = Arc::new(DatabaseFile::create(&dir.join("ser.db"), page).unwrap());
    let t = Instant::now();
    let mut builder = TableBuilder::new(Arc::clone(&mgr), Arc::clone(&db), types.clone());
    for start in (0..rows).step_by(2048) {
        let end = (start + 2048).min(rows);
        let chunk = rexa_exec::DataChunk::new(vec![
            key_col.slice(start, end - start),
            str_col.slice(start, end - start),
        ]);
        builder.append(&chunk).unwrap();
    }
    let table = builder.finish().unwrap();
    let ser_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let source = table.scan(&mgr);
    let mut reader = rexa_exec::pipeline::ChunkSource::reader(&source);
    let mut scanned = 0usize;
    while let Some(c) = reader.next().unwrap() {
        scanned += c.len();
    }
    let deser_s = t.elapsed().as_secs_f64();
    assert_eq!(scanned, rows);

    let header: Vec<String> = ["step", "seconds", "throughput"].map(String::from).to_vec();
    let tp = |s: f64| format!("{:.1} M rows/s", rows as f64 / s / 1e6);
    let rows_out = vec![
        vec![
            "scatter (column→row, partition append)".into(),
            format!("{scatter_s:.3}"),
            tp(scatter_s),
        ],
        vec![
            "gather (row→column)".into(),
            format!("{gather_s:.3}"),
            tp(gather_s),
        ],
        vec![
            format!(
                "spill→reload→recompute ({:.1} MiB spilled)",
                spilled as f64 / 1048576.0
            ),
            format!("{reload_s:.3}"),
            format!("{:.0} MiB/s", data_mib / reload_s),
        ],
        vec![
            "re-pin, nothing moved (recompute skipped)".into(),
            format!("{repin_s:.4}"),
            "-".into(),
        ],
        vec![
            "serialize + write (baseline)".into(),
            format!("{ser_s:.3}"),
            tp(ser_s),
        ],
        vec![
            "read + deserialize (baseline)".into(),
            format!("{deser_s:.3}"),
            tp(deser_s),
        ],
    ];
    rexa_bench::print_table(&header, &rows_out);
    println!(
        "\nExpected shape: reload+recompute moves pages at I/O speed with a small fix-up\n\
         pass, and costs nothing when pages did not move; the serialization baseline\n\
         pays CPU for every value on both sides."
    );
}
