//! **Aggregation hot-path baseline**: rows/sec of phase 1 (thread-local
//! pre-aggregation) and phase 2 (partition-wise aggregation) for the
//! vectorized kernels against the retained scalar oracle, across the three
//! grouping shapes the kernels were built for (thin integer key, wide
//! multi-column key, string key).
//!
//! Emits a machine-readable `BENCH_agg.json` (see README "Benchmarks") so
//! regressions in the aggregation hot path are visible diff-to-diff; the
//! CI `bench-smoke` job runs this binary on a tiny row count and validates
//! the schema.
//!
//! ```text
//! agg_hotpath [--rows N] [--reps N] [--threads N] [--threads-sweep 1,2,4,8]
//!             [--out PATH] [--sql] [--trace-out PATH]
//! ```
//!
//! `--sql` additionally routes every workload through the SQL front end
//! (`rexa-sql`) before measuring, asserting that the lowered plan equals
//! the hand-wired one and that single-threaded results are bit-identical.
//! The benchmark numbers and the JSON schema are unchanged by the flag.
//!
//! `--threads-sweep T1,T2,…` additionally measures thread scaling: the
//! `thin_int` workload at every listed thread count (phase-1 scaling of the
//! morsel-driven probe), plus a 512-group `low_card` workload comparing the
//! adaptive phase-1 strategy against forced thread-local — the regime where
//! a shared table wins ("Global Hash Tables Strike Back!", PAPERS.md). The
//! per-thread measurements, including per-worker attribution (busy secs,
//! morsels claimed, ht_resets), land under a `threads_sweep` key in the
//! JSON.
//!
//! `--trace-out PATH` runs the external_sorted workload once more with
//! span tracing attached (separate from the measurements, so tracing cost
//! never touches the numbers) and writes the timeline as Chrome
//! trace-event JSON for Perfetto — including the `run_sort` and
//! `sorted_merge` spans of the hybrid hash/sort path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rexa_bench::print_table;
use rexa_buffer::{BufferManager, BufferManagerConfig, EvictionPolicy};
use rexa_core::simple::sorted_rows;
use rexa_core::{
    hash_aggregate_collect, hash_aggregate_streaming, AggregateConfig, AggregateSpec,
    HashAggregatePlan, KernelMode, Phase1Strategy, Phase2Strategy, RunStats, SortedInput,
};
use rexa_exec::pipeline::CollectionSource;
use rexa_exec::pool::ExecContext;
use rexa_exec::{ChunkCollection, DataChunk, LogicalType, Vector, VECTOR_SIZE};
use rexa_sql::Catalog;
use rexa_storage::scratch_dir;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    rows: usize,
    reps: usize,
    threads: usize,
    /// `--threads-sweep 1,2,4,8`: also measure thread scaling at these
    /// worker counts.
    threads_sweep: Option<Vec<usize>>,
    out: String,
    sql: bool,
    /// `--trace-out PATH`: after the measurements, run the external_sorted
    /// workload once more with span tracing attached and write the
    /// timeline as Chrome trace-event JSON (Perfetto-loadable). The traced
    /// run is separate from the measurements so tracing cost never touches
    /// the recorded numbers.
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        rows: 2_000_000,
        reps: 3,
        threads: 1,
        threads_sweep: None,
        out: "BENCH_agg.json".to_string(),
        sql: false,
        trace_out: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rows" => args.rows = value(&mut i).parse().expect("--rows"),
            "--reps" => args.reps = value(&mut i).parse::<usize>().expect("--reps").max(1),
            "--threads" => args.threads = value(&mut i).parse().expect("--threads"),
            "--threads-sweep" => {
                let list: Vec<usize> = value(&mut i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads-sweep"))
                    .collect();
                assert!(!list.is_empty(), "--threads-sweep needs at least one count");
                args.threads_sweep = Some(list);
            }
            "--out" => args.out = value(&mut i),
            "--sql" => args.sql = true,
            "--trace-out" => args.trace_out = Some(value(&mut i)),
            "--help" | "-h" => {
                eprintln!(
                    "options: --rows N --reps N --threads N \
                     --threads-sweep T1,T2,… --out PATH --sql --trace-out PATH"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// One benchmark workload: a generated input plus its plan.
struct Workload {
    name: &'static str,
    coll: Arc<ChunkCollection>,
    plan: HashAggregatePlan,
}

/// Single i64 group key, two cheap aggregates: the pure probe/update race.
fn thin_int(rows: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(0xA661);
    let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..65_536)).collect();
        let vals: Vec<i64> = keys.iter().map(|k| k.wrapping_mul(3)).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_i64(keys),
            Vector::from_i64(vals),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "thin_int",
        plan: HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        },
    }
}

/// Three-column key (i64, date, f64) and a full aggregate mix over a float
/// payload: exercises the per-column batched compare and every kernel class.
fn wide_multi_key(rows: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(0xA662);
    let mut coll = ChunkCollection::new(vec![
        LogicalType::Int64,
        LogicalType::Date,
        LogicalType::Float64,
        LogicalType::Float64,
    ]);
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let k1: Vec<i64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let k2: Vec<i32> = (0..n).map(|_| rng.gen_range(0..32)).collect();
        let k3: Vec<f64> = (0..n).map(|_| rng.gen_range(0..32) as f64 * 0.25).collect();
        let vals: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 100.0).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_i64(k1),
            Vector::from_dates(k2),
            Vector::from_f64(k3),
            Vector::from_f64(vals),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "wide_multi_key",
        plan: HashAggregatePlan {
            group_cols: vec![0, 1, 2],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(3),
                AggregateSpec::min(3),
                AggregateSpec::max(3),
                AggregateSpec::avg(3),
            ],
        },
    }
}

/// All-distinct i64 keys carrying a wide string payload: the aggregation
/// state is larger than the input, so with a memory limit below the
/// intermediate size phase 1 must spill partitions and phase 2 must reload
/// them — the external shape the I/O scheduler exists for. The payload
/// makes the shape I/O-bound (most of the wall time is moving partition
/// bytes, not hashing), which is the regime the paper's overlap argument
/// is about. Measured sync (no background I/O) vs async (background spill
/// writers + phase-2 read-ahead), both vectorized.
fn external(rows: usize) -> Workload {
    let mut coll = ChunkCollection::new(vec![
        LogicalType::Int64,
        LogicalType::Int64,
        LogicalType::Varchar,
    ]);
    let mut base = 0i64;
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let keys: Vec<i64> = (base..base + n as i64).collect();
        let vals: Vec<i64> = keys.iter().map(|k| k.wrapping_mul(3)).collect();
        let tags: Vec<String> = keys
            .iter()
            .map(|k| format!("row-payload-{k:012}-abcdefghijklmnopqrstuvwxyz0123456789"))
            .collect();
        base += n as i64;
        coll.push(DataChunk::new(vec![
            Vector::from_i64(keys),
            Vector::from_i64(vals),
            Vector::from_strs(tags),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "external",
        plan: HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::any_value(2),
            ],
        },
    }
}

/// Thin i64 key drawn from only 512 groups: the low-cardinality regime
/// where thread-local tables mostly deduplicate the same few groups per
/// worker and a single shared table wins ("Global Hash Tables Strike
/// Back!", PAPERS.md) — the adaptive phase-1 strategy's win case, measured
/// by the threads sweep against forced thread-local.
fn low_card(rows: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(0xA664);
    let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..512)).collect();
        let vals: Vec<i64> = keys.iter().map(|k| k.wrapping_mul(7)).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_i64(keys),
            Vector::from_i64(vals),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "low_card",
        plan: HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        },
    }
}

/// Fully sorted i64 key (ascending, ~64 rows per group, runs continuing
/// across chunk boundaries): the in-stream fast path's home turf, measured
/// as forced hash phase 1 vs forced in-stream.
fn sorted(rows: usize) -> Workload {
    let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
    let mut i = 0i64;
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let keys: Vec<i64> = (i..i + n as i64).map(|r| r / 64).collect();
        let vals: Vec<i64> = keys.iter().map(|k| k.wrapping_mul(3)).collect();
        i += n as i64;
        coll.push(DataChunk::new(vec![
            Vector::from_i64(keys),
            Vector::from_i64(vals),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "sorted",
        plan: HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        },
    }
}

/// Nearly sorted i64 key: ascending ~256-row groups with ~2% random
/// stragglers from earlier groups. Clustered-but-not-sorted input — the
/// shape the sortedness detector has to recognize on its own (average run
/// length ~23, above [`IN_STREAM_RUN_MIN`]) — measured as forced hash vs
/// `Detect`.
fn clustered(rows: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(0xA665);
    let keys: Vec<i64> = (0..rows as i64)
        .map(|r| {
            let k = r / 256;
            if rng.gen_range(0..50) == 0 {
                rng.gen_range(0..=k)
            } else {
                k
            }
        })
        .collect();
    let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
    for ch in keys.chunks(VECTOR_SIZE) {
        let vals: Vec<i64> = ch.iter().map(|k| k.wrapping_mul(5)).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_i64(ch.to_vec()),
            Vector::from_i64(vals),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "clustered",
        plan: HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        },
    }
}

/// Sorted i64 key with only ~4 rows per group and a heapless row layout:
/// the group state is a large fraction of the input, so a sub-intermediate
/// memory limit forces partitions to spill — the regime where phase 2
/// merging K sealed sorted runs (streaming, no probe table) competes with
/// rebuilding a hash table over the reloaded rows. Measured with the
/// in-stream phase 1 on both sides, forced `Hash` vs forced `SortedMerge`.
fn external_sorted(rows: usize) -> Workload {
    let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
    let mut i = 0i64;
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let keys: Vec<i64> = (i..i + n as i64).map(|r| r / 4).collect();
        let vals: Vec<i64> = keys.iter().map(|k| k.wrapping_mul(3)).collect();
        i += n as i64;
        coll.push(DataChunk::new(vec![
            Vector::from_i64(keys),
            Vector::from_i64(vals),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "external_sorted",
        plan: HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::min(1),
                AggregateSpec::max(1),
            ],
        },
    }
}

/// Varchar group key mixing inline and heap strings: the byte-compare path.
fn string_key(rows: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(0xA663);
    let mut coll = ChunkCollection::new(vec![LogicalType::Varchar, LogicalType::Int64]);
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let keys: Vec<String> = (0..n)
            .map(|_| {
                let k: u32 = rng.gen_range(0..8_192);
                if k.is_multiple_of(2) {
                    format!("k{k}")
                } else {
                    format!("group key number {k:06} with a heap-allocated payload")
                }
            })
            .collect();
        let vals: Vec<i64> = (0..n as i64).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_strs(keys),
            Vector::from_i64(vals),
        ]))
        .unwrap();
    }
    Workload {
        coll: Arc::new(coll),
        name: "string_key",
        plan: HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        },
    }
}

/// `--sql`: route the workload through the SQL front end and check that it
/// agrees with the hand-wired plan — first structurally (the lowered
/// aggregate must match the plan the measurements run), then by value
/// (single-threaded results must be bit-identical; one thread so the
/// float-payload workloads have a deterministic combine order).
fn sql_parity_check(w: &Workload) {
    let (columns, sql): (&[&str], &str) = match w.name {
        "thin_int" => (
            &["k", "v"],
            "SELECT k, COUNT(*), SUM(v) FROM thin_int GROUP BY k",
        ),
        "wide_multi_key" => (
            &["k1", "k2", "k3", "v"],
            "SELECT k1, k2, k3, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) \
             FROM wide_multi_key GROUP BY k1, k2, k3",
        ),
        "string_key" => (
            &["k", "v"],
            "SELECT k, COUNT(*), SUM(v) FROM string_key GROUP BY k",
        ),
        "external" => (
            &["k", "v", "tag"],
            "SELECT k, COUNT(*), SUM(v), ANY_VALUE(tag) FROM external GROUP BY k",
        ),
        "sorted" => (
            &["k", "v"],
            "SELECT k, COUNT(*), SUM(v) FROM sorted GROUP BY k",
        ),
        "clustered" => (
            &["k", "v"],
            "SELECT k, COUNT(*), SUM(v) FROM clustered GROUP BY k",
        ),
        "external_sorted" => (
            &["k", "v"],
            "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM external_sorted GROUP BY k",
        ),
        other => panic!("no SQL mapping for workload {other}"),
    };
    let mut catalog = Catalog::new();
    catalog
        .register_collection(
            w.name,
            columns.iter().map(|s| s.to_string()).collect(),
            Arc::clone(&w.coll),
        )
        .unwrap();
    if w.name == "sorted" {
        // Exercise the declared-sort-order plumbing: the planner must mark
        // the aggregate's input sorted (group key covers the sort prefix)
        // and surface it in EXPLAIN, and execution must promote the config
        // hint (asserted again by the result comparison below, which then
        // runs through the in-stream phase 1).
        catalog.declare_sorted("sorted", &["k"]).unwrap();
    }
    let physical = rexa_sql::plan(sql, &catalog).unwrap();
    if w.name == "sorted" {
        assert!(physical.input_sorted, "sorted: planner missed sort order");
        assert!(
            physical.explain().contains("input=sorted"),
            "sorted: EXPLAIN missing input=sorted"
        );
    }
    let lowered = physical.aggregate.as_ref().expect("grouped plan");
    assert_eq!(
        lowered.group_cols, w.plan.group_cols,
        "{}: SQL lowered different group columns",
        w.name
    );
    assert_eq!(
        format!("{:?}", lowered.aggregates),
        format!("{:?}", w.plan.aggregates),
        "{}: SQL lowered different aggregates",
        w.name
    );

    let config = AggregateConfig {
        threads: 1,
        ..Default::default()
    };
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(1 << 30)
            .page_size(64 << 10)
            .temp_dir(scratch_dir("agghot").unwrap()),
    )
    .unwrap();
    let chunks = std::sync::Mutex::new(Vec::<DataChunk>::new());
    rexa_sql::execute_streaming(&mgr, &physical, &config, &ExecContext::new(), &|c| {
        chunks.lock().unwrap().push(c);
        Ok(())
    })
    .unwrap();
    let got = sorted_rows(&chunks.into_inner().unwrap());

    let source = CollectionSource::new(&w.coll);
    let (out, _) = hash_aggregate_collect(&mgr, &source, w.coll.types(), &w.plan, &config).unwrap();
    let want = sorted_rows(out.chunks());
    assert_eq!(
        got, want,
        "{}: SQL path and hand-wired plan disagree",
        w.name
    );
    println!("  sql parity: {} ok ({} groups)", w.name, want.len());
}

/// One mode's best-of-`reps` timings (minimum wall time per phase; the
/// minimum is the standard noise-robust estimator for throughput
/// micro-benchmarks — everything above it is scheduling interference).
/// Carries the last rep's [`QueryProfile`] so the JSON exposes the
/// execution profile (busy time, resets, spill I/O) behind the headline
/// rates.
struct Measurement {
    phase1_secs: f64,
    phase2_secs: f64,
    total_secs: f64,
    groups: usize,
    rows_in: usize,
    profile: rexa_obs::QueryProfile,
}

/// Buffer-pool geometry for one measurement: the in-memory workloads use a
/// huge limit (nothing spills); the external workload caps memory below the
/// intermediate size and toggles the background I/O scheduler.
struct PoolSetup {
    mem_limit: usize,
    page_size: usize,
    io_writers: usize,
    readahead_depth: usize,
    radix_bits: Option<u32>,
    /// O_DIRECT spill file: expose the device's real I/O latency instead
    /// of measuring page-cache memcpy speed. Set for both external modes so
    /// the sync/async comparison is of scheduling, not of caching.
    direct_io: bool,
    /// Phase-1 routing: hash (`Unsorted`), in-stream (`Sorted`), or let the
    /// run-length sampler decide (`Detect`, the default).
    sorted_input: SortedInput,
    /// Phase-2 routing: per-partition chooser (`Adaptive`, the default) or
    /// forced hash / sorted-run merge for A/B measurements.
    phase2_strategy: Phase2Strategy,
}

impl PoolSetup {
    fn in_memory() -> Self {
        PoolSetup {
            mem_limit: 1 << 30,
            page_size: 64 << 10,
            io_writers: 0,
            readahead_depth: 0,
            radix_bits: None,
            direct_io: false,
            sorted_input: SortedInput::Detect,
            phase2_strategy: Phase2Strategy::Adaptive,
        }
    }
}

fn measure(
    w: &Workload,
    mode: KernelMode,
    threads: usize,
    strategy: Phase1Strategy,
    reps: usize,
    setup: &PoolSetup,
) -> Measurement {
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(setup.mem_limit)
            .page_size(setup.page_size)
            .policy(EvictionPolicy::Mixed)
            .temp_dir(scratch_dir("agghot").unwrap())
            .io_writers(setup.io_writers)
            .temp_direct_io(setup.direct_io),
    )
    .unwrap();
    let config = AggregateConfig {
        threads,
        kernel_mode: mode,
        readahead_depth: setup.readahead_depth,
        radix_bits: setup.radix_bits,
        phase1_strategy: strategy,
        sorted_input: setup.sorted_input,
        phase2_strategy: setup.phase2_strategy,
        ..Default::default()
    };
    let mut p1 = Vec::with_capacity(reps);
    let mut p2 = Vec::with_capacity(reps);
    let mut total = Vec::with_capacity(reps);
    let mut last: Option<RunStats> = None;
    for _ in 0..reps {
        let source = CollectionSource::new(&w.coll);
        let start = Instant::now();
        let stats =
            hash_aggregate_streaming(&mgr, &source, w.coll.types(), &w.plan, &config, &|_chunk| {
                Ok(())
            })
            .unwrap();
        total.push(start.elapsed().as_secs_f64());
        p1.push(stats.phase1.as_secs_f64());
        p2.push(stats.phase2.as_secs_f64());
        last = Some(stats);
    }
    let best = |v: &Vec<f64>| v.iter().copied().fold(f64::INFINITY, f64::min);
    let last = last.unwrap();
    Measurement {
        phase1_secs: best(&p1),
        phase2_secs: best(&p2),
        total_secs: best(&total),
        groups: last.groups,
        rows_in: last.rows_in,
        profile: last.profile,
    }
}

/// `--trace-out`: one extra traced run of the external_sorted workload
/// (in-stream phase 1, sorted-run spilling, forced `SortedMerge` phase 2)
/// with the background I/O scheduler on, so the exported timeline shows
/// spill writes and read-ahead overlapping compute plus the new `run_sort`
/// and `sorted_merge` spans. The run needs real spill traffic to be worth
/// looking at, so it uses its own input floor (2M rows — the group state
/// then exceeds the 16 MiB limit floor) rather than the smoke row count;
/// small pages keep the probe's pinned write heads (threads x 64
/// partitions x 2 pages) well under the limit.
fn trace_external_run(ext: &Workload, threads: usize, path: &str) {
    let owned;
    let ext = if ext.coll.rows() < 2_000_000 {
        owned = external_sorted(2_000_000);
        &owned
    } else {
        ext
    };
    let limit = (ext.coll.approx_bytes() / 2).max(16 << 20);
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(limit)
            .page_size(16 << 10)
            .policy(EvictionPolicy::Mixed)
            .temp_dir(scratch_dir("agghot").unwrap())
            .io_writers(2),
    )
    .unwrap();
    let config = AggregateConfig {
        threads,
        kernel_mode: KernelMode::Vectorized,
        readahead_depth: 2,
        radix_bits: Some(6),
        // Small phase-1 tables: their live rows are pinned, and the traced
        // run's limit is tight by construction.
        ht_capacity: 1 << 14,
        sorted_input: SortedInput::Sorted,
        phase2_strategy: Phase2Strategy::SortedMerge,
        ..Default::default()
    };
    let spans = rexa_obs::SpanCollector::new();
    let ctx = ExecContext::new().with_spans(Arc::clone(&spans));
    let source = CollectionSource::new(&ext.coll);
    let stats = rexa_core::hash_aggregate_streaming_ctx(
        &mgr,
        &source,
        ext.coll.types(),
        &ext.plan,
        &config,
        &ctx,
        &|_chunk| Ok(()),
    )
    .unwrap();
    std::fs::write(path, stats.profile.chrome_trace_json()).expect("write trace JSON");
    println!(
        "traced external run: {} groups, spilled {} MiB; wrote {path} \
         (open in https://ui.perfetto.dev)",
        stats.groups,
        stats.profile.spill_bytes_written >> 20,
    );
}

/// Input rows per second over a phase duration (0 when the phase was too
/// fast to time — tiny CI smoke runs).
fn rate(rows: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        rows as f64 / secs
    } else {
        0.0
    }
}

fn json_measurement(m: &Measurement) -> String {
    let p = &m.profile;
    let phase = |ph: rexa_obs::Phase| &p.phases[ph.index()];
    let io_overlap: f64 = p.phases.iter().map(|ph| ph.overlap.as_secs_f64()).sum();
    // Per-partition phase-2 routing: what the chooser actually did.
    let partition_strategies = p
        .partition_merges
        .iter()
        .map(|pm| {
            format!(
                "{{\"partition\": {}, \"strategy\": \"{}\", \"sorted_runs\": {}, \
                 \"merge_fanin\": {}}}",
                pm.partition, pm.strategy, pm.sorted_runs, pm.merge_fanin,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    // Per-worker phase-1 attribution: where the probe time actually went.
    let workers = p
        .workers
        .iter()
        .map(|w| {
            format!(
                "{{\"worker\": {}, \"busy_secs\": {:.6}, \"morsels\": {}, \
                 \"chunks\": {}, \"ht_resets\": {}}}",
                w.worker,
                w.busy.as_secs_f64(),
                w.morsels,
                w.chunks,
                w.ht_resets,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"phase1_secs\": {:.6}, \"phase2_secs\": {:.6}, \"total_secs\": {:.6}, \
         \"phase1_rows_per_sec\": {:.1}, \"phase2_rows_per_sec\": {:.1}, \
         \"rows_per_sec\": {:.1}, \"groups\": {}, \
         \"profile\": {{\"probe_busy_secs\": {:.6}, \"sort_busy_secs\": {:.6}, \
         \"merge_busy_secs\": {:.6}, \
         \"finalize_busy_secs\": {:.6}, \"ht_resets\": {}, \"partitions\": {}, \
         \"partitions_external\": {}, \"sorted_runs\": {}, \"merge_fanin\": {}, \
         \"spill_bytes_written\": {}, \
         \"spill_bytes_read\": {}, \"evictions\": {}, \"readahead_hits\": {}, \
         \"readahead_misses\": {}, \"io_overlap_secs\": {:.6}, \
         \"strategy\": \"{}\", \"partition_strategies\": [{}], \
         \"workers\": [{}]}}}}",
        m.phase1_secs,
        m.phase2_secs,
        m.total_secs,
        rate(m.rows_in, m.phase1_secs),
        rate(m.rows_in, m.phase2_secs),
        rate(m.rows_in, m.total_secs),
        m.groups,
        phase(rexa_obs::Phase::Probe).busy.as_secs_f64(),
        phase(rexa_obs::Phase::Sort).busy.as_secs_f64(),
        phase(rexa_obs::Phase::Merge).busy.as_secs_f64(),
        phase(rexa_obs::Phase::Finalize).busy.as_secs_f64(),
        p.ht_resets,
        p.partitions,
        p.partitions_external,
        p.sorted_runs,
        p.merge_fanin,
        p.spill_bytes_written,
        p.spill_bytes_read,
        p.evictions,
        p.readahead_hits,
        p.readahead_misses,
        io_overlap,
        p.strategy,
        partition_strategies,
        workers,
    )
}

fn main() {
    let args = parse_args();
    println!(
        "agg_hotpath: {} rows, {} reps, {} threads",
        args.rows, args.reps, args.threads
    );
    let workloads = [
        thin_int(args.rows),
        wide_multi_key(args.rows),
        string_key(args.rows),
    ];
    let srt = sorted(args.rows);
    let clu = clustered(args.rows);
    let ext = external(args.rows);
    let exts = external_sorted(args.rows);
    if args.sql {
        println!("checking SQL front end against hand-wired plans …");
        for w in workloads.iter().chain([&srt, &clu, &ext, &exts]) {
            sql_parity_check(w);
        }
    }
    let mut entries = Vec::new();
    let header: Vec<String> = [
        "workload",
        "mode",
        "phase1 Mrows/s",
        "phase2 Mrows/s",
        "speedup",
    ]
    .map(String::from)
    .to_vec();
    let mut table = Vec::new();
    for w in &workloads {
        let scalar = measure(
            w,
            KernelMode::Scalar,
            args.threads,
            Phase1Strategy::Adaptive,
            args.reps,
            &PoolSetup::in_memory(),
        );
        let vectorized = measure(
            w,
            KernelMode::Vectorized,
            args.threads,
            Phase1Strategy::Adaptive,
            args.reps,
            &PoolSetup::in_memory(),
        );
        assert_eq!(
            scalar.groups, vectorized.groups,
            "{}: modes disagree on group count",
            w.name
        );
        let speedup = if vectorized.phase1_secs > 0.0 {
            scalar.phase1_secs / vectorized.phase1_secs
        } else {
            0.0
        };
        for (mode, m) in [("scalar", &scalar), ("vectorized", &vectorized)] {
            table.push(vec![
                w.name.to_string(),
                mode.to_string(),
                format!("{:.1}", rate(m.rows_in, m.phase1_secs) / 1e6),
                format!("{:.1}", rate(m.rows_in, m.phase2_secs) / 1e6),
                if mode == "vectorized" {
                    format!("{speedup:.2}x")
                } else {
                    "1.00x".to_string()
                },
            ]);
        }
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"groups\": {}, \
             \"scalar\": {}, \"vectorized\": {}, \"phase1_speedup\": {:.3}}}",
            w.name,
            scalar.rows_in,
            scalar.groups,
            json_measurement(&scalar),
            json_measurement(&vectorized),
            speedup,
        ));
    }
    // The sorted-input frontier, in memory: `sorted` compares a forced hash
    // phase 1 against the forced in-stream fast path on fully ordered keys;
    // `clustered` compares forced hash against `Detect`, so the number also
    // prices the detector's sampling (it must recognize the clustered shape
    // itself before the switch pays off).
    let hash_setup = PoolSetup {
        sorted_input: SortedInput::Unsorted,
        ..PoolSetup::in_memory()
    };
    let instream_setup = PoolSetup {
        sorted_input: SortedInput::Sorted,
        ..PoolSetup::in_memory()
    };
    for (w, fast_setup, fast_label, speedup_key) in [
        (&srt, &instream_setup, "instream", "instream_speedup"),
        (&clu, &PoolSetup::in_memory(), "detect", "detect_speedup"),
    ] {
        let hash_m = measure(
            w,
            KernelMode::Vectorized,
            args.threads,
            Phase1Strategy::Adaptive,
            args.reps,
            &hash_setup,
        );
        let fast_m = measure(
            w,
            KernelMode::Vectorized,
            args.threads,
            Phase1Strategy::Adaptive,
            args.reps,
            fast_setup,
        );
        assert_eq!(
            hash_m.groups, fast_m.groups,
            "{}: hash and {fast_label} disagree on group count",
            w.name
        );
        let speedup = if fast_m.phase1_secs > 0.0 {
            hash_m.phase1_secs / fast_m.phase1_secs
        } else {
            0.0
        };
        for (mode, m) in [("hash", &hash_m), (fast_label, &fast_m)] {
            table.push(vec![
                w.name.to_string(),
                mode.to_string(),
                format!("{:.1}", rate(m.rows_in, m.phase1_secs) / 1e6),
                format!("{:.1}", rate(m.rows_in, m.phase2_secs) / 1e6),
                if mode == "hash" {
                    "1.00x".to_string()
                } else {
                    format!("{speedup:.2}x")
                },
            ]);
        }
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"groups\": {}, \
             \"hash\": {}, \"{}\": {}, \"{}\": {:.3}}}",
            w.name,
            hash_m.rows_in,
            hash_m.groups,
            json_measurement(&hash_m),
            fast_label,
            json_measurement(&fast_m),
            speedup_key,
            speedup,
        ));
    }
    // The external shape: same input and plan, one run synchronous and one
    // with the background I/O scheduler, so the JSON records what the
    // overlap buys. The limit sits below the intermediate size (half the
    // input bytes) but above the operator's pinned floor, so spilling is
    // mandatory on real row counts while tiny CI smoke runs still complete.
    // Over-partition (64 partitions) so each partition is a small fraction
    // of the limit: phase 2's read-ahead window (current partition + depth)
    // must fit in memory, or prefetched pages get evicted again before use.
    let ext_limit = (ext.coll.approx_bytes() / 2).max(16 << 20);
    let sync_setup = PoolSetup {
        mem_limit: ext_limit,
        page_size: 64 << 10,
        io_writers: 0,
        readahead_depth: 0,
        radix_bits: Some(6),
        direct_io: true,
        sorted_input: SortedInput::Detect,
        phase2_strategy: Phase2Strategy::Adaptive,
    };
    let async_setup = PoolSetup {
        io_writers: 3,
        readahead_depth: 2,
        ..sync_setup
    };
    let sync_m = measure(
        &ext,
        KernelMode::Vectorized,
        args.threads,
        Phase1Strategy::Adaptive,
        args.reps,
        &sync_setup,
    );
    let async_m = measure(
        &ext,
        KernelMode::Vectorized,
        args.threads,
        Phase1Strategy::Adaptive,
        args.reps,
        &async_setup,
    );
    assert_eq!(
        sync_m.groups, async_m.groups,
        "external: sync and async disagree on group count"
    );
    let io_speedup = if async_m.total_secs > 0.0 {
        sync_m.total_secs / async_m.total_secs
    } else {
        0.0
    };
    for (mode, m) in [("sync", &sync_m), ("async", &async_m)] {
        table.push(vec![
            ext.name.to_string(),
            mode.to_string(),
            format!("{:.1}", rate(m.rows_in, m.phase1_secs) / 1e6),
            format!("{:.1}", rate(m.rows_in, m.phase2_secs) / 1e6),
            if mode == "async" {
                format!("{io_speedup:.2}x")
            } else {
                "1.00x".to_string()
            },
        ]);
    }
    entries.push(format!(
        "    {{\"workload\": \"external\", \"rows\": {}, \"groups\": {}, \
         \"sync\": {}, \"async\": {}, \"io_speedup\": {:.3}}}",
        sync_m.rows_in,
        sync_m.groups,
        json_measurement(&sync_m),
        json_measurement(&async_m),
        io_speedup,
    ));

    // The hash-vs-sort phase-2 frontier: external_sorted runs the in-stream
    // phase 1 on both sides (sorted keys, heapless layout, limit below the
    // intermediate size so partitions spill) and isolates phase 2 — forced
    // `Hash` rebuilds a probe table over the reloaded rows and pays no
    // run-sort in phase 1; forced `SortedMerge` sorts spilled run tails
    // before pin release and streams a k-way merge with no table at all.
    let exts_limit = (exts.coll.approx_bytes() / 2).max(16 << 20);
    let exts_hash_setup = PoolSetup {
        mem_limit: exts_limit,
        page_size: 64 << 10,
        io_writers: 2,
        readahead_depth: 2,
        radix_bits: Some(6),
        direct_io: true,
        sorted_input: SortedInput::Sorted,
        phase2_strategy: Phase2Strategy::Hash,
    };
    let exts_merge_setup = PoolSetup {
        phase2_strategy: Phase2Strategy::SortedMerge,
        ..exts_hash_setup
    };
    let exts_hash_m = measure(
        &exts,
        KernelMode::Vectorized,
        args.threads,
        Phase1Strategy::Adaptive,
        args.reps,
        &exts_hash_setup,
    );
    let exts_merge_m = measure(
        &exts,
        KernelMode::Vectorized,
        args.threads,
        Phase1Strategy::Adaptive,
        args.reps,
        &exts_merge_setup,
    );
    assert_eq!(
        exts_hash_m.groups, exts_merge_m.groups,
        "external_sorted: hash and sorted_merge disagree on group count"
    );
    let merge_speedup = if exts_merge_m.total_secs > 0.0 {
        exts_hash_m.total_secs / exts_merge_m.total_secs
    } else {
        0.0
    };
    for (mode, m) in [("hash", &exts_hash_m), ("sorted_merge", &exts_merge_m)] {
        table.push(vec![
            exts.name.to_string(),
            mode.to_string(),
            format!("{:.1}", rate(m.rows_in, m.phase1_secs) / 1e6),
            format!("{:.1}", rate(m.rows_in, m.phase2_secs) / 1e6),
            if mode == "hash" {
                "1.00x".to_string()
            } else {
                format!("{merge_speedup:.2}x")
            },
        ]);
    }
    entries.push(format!(
        "    {{\"workload\": \"external_sorted\", \"rows\": {}, \"groups\": {}, \
         \"hash\": {}, \"sorted_merge\": {}, \"merge_speedup\": {:.3}}}",
        exts_hash_m.rows_in,
        exts_hash_m.groups,
        json_measurement(&exts_hash_m),
        json_measurement(&exts_merge_m),
        merge_speedup,
    ));

    print_table(&header, &table);

    // `--threads-sweep`: thread scaling of the morsel-driven probe
    // (thin_int, adaptive) plus the adaptive-vs-thread-local comparison on
    // the 512-group low_card workload, at every requested thread count.
    let mut sweep_json = String::new();
    if let Some(counts) = &args.threads_sweep {
        println!("\nthreads sweep: {counts:?}");
        let low = low_card(args.rows);
        let sweep_header: Vec<String> = [
            "workload",
            "threads",
            "strategy",
            "phase1 Mrows/s",
            "total s",
        ]
        .map(String::from)
        .to_vec();
        let mut sweep_table = Vec::new();
        let mut thin_points = Vec::new();
        let mut low_points = Vec::new();
        let mut thin_info = (0usize, 0usize); // (rows, groups)
        let mut low_info = (0usize, 0usize);
        let thin = &workloads[0];
        assert_eq!(thin.name, "thin_int");
        for &t in counts {
            let m = measure(
                thin,
                KernelMode::Vectorized,
                t,
                Phase1Strategy::Adaptive,
                args.reps,
                &PoolSetup::in_memory(),
            );
            sweep_table.push(vec![
                thin.name.to_string(),
                t.to_string(),
                m.profile.strategy.clone(),
                format!("{:.1}", rate(m.rows_in, m.phase1_secs) / 1e6),
                format!("{:.3}", m.total_secs),
            ]);
            thin_info = (m.rows_in, m.groups);
            thin_points.push(format!(
                "        {{\"threads\": {}, \"vectorized\": {}}}",
                t,
                json_measurement(&m)
            ));

            let adaptive = measure(
                &low,
                KernelMode::Vectorized,
                t,
                Phase1Strategy::Adaptive,
                args.reps,
                &PoolSetup::in_memory(),
            );
            let thread_local = measure(
                &low,
                KernelMode::Vectorized,
                t,
                Phase1Strategy::ThreadLocal,
                args.reps,
                &PoolSetup::in_memory(),
            );
            assert_eq!(
                adaptive.groups, thread_local.groups,
                "low_card: strategies disagree on group count"
            );
            let speedup = if adaptive.total_secs > 0.0 {
                thread_local.total_secs / adaptive.total_secs
            } else {
                0.0
            };
            for (m, label) in [(&adaptive, "adaptive"), (&thread_local, "thread_local")] {
                sweep_table.push(vec![
                    low.name.to_string(),
                    t.to_string(),
                    format!("{label}:{}", m.profile.strategy),
                    format!("{:.1}", rate(m.rows_in, m.phase1_secs) / 1e6),
                    format!("{:.3}", m.total_secs),
                ]);
            }
            low_info = (adaptive.rows_in, adaptive.groups);
            low_points.push(format!(
                "        {{\"threads\": {}, \"adaptive\": {}, \"thread_local\": {}, \
                 \"adaptive_speedup\": {:.3}}}",
                t,
                json_measurement(&adaptive),
                json_measurement(&thread_local),
                speedup,
            ));
        }
        print_table(&sweep_header, &sweep_table);
        let counts_json = counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        sweep_json = format!(
            ",\n  \"threads_sweep\": {{\n    \"threads\": [{}],\n    \"workloads\": [\n      \
             {{\"workload\": \"thin_int\", \"rows\": {}, \"groups\": {}, \"points\": [\n{}\n      ]}},\n      \
             {{\"workload\": \"low_card\", \"rows\": {}, \"groups\": {}, \"points\": [\n{}\n      ]}}\n    ]\n  }}",
            counts_json,
            thin_info.0,
            thin_info.1,
            thin_points.join(",\n"),
            low_info.0,
            low_info.1,
            low_points.join(",\n"),
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"agg_hotpath\",\n  \"rows\": {},\n  \"reps\": {},\n  \
         \"threads\": {},\n  \"workloads\": [\n{}\n  ]{}\n}}\n",
        args.rows,
        args.reps,
        args.threads,
        entries.join(",\n"),
        sweep_json,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_agg.json");
    println!("wrote {}", args.out);

    if let Some(path) = &args.trace_out {
        trace_external_run(&exts, args.threads.max(2), path);
    }
}
