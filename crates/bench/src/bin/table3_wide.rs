//! **Table III**: wide groupings (ANY_VALUE over every non-group column) at
//! paper SFs {2, 8, 32, 128} across the four systems.

fn main() {
    rexa_bench::tables::run_groupings_table(true, &[2.0, 8.0, 32.0, 128.0]);
}
