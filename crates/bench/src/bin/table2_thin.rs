//! **Table II**: thin groupings 1–13 at paper SFs {2, 8, 32, 128} across the
//! four systems, with the per-SF geometric mean normalized to the robust
//! engine.

fn main() {
    rexa_bench::tables::run_groupings_table(false, &[2.0, 8.0, 32.0, 128.0]);
}
