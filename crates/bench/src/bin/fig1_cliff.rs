//! **Figure 1**: the performance cliff. Runtime vs. input size for grouping 4
//! (`GROUP BY l_orderkey`, thin) as intermediates cross the memory limit:
//!
//! * the **robust** engine degrades gracefully (gentle slope past the limit),
//! * the **switch** baseline jumps discontinuously at its crossover (wasted
//!   in-memory attempt + slower external algorithm),
//! * the **in-memory** baseline aborts ('A') past the limit,
//! * the **external sort** baseline is uniformly slower everywhere.

use rexa_bench::*;
use rexa_buffer::EvictionPolicy;
use rexa_tpch::Grouping;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 1: the performance cliff | grouping 4 thin, mem={} MiB, scale={}",
        args.memory_limit() >> 20,
        args.scale
    );
    // A fine-grained SF sweep crossing the memory limit.
    let paper_sfs = [8.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0, 192.0, 256.0];
    let grouping = Grouping::by_id(4).unwrap();

    let mut header = vec!["paper_sf".to_string(), "rows".to_string()];
    for kind in SystemKind::ALL {
        header.push(kind.label().to_string());
    }
    header.push("rexa_spilled_mib".to_string());
    let mut rows = Vec::new();
    println!("csv:paper_sf,rows,system,cell");
    for sf in paper_sfs {
        let ds = dataset(sf, &args);
        let mut row = vec![format!("{sf}"), format!("{}", ds.coll.rows())];
        let mut spilled = 0.0f64;
        for kind in SystemKind::ALL {
            let env = build_env(&ds, &args, EvictionPolicy::Mixed);
            let out = run_grouping(kind, &env, grouping, false, &args);
            println!(
                "csv:{sf},{},{},{}",
                ds.coll.rows(),
                kind.label(),
                out.cell()
            );
            if let Outcome::Done { stats: Some(s), .. } = &out {
                spilled = s.buffer.temp_bytes_written as f64 / (1 << 20) as f64;
            }
            row.push(out.cell());
        }
        row.push(format!("{spilled:.1}"));
        rows.push(row);
    }
    print_table(&header, &rows);
    println!(
        "\nExpected shape: rexa stays near-linear across the limit; switch jumps at its\n\
         crossover; inmem turns to 'A'; extsort is uniformly slower."
    );
}
