//! **Figure 6**: execution time vs. paper scale factor (1–128, log-log) for
//! the *wide* variants of groupings 3, 6, and 13, all systems.

fn main() {
    rexa_bench::tables::run_scaling_figure(true, &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]);
}
