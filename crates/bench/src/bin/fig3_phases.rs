//! **Figure 3** (architecture figure): a phase breakdown of one robust
//! aggregation run — thread-local pre-aggregation vs. partition-wise
//! aggregation, hash-table resets, partitions, and spill traffic — the
//! quantities the paper's architecture diagram describes.

use rexa_bench::*;
use rexa_buffer::EvictionPolicy;
use rexa_tpch::Grouping;

fn main() {
    let args = HarnessArgs::parse();
    let grouping = Grouping::by_id(4).unwrap();
    println!(
        "Figure 3: phase breakdown of the robust aggregation | grouping 4 thin, sf=32 eq, mem={} MiB",
        args.memory_limit() >> 20
    );
    let ds = dataset(32.0, &args);
    let env = build_env(&ds, &args, EvictionPolicy::Mixed);
    match run_grouping(SystemKind::Robust, &env, grouping, false, &args) {
        Outcome::Done {
            secs,
            groups,
            stats: Some(s),
        } => {
            let header: Vec<String> = ["metric", "value"].map(String::from).to_vec();
            let rows = vec![
                vec!["input rows".into(), s.rows_in.to_string()],
                vec!["groups out".into(), groups.to_string()],
                vec!["total seconds".into(), format!("{secs:.3}")],
                vec![
                    "phase 1 (thread-local pre-aggregation)".into(),
                    format!("{:.3}s", s.phase1.as_secs_f64()),
                ],
                vec![
                    "phase 2 (partition-wise aggregation)".into(),
                    format!("{:.3}s", s.phase2.as_secs_f64()),
                ],
                vec!["radix partitions".into(), s.partitions.to_string()],
                vec!["hash-table resets".into(), s.resets.to_string()],
                vec![
                    "temp bytes written".into(),
                    format!("{:.1} MiB", s.buffer.temp_bytes_written as f64 / 1048576.0),
                ],
                vec![
                    "temp bytes read".into(),
                    format!("{:.1} MiB", s.buffer.temp_bytes_read as f64 / 1048576.0),
                ],
                vec![
                    "evictions (persistent/temporary)".into(),
                    format!(
                        "{}/{}",
                        s.buffer.evictions_persistent, s.buffer.evictions_temporary
                    ),
                ],
                vec!["buffer reuses".into(), s.buffer.buffer_reuses.to_string()],
            ];
            print_table(&header, &rows);
        }
        other => println!("run did not complete: {other:?}"),
    }
}
