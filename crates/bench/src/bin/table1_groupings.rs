//! **Table I**: the thirteen grouping definitions, with unique-group counts
//! measured on generated data (the `N` the paper precomputes for its
//! `OFFSET N-1` benchmark query).

use rexa_bench::*;
use rexa_buffer::EvictionPolicy;
use rexa_tpch::GROUPINGS;

fn main() {
    let args = HarnessArgs::parse();
    let paper_sfs = [1.0, 8.0];
    println!(
        "Table I: groupings of lineitem (reconstructed; see DESIGN.md) | scale={}",
        args.scale
    );
    let mut header = vec!["#".to_string(), "GROUP BY".to_string()];
    for sf in paper_sfs {
        header.push(format!("groups @ sf{sf}-eq"));
    }
    let mut rows: Vec<Vec<String>> = GROUPINGS
        .iter()
        .map(|g| vec![g.id.to_string(), g.describe()])
        .collect();
    for sf in paper_sfs {
        let ds = dataset(sf, &args);
        let env = build_env(&ds, &args, EvictionPolicy::Mixed);
        for (i, g) in GROUPINGS.iter().enumerate() {
            let cell = match run_grouping(SystemKind::Robust, &env, *g, false, &args) {
                Outcome::Done { groups, .. } => groups.to_string(),
                other => other.cell(),
            };
            rows[i].push(cell);
        }
    }
    print_table(&header, &rows);
}
