//! **Concurrency**: grouping 4 under 1/2/4/8 concurrent connections,
//! with admission control on and off, against a memory limit sized for a
//! single query.
//!
//! With admission on, the [`QueryService`] reserves each query's estimated
//! footprint before launch, so excess queries wait in the admission queue
//! and every query completes. With admission off (a zero footprint, so
//! every reservation trivially succeeds), all queries launch at once and
//! compete for the same limit — the unspillable parts of their working sets
//! collide and queries can fail with out-of-memory.
//!
//! Reported per cell: completed/failed counts, p50/p95 end-to-end latency
//! (submission to completion, so admission wait is included), and the peak
//! resident memory the sampler observed.
//!
//! ```sh
//! cargo run --release -p rexa-bench --bin concurrency -- --scale 0.05
//! ```

use rexa_bench::*;
use rexa_buffer::EvictionPolicy;
use rexa_core::{plan_row_width, AggregateConfig};
use rexa_service::{
    estimate_footprint, QueryInput, QueryOptions, QueryRequest, QueryService, ServiceConfig,
};
use rexa_tpch::{lineitem_schema, Grouping};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let args = HarnessArgs::parse();
    let grouping = Grouping::by_id(4).unwrap();
    let ds = dataset(32.0, &args);

    let config = AggregateConfig {
        threads: args.threads,
        radix_bits: None,
        ht_capacity: 1 << 14,
        output_chunk_size: rexa_exec::VECTOR_SIZE,
        reset_fill_percent: 66,
        ..Default::default()
    };
    let plan = grouping_plan(grouping, false);
    let row_width = plan_row_width(&plan, &lineitem_schema()).unwrap();
    let footprint = estimate_footprint(&config, args.page_size, ds.coll.rows(), row_width);
    // A limit sized for one query: its full footprint plus working slack.
    let limit = args.mem_limit.unwrap_or(footprint + footprint / 2);

    println!(
        "Concurrency: grouping 4 thin | rows={}, footprint={:.1} MiB, mem limit={:.1} MiB",
        ds.coll.rows(),
        footprint as f64 / 1048576.0,
        limit as f64 / 1048576.0,
    );
    println!("csv:concurrent,admission,completed,failed,p50_ms,p95_ms,peak_mib");

    let header: Vec<String> = [
        "concurrent",
        "admission",
        "ok/fail",
        "p50_ms",
        "p95_ms",
        "peak_mib",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();

    for concurrent in [1usize, 2, 4, 8] {
        for admission in [true, false] {
            let mut run_args = args.clone();
            run_args.mem_limit = Some(limit);
            let env = build_env(&ds, &run_args, EvictionPolicy::Mixed);
            let Env {
                mgr,
                db: _db,
                table,
            } = env;
            let table = Arc::new(table);

            let service = QueryService::new(
                Arc::clone(&mgr),
                ServiceConfig {
                    pool_threads: args.threads,
                    max_concurrent: concurrent,
                    queue_bound: concurrent * 2,
                    slow_query: None,
                },
            );
            let request = || QueryRequest {
                plan: plan.clone(),
                input: QueryInput::Table(Arc::clone(&table)),
                options: QueryOptions {
                    config: config.clone(),
                    deadline: Some(args.timeout),
                    // Admission off = a zero footprint: reservations always
                    // succeed, every query launches immediately.
                    footprint: (!admission).then_some(0),
                    consumer: Some(Arc::new(|_| Ok(()))),
                    spans: None,
                },
            };

            // Peak-memory sampler.
            let stop = Arc::new(AtomicBool::new(false));
            let peak = Arc::new(AtomicUsize::new(0));
            let sampler = {
                let (stop, peak, mgr) = (Arc::clone(&stop), Arc::clone(&peak), Arc::clone(&mgr));
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        peak.fetch_max(mgr.memory_used(), Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(5));
                    }
                })
            };

            let submitted = Instant::now();
            let handles: Vec<_> = (0..concurrent)
                .map(|_| {
                    service
                        .submit(request())
                        .expect("submit within queue bound")
                })
                .collect();
            let mut latencies_ms = Vec::new();
            let mut failed = 0usize;
            for h in handles {
                match h.wait() {
                    Ok(_) => latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3),
                    Err(_) => failed += 1,
                }
            }
            stop.store(true, Ordering::Relaxed);
            sampler.join().unwrap();

            latencies_ms.sort_by(|a, b| a.total_cmp(b));
            let p50 = percentile(&latencies_ms, 0.50);
            let p95 = percentile(&latencies_ms, 0.95);
            let peak_mib = peak.load(Ordering::Relaxed) as f64 / 1048576.0;
            let completed = latencies_ms.len();
            let label = if admission { "on" } else { "off" };
            println!(
                "csv:{concurrent},{label},{completed},{failed},{p50:.0},{p95:.0},{peak_mib:.1}"
            );
            rows.push(vec![
                concurrent.to_string(),
                label.into(),
                format!("{completed}/{failed}"),
                format!("{p50:.0}"),
                format!("{p95:.0}"),
                format!("{peak_mib:.1}"),
            ]);
            eprintln!(
                "  {concurrent} concurrent, admission {label}: {completed} ok, {failed} failed, \
                 p50 {p50:.0} ms, p95 {p95:.0} ms, peak {peak_mib:.1} MiB"
            );
        }
    }
    print_table(&header, &rows);
    println!(
        "\nExpected shape: with admission on, excess queries queue, so p50/p95\n\
         grow roughly linearly with concurrency while peak memory stays at\n\
         the limit. With admission off, all queries launch at once and fight\n\
         for the same limit: robust spilling usually keeps them alive, but\n\
         latency degrades super-linearly (thrashing), and with tight limits\n\
         the colliding unspillable working sets can fail with out-of-memory."
    );
}
