//! **Section VII allocation micro-benchmark**: the latency of a small
//! (one page) and a large (1024 pages) allocation —
//!
//! 1. through the raw allocator,
//! 2. through the buffer manager with ample memory,
//! 3. through the buffer manager with memory full of cached persistent data
//!    (allocations must evict; the small one reuses the evicted buffer, the
//!    large one causes a cascade of deallocations).
//!
//! The paper reports (jemalloc, 256 KiB pages): raw 1.5/1.7 µs; ample
//! 1.7/2.0 µs; full 0.9 µs (small, buffer reused) and 0.9 ms (large, 1024
//! evictions). The shape to reproduce: buffer-manager overhead is negligible
//! when memory is ample; a full pool makes the small allocation *cheaper*
//! (reuse) and the large allocation much more expensive (many evictions).

use rexa_bench::HarnessArgs;
use rexa_buffer::{BufferManager, BufferManagerConfig};
use rexa_storage::DatabaseFile;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Iterations to average over (the paper averages over 3,024 allocations).
const ITERS: usize = 3024;
/// Pages per "large" region (the paper's large region is 1024 pages).
const LARGE_PAGES: usize = 1024;

fn time_avg(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64 * 1e6 // µs
}

fn main() {
    let args = HarnessArgs::parse();
    let page = args.page_size;
    let large = LARGE_PAGES * page;
    println!(
        "Section VII allocation micro-benchmark | page={} KiB, large={} MiB, {} iters",
        page >> 10,
        large >> 20,
        ITERS
    );

    let mut rows: Vec<Vec<String>> = Vec::new();

    // 1. Raw allocator (malloc/free pair, uninitialized — what the paper
    // measures with jemalloc).
    let raw_alloc = |size: usize| {
        let layout = std::alloc::Layout::from_size_align(size, 64).unwrap();
        // SAFETY: non-zero size; freed with the same layout.
        unsafe {
            let p = std::alloc::alloc(layout);
            black_box(p);
            std::alloc::dealloc(p, layout);
        }
    };
    let raw_small = time_avg(ITERS, || raw_alloc(page));
    let raw_large = time_avg(ITERS / 16, || raw_alloc(large));
    rows.push(vec![
        "raw allocator".into(),
        format!("{raw_small:.2}"),
        format!("{raw_large:.2}"),
    ]);

    // 2. Buffer manager, ample memory.
    let dir = rexa_storage::scratch_dir("alloc").unwrap();
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(4 * large)
            .page_size(page)
            .temp_dir(dir.join("tmp")),
    )
    .unwrap();
    let bm_small = time_avg(ITERS, || {
        let (h, p) = mgr.allocate_page().unwrap();
        black_box(&p);
        drop(p);
        drop(h); // eager destroy
    });
    let bm_large = time_avg(ITERS / 16, || {
        let (h, p) = mgr.allocate_variable(large).unwrap();
        black_box(&p);
        drop(p);
        drop(h);
    });
    rows.push(vec![
        "buffer manager, ample memory".into(),
        format!("{bm_small:.2}"),
        format!("{bm_large:.2}"),
    ]);

    // 3. Buffer manager, memory full of cached persistent pages.
    let db = Arc::new(DatabaseFile::create(&dir.join("fill.db"), page).unwrap());
    let filler = vec![0xAB; page];
    let total_pages = 4 * large / page + 64;
    let handles: Vec<_> = (0..total_pages)
        .map(|_| {
            let id = db.append_block(&filler).unwrap();
            mgr.register_persistent(&db, id)
        })
        .collect();
    let refill = |mgr: &BufferManager| {
        for h in &handles {
            if mgr.pin(h).is_err() {
                break; // memory full: good
            }
        }
    };
    refill(&mgr);
    let before = mgr.stats();
    // Keep the allocations alive so every iteration runs against a full
    // pool: each allocation must evict one persistent page (free) and can
    // reuse its buffer immediately — the paper's "takes even less time"
    // case. The pool holds ~4096 cached pages, enough for all iterations.
    let mut kept = Vec::with_capacity(ITERS);
    let full_small = time_avg(ITERS, || {
        let (h, p) = mgr.allocate_page().unwrap();
        black_box(&p);
        drop(p);
        kept.push(h);
    });
    drop(kept);
    // For the large allocation, refill the pool outside the timed section;
    // each timed allocation pays for ~LARGE_PAGES evictions + deallocations.
    let mut total = std::time::Duration::ZERO;
    let large_iters = 24;
    for _ in 0..large_iters {
        refill(&mgr);
        let t = Instant::now();
        let (h, p) = mgr.allocate_variable(large).unwrap();
        black_box(&p);
        total += t.elapsed();
        drop(p);
        drop(h);
    }
    let full_large = total.as_secs_f64() / large_iters as f64 * 1e6;
    let delta = mgr.stats().delta_since(&before);
    rows.push(vec![
        "buffer manager, memory full".into(),
        format!("{full_small:.2}"),
        format!("{full_large:.2}"),
    ]);

    let header: Vec<String> = ["scenario", "small alloc (µs)", "large alloc (µs)"]
        .map(String::from)
        .to_vec();
    rexa_bench::print_table(&header, &rows);
    println!(
        "\npersistent evictions during the full-memory runs: {} (all write-free); \
         buffer reuses: {}",
        delta.evictions_persistent, delta.buffer_reuses
    );
    println!(
        "Expected shape: ample-memory overhead vs raw is small (bookkeeping); with\n\
         memory full the small allocation stays cheap (evicted buffer reused) while\n\
         the large allocation pays for ~{LARGE_PAGES} evictions."
    );
}
