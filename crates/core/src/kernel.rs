//! Monomorphized, selection-driven aggregate kernels.
//!
//! [`crate::function::update_state`] and friends interpret the aggregate
//! once per *row*: a `match` on `AggKind` plus a `match` on the input's
//! physical type for every single input tuple. That interpretive overhead —
//! not the external-memory machinery — dominates aggregation throughput once
//! the working set is cache-resident, so the hot path resolves each bound
//! aggregate to three function pointers **at bind time** instead:
//!
//! * [`UpdateFn`] folds a whole chunk of input rows into their target
//!   states in one call (row `k` folds into `rows[k] + off`),
//! * [`CombineFn`] merges a batch of `(src, dst)` state pairs (phase 2),
//! * [`FinalizeFn`] materializes a batch of states directly into a
//!   [`Vector`], skipping per-row boxed [`rexa_exec::Value`]s.
//!
//! Each pointer is one monomorphized instantiation per (function × physical
//! input type), so the kind/type dispatch happens once per *column per
//! chunk*. Kernels with an argument column additionally branch once per call
//! on [`Validity::no_nulls`] to skip the per-row validity test on NULL-free
//! vectors (the common case).
//!
//! The per-row functions in [`crate::function`] are deliberately retained:
//! they are the reference oracle. Differential tests (unit tests here, a
//! proptest in `tests/differential.rs`, and `KernelMode::Scalar` on the full
//! operator) check the kernels bit-identical against them — every kernel
//! mirrors the oracle's exact operation order so float results match to the
//! last ulp.

use crate::function::AggKind;
#[cfg(test)]
use crate::function::BoundAggregate;
use rexa_exec::vector::VectorData;
use rexa_exec::{LogicalType, Validity, Vector};

/// Vectorized update: fold input row `k` of `col` into the state at
/// `rows[k] + off`, for all `k`. The selection is implicitly the identity —
/// phase 1 resolves a target row for *every* input row, so passing a
/// selection (and prebuilt state pointers) would only add per-row
/// indirections to the hottest loop in the system. `col` is `None` only for
/// `COUNT(*)`.
///
/// # Safety
/// `rows.len()` must equal `col.len()` when a column is present; every
/// `rows[k] + off` must point to a writable, properly initialized state of
/// the aggregate this kernel was resolved for. Rows may repeat (several
/// input rows of one group in one chunk).
pub type UpdateFn = unsafe fn(rows: &[*mut u8], off: usize, col: Option<&Vector>);

/// Vectorized combine: merge state `src` into state `dst` for every
/// `(src, dst)` pair.
///
/// # Safety
/// Both pointers of every pair must address valid states of the resolved
/// aggregate; `src` and `dst` must not alias within a pair.
pub type CombineFn = unsafe fn(pairs: &[(*const u8, *mut u8)]);

/// Vectorized finalize: materialize one output row per state, directly as a
/// [`Vector`] of the aggregate's output type.
///
/// # Safety
/// Every pointer must address a valid state of the resolved aggregate.
pub type FinalizeFn = unsafe fn(states: &[*const u8]) -> Vector;

/// The three kernels of one bound aggregate, resolved at bind time.
///
/// Deliberately not `PartialEq`: function-pointer addresses are not unique
/// across codegen units. Two aggregates are interchangeable iff their
/// *binding* (spec, types) is equal — resolution is a pure function of that,
/// so `BoundAggregate`'s manual `PartialEq` ignores this field.
#[derive(Debug, Clone, Copy)]
pub struct AggKernels {
    /// Selection-vector update (phase 1 and phase 2 pointer-insertion).
    pub update: UpdateFn,
    /// Columnar state combine (phase 2 duplicate groups).
    pub combine: CombineFn,
    /// Vectorized finalize into an output [`Vector`].
    pub finalize: FinalizeFn,
}

// ---------------------------------------------------------------------------
// Unaligned state accessors (states live inside packed row layouts).
// ---------------------------------------------------------------------------

#[inline]
unsafe fn read_i64(p: *const u8) -> i64 {
    std::ptr::read_unaligned(p as *const i64)
}
#[inline]
unsafe fn write_i64(p: *mut u8, v: i64) {
    std::ptr::write_unaligned(p as *mut i64, v);
}
#[inline]
unsafe fn read_f64(p: *const u8) -> f64 {
    std::ptr::read_unaligned(p as *const f64)
}
#[inline]
unsafe fn write_f64(p: *mut u8, v: f64) {
    std::ptr::write_unaligned(p as *mut f64, v);
}

/// Min/Max state: `[u64 seen][8-byte value]` — must match
/// `crate::function`'s layout.
const MM_VALUE: usize = 8;

/// A fixed-width input column type a kernel can be monomorphized over.
trait FixedCol: Copy {
    fn slice(col: &Vector) -> &[Self];
    fn as_i64(self) -> i64;
    fn as_f64(self) -> f64;
}

impl FixedCol for i32 {
    #[inline]
    fn slice(col: &Vector) -> &[Self] {
        match col.data() {
            VectorData::I32(v) => v,
            _ => unreachable!("kernel resolved for i32 input"),
        }
    }
    #[inline]
    fn as_i64(self) -> i64 {
        self as i64
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
}

impl FixedCol for i64 {
    #[inline]
    fn slice(col: &Vector) -> &[Self] {
        match col.data() {
            VectorData::I64(v) => v,
            _ => unreachable!("kernel resolved for i64 input"),
        }
    }
    #[inline]
    fn as_i64(self) -> i64 {
        self
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
}

impl FixedCol for f64 {
    #[inline]
    fn slice(col: &Vector) -> &[Self] {
        match col.data() {
            VectorData::F64(v) => v,
            _ => unreachable!("kernel resolved for f64 input"),
        }
    }
    #[inline]
    fn as_i64(self) -> i64 {
        unreachable!("float input never folds into an integer state")
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self
    }
}

// ---------------------------------------------------------------------------
// Update kernels.
// ---------------------------------------------------------------------------

/// Run `$body(row)` for every input row (identity selection), with a
/// validity-free fast path when the input column has no NULLs. No software
/// prefetch here: by update time the probe's compare pass has already pulled
/// every target row into cache, so a prefetch is pure per-row overhead.
macro_rules! for_valid {
    ($rows:ident, $col:ident, |$row:ident| $body:expr) => {{
        debug_assert_eq!($rows.len(), $col.len());
        let validity = $col.validity();
        if validity.no_nulls() {
            for $row in 0..$rows.len() {
                $body
            }
        } else {
            for $row in 0..$rows.len() {
                if validity.is_valid($row) {
                    $body
                }
            }
        }
    }};
}

unsafe fn update_count_star(rows: &[*mut u8], off: usize, _col: Option<&Vector>) {
    for &r in rows {
        let s = r.add(off);
        write_i64(s, read_i64(s) + 1);
    }
}

unsafe fn update_count(rows: &[*mut u8], off: usize, col: Option<&Vector>) {
    let col = col.unwrap();
    for_valid!(rows, col, |row| {
        let s = rows[row].add(off);
        write_i64(s, read_i64(s) + 1);
    });
}

unsafe fn update_sum_int<T: FixedCol>(rows: &[*mut u8], off: usize, col: Option<&Vector>) {
    let col = col.unwrap();
    let vals = T::slice(col);
    for_valid!(rows, col, |row| {
        let s = rows[row].add(off);
        write_i64(s, read_i64(s).wrapping_add(vals[row].as_i64()));
    });
}

unsafe fn update_sum_f64(rows: &[*mut u8], off: usize, col: Option<&Vector>) {
    let col = col.unwrap();
    let vals = f64::slice(col);
    for_valid!(rows, col, |row| {
        let s = rows[row].add(off);
        write_f64(s, read_f64(s) + vals[row]);
    });
}

unsafe fn update_avg<T: FixedCol>(rows: &[*mut u8], off: usize, col: Option<&Vector>) {
    let col = col.unwrap();
    let vals = T::slice(col);
    for_valid!(rows, col, |row| {
        let s = rows[row].add(off);
        write_f64(s, read_f64(s) + vals[row].as_f64());
        write_i64(s.add(8), read_i64(s.add(8)) + 1);
    });
}

unsafe fn update_minmax_int<T: FixedCol, const MIN: bool>(
    rows: &[*mut u8],
    off: usize,
    col: Option<&Vector>,
) {
    let col = col.unwrap();
    let vals = T::slice(col);
    for_valid!(rows, col, |row| {
        let s = rows[row].add(off);
        let v = vals[row].as_i64();
        let seen = read_i64(s) != 0;
        let cur = read_i64(s.add(MM_VALUE));
        if !seen || (MIN && v < cur) || (!MIN && v > cur) {
            write_i64(s.add(MM_VALUE), v);
        }
        write_i64(s, 1);
    });
}

unsafe fn update_minmax_f64<const MIN: bool>(rows: &[*mut u8], off: usize, col: Option<&Vector>) {
    let col = col.unwrap();
    let vals = f64::slice(col);
    for_valid!(rows, col, |row| {
        let s = rows[row].add(off);
        let v = vals[row];
        let seen = read_i64(s) != 0;
        let cur = read_f64(s.add(MM_VALUE));
        if !seen || (MIN && v.total_cmp(&cur).is_lt()) || (!MIN && v.total_cmp(&cur).is_gt()) {
            write_f64(s.add(MM_VALUE), v);
        }
        write_i64(s, 1);
    });
}

unsafe fn update_welford<T: FixedCol>(rows: &[*mut u8], off: usize, col: Option<&Vector>) {
    let col = col.unwrap();
    let vals = T::slice(col);
    for_valid!(rows, col, |row| {
        let s = rows[row].add(off);
        let x = vals[row].as_f64();
        let n = read_i64(s) + 1;
        let mean = read_f64(s.add(8));
        let m2 = read_f64(s.add(16));
        let delta = x - mean;
        let mean2 = mean + delta / n as f64;
        write_i64(s, n);
        write_f64(s.add(8), mean2);
        write_f64(s.add(16), m2 + delta * (x - mean2));
    });
}

unsafe fn update_any_value(_rows: &[*mut u8], _off: usize, _col: Option<&Vector>) {
    unreachable!("ANY_VALUE has no state; its payload column is write-once");
}

// ---------------------------------------------------------------------------
// Combine kernels.
// ---------------------------------------------------------------------------

unsafe fn combine_add_i64(pairs: &[(*const u8, *mut u8)]) {
    for &(src, dst) in pairs {
        write_i64(dst, read_i64(dst) + read_i64(src));
    }
}

unsafe fn combine_sum_int(pairs: &[(*const u8, *mut u8)]) {
    for &(src, dst) in pairs {
        write_i64(dst, read_i64(dst).wrapping_add(read_i64(src)));
    }
}

unsafe fn combine_add_f64(pairs: &[(*const u8, *mut u8)]) {
    for &(src, dst) in pairs {
        write_f64(dst, read_f64(dst) + read_f64(src));
    }
}

unsafe fn combine_avg(pairs: &[(*const u8, *mut u8)]) {
    for &(src, dst) in pairs {
        write_f64(dst, read_f64(dst) + read_f64(src));
        write_i64(dst.add(8), read_i64(dst.add(8)) + read_i64(src.add(8)));
    }
}

unsafe fn combine_minmax_int<const MIN: bool>(pairs: &[(*const u8, *mut u8)]) {
    for &(src, dst) in pairs {
        if read_i64(src) == 0 {
            continue; // src never saw a value
        }
        let dst_seen = read_i64(dst) != 0;
        let sv = read_i64(src.add(MM_VALUE));
        let dv = read_i64(dst.add(MM_VALUE));
        if !dst_seen || (MIN && sv < dv) || (!MIN && sv > dv) {
            write_i64(dst.add(MM_VALUE), sv);
        }
        write_i64(dst, 1);
    }
}

unsafe fn combine_minmax_f64<const MIN: bool>(pairs: &[(*const u8, *mut u8)]) {
    for &(src, dst) in pairs {
        if read_i64(src) == 0 {
            continue;
        }
        let dst_seen = read_i64(dst) != 0;
        let sv = read_f64(src.add(MM_VALUE));
        let dv = read_f64(dst.add(MM_VALUE));
        if !dst_seen || (MIN && sv.total_cmp(&dv).is_lt()) || (!MIN && sv.total_cmp(&dv).is_gt()) {
            write_f64(dst.add(MM_VALUE), sv);
        }
        write_i64(dst, 1);
    }
}

unsafe fn combine_welford(pairs: &[(*const u8, *mut u8)]) {
    for &(src, dst) in pairs {
        let nb = read_i64(src);
        if nb == 0 {
            continue;
        }
        let na = read_i64(dst);
        let (ma, m2a) = (read_f64(dst.add(8)), read_f64(dst.add(16)));
        let (mb, m2b) = (read_f64(src.add(8)), read_f64(src.add(16)));
        let n = na + nb;
        let delta = mb - ma;
        let mean = ma + delta * nb as f64 / n as f64;
        let m2 = m2a + m2b + delta * delta * na as f64 * nb as f64 / n as f64;
        write_i64(dst, n);
        write_f64(dst.add(8), mean);
        write_f64(dst.add(16), m2);
    }
}

unsafe fn combine_any_value(_pairs: &[(*const u8, *mut u8)]) {
    unreachable!("ANY_VALUE has no state; its payload column is write-once");
}

// ---------------------------------------------------------------------------
// Finalize kernels.
// ---------------------------------------------------------------------------

unsafe fn finalize_i64(states: &[*const u8]) -> Vector {
    let vals: Vec<i64> = states.iter().map(|&s| read_i64(s)).collect();
    let n = vals.len();
    Vector::from_i64_validity(vals, Validity::all_valid(n))
}

unsafe fn finalize_sum_f64(states: &[*const u8]) -> Vector {
    let vals: Vec<f64> = states.iter().map(|&s| read_f64(s)).collect();
    let n = vals.len();
    Vector::from_f64_validity(vals, Validity::all_valid(n))
}

unsafe fn finalize_avg(states: &[*const u8]) -> Vector {
    let mut vals = Vec::with_capacity(states.len());
    let mut validity = Validity::all_valid(0);
    for &s in states {
        let count = read_i64(s.add(8));
        if count == 0 {
            vals.push(0.0);
            validity.push(false);
        } else {
            vals.push(read_f64(s) / count as f64);
            validity.push(true);
        }
    }
    Vector::from_f64_validity(vals, validity)
}

/// Shared shape of the Min/Max finalizers: the state is NULL unless its
/// `seen` flag is set.
macro_rules! finalize_minmax {
    ($name:ident, $elem:ty, $read:ident, $valoff:expr, $ctor:ident, $map:expr) => {
        unsafe fn $name(states: &[*const u8]) -> Vector {
            let mut vals: Vec<$elem> = Vec::with_capacity(states.len());
            let mut validity = Validity::all_valid(0);
            for &s in states {
                if read_i64(s) == 0 {
                    vals.push(Default::default());
                    validity.push(false);
                } else {
                    #[allow(clippy::redundant_closure_call)]
                    vals.push(($map)($read(s.add($valoff))));
                    validity.push(true);
                }
            }
            Vector::$ctor(vals, validity)
        }
    };
}

finalize_minmax!(
    finalize_minmax_i64,
    i64,
    read_i64,
    MM_VALUE,
    from_i64_validity,
    |v| v
);
finalize_minmax!(
    finalize_minmax_i32,
    i32,
    read_i64,
    MM_VALUE,
    from_i32_validity,
    |v| v as i32
);
finalize_minmax!(
    finalize_minmax_date,
    i32,
    read_i64,
    MM_VALUE,
    from_dates_validity,
    |v| v as i32
);
finalize_minmax!(
    finalize_minmax_f64,
    f64,
    read_f64,
    MM_VALUE,
    from_f64_validity,
    |v| v
);

unsafe fn finalize_welford<const STDDEV: bool>(states: &[*const u8]) -> Vector {
    let mut vals = Vec::with_capacity(states.len());
    let mut validity = Validity::all_valid(0);
    for &s in states {
        let n = read_i64(s);
        if n < 2 {
            vals.push(0.0);
            validity.push(false);
        } else {
            let var = read_f64(s.add(16)) / (n - 1) as f64;
            vals.push(if STDDEV { var.sqrt() } else { var });
            validity.push(true);
        }
    }
    Vector::from_f64_validity(vals, validity)
}

unsafe fn finalize_any_value(_states: &[*const u8]) -> Vector {
    unreachable!("ANY_VALUE has no state; its payload column is gathered directly");
}

// ---------------------------------------------------------------------------
// Resolution.
// ---------------------------------------------------------------------------

/// Resolve the monomorphized kernels of a validated aggregate. Called from
/// `bind_aggregate` after type checking, so every reachable combination is
/// covered; anything else is a bind-layer bug.
pub fn resolve(
    kind: AggKind,
    arg_type: Option<LogicalType>,
    output_type: LogicalType,
) -> AggKernels {
    use LogicalType as T;
    let (update, combine, finalize): (UpdateFn, CombineFn, FinalizeFn) = match (kind, arg_type) {
        (AggKind::CountStar, _) => (update_count_star, combine_add_i64, finalize_i64),
        (AggKind::Count, _) => (update_count, combine_add_i64, finalize_i64),
        (AggKind::Sum, Some(T::Int32)) => (update_sum_int::<i32>, combine_sum_int, finalize_i64),
        (AggKind::Sum, Some(T::Int64)) => (update_sum_int::<i64>, combine_sum_int, finalize_i64),
        (AggKind::Sum, Some(T::Float64)) => (update_sum_f64, combine_add_f64, finalize_sum_f64),
        (AggKind::Avg, Some(T::Int32)) => (update_avg::<i32>, combine_avg, finalize_avg),
        (AggKind::Avg, Some(T::Int64)) => (update_avg::<i64>, combine_avg, finalize_avg),
        (AggKind::Avg, Some(T::Float64)) => (update_avg::<f64>, combine_avg, finalize_avg),
        (AggKind::Min, Some(t @ (T::Int32 | T::Int64 | T::Date))) => (
            match t {
                T::Int32 | T::Date => update_minmax_int::<i32, true>,
                _ => update_minmax_int::<i64, true>,
            },
            combine_minmax_int::<true>,
            match t {
                T::Int32 => finalize_minmax_i32,
                T::Date => finalize_minmax_date,
                _ => finalize_minmax_i64,
            },
        ),
        (AggKind::Max, Some(t @ (T::Int32 | T::Int64 | T::Date))) => (
            match t {
                T::Int32 | T::Date => update_minmax_int::<i32, false>,
                _ => update_minmax_int::<i64, false>,
            },
            combine_minmax_int::<false>,
            match t {
                T::Int32 => finalize_minmax_i32,
                T::Date => finalize_minmax_date,
                _ => finalize_minmax_i64,
            },
        ),
        (AggKind::Min, Some(T::Float64)) => (
            update_minmax_f64::<true>,
            combine_minmax_f64::<true>,
            finalize_minmax_f64,
        ),
        (AggKind::Max, Some(T::Float64)) => (
            update_minmax_f64::<false>,
            combine_minmax_f64::<false>,
            finalize_minmax_f64,
        ),
        (AggKind::VarSamp, Some(T::Int32)) => (
            update_welford::<i32>,
            combine_welford,
            finalize_welford::<false>,
        ),
        (AggKind::VarSamp, Some(T::Int64)) => (
            update_welford::<i64>,
            combine_welford,
            finalize_welford::<false>,
        ),
        (AggKind::VarSamp, Some(T::Float64)) => (
            update_welford::<f64>,
            combine_welford,
            finalize_welford::<false>,
        ),
        (AggKind::StdDevSamp, Some(T::Int32)) => (
            update_welford::<i32>,
            combine_welford,
            finalize_welford::<true>,
        ),
        (AggKind::StdDevSamp, Some(T::Int64)) => (
            update_welford::<i64>,
            combine_welford,
            finalize_welford::<true>,
        ),
        (AggKind::StdDevSamp, Some(T::Float64)) => (
            update_welford::<f64>,
            combine_welford,
            finalize_welford::<true>,
        ),
        (AggKind::AnyValue, _) => (update_any_value, combine_any_value, finalize_any_value),
        (k, t) => unreachable!("bind accepted {k:?} over {t:?} but no kernel exists"),
    };
    let _ = output_type; // types are fully determined by (kind, arg_type)
    AggKernels {
        update,
        combine,
        finalize,
    }
}

/// Run `agg`'s update kernel over every row of `col`, with the state at the
/// start of each row (`off = 0`) — convenience for tests.
///
/// # Safety
/// As for [`UpdateFn`].
#[cfg(test)]
unsafe fn update_all(agg: &BoundAggregate, states: &[*mut u8], col: Option<&Vector>) {
    (agg.kernels.update)(states, 0, col);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{
        bind_aggregate, combine_state, finalize_state, update_state, AggregateSpec,
    };
    use rexa_exec::Value;

    /// Every bindable (spec, input type) combination with a state.
    fn all_stateful() -> Vec<(AggregateSpec, LogicalType)> {
        let mut out = Vec::new();
        for ty in [
            LogicalType::Int32,
            LogicalType::Int64,
            LogicalType::Float64,
            LogicalType::Date,
        ] {
            for spec in [
                AggregateSpec::count_star(),
                AggregateSpec::count(0),
                AggregateSpec::sum(0),
                AggregateSpec::min(0),
                AggregateSpec::max(0),
                AggregateSpec::avg(0),
                AggregateSpec::var_samp(0),
                AggregateSpec::stddev_samp(0),
            ] {
                if bind_aggregate(spec, &[ty]).is_ok() {
                    out.push((spec, ty));
                }
            }
        }
        out
    }

    /// A deterministic input column with NULLs, duplicates, negatives, and
    /// (for floats) NaN and -0.0.
    fn test_column(ty: LogicalType, rows: usize) -> Vector {
        let vals: Vec<Value> = (0..rows)
            .map(|i| {
                if i % 5 == 3 {
                    return Value::Null;
                }
                let v = ((i as i64 * 37) % 23) - 11;
                match ty {
                    LogicalType::Int32 => Value::Int32(v as i32),
                    LogicalType::Int64 => Value::Int64(v),
                    LogicalType::Date => Value::Date(v as i32),
                    LogicalType::Float64 => {
                        if i % 11 == 7 {
                            Value::Float64(f64::NAN)
                        } else if i % 13 == 1 {
                            Value::Float64(-0.0)
                        } else {
                            Value::Float64(v as f64 / 3.0)
                        }
                    }
                    LogicalType::Varchar => unreachable!(),
                }
            })
            .collect();
        Vector::from_values(ty, &vals).unwrap()
    }

    fn bits(v: &Value) -> u64 {
        match v {
            Value::Float64(f) => f.to_bits(),
            Value::Int64(i) => *i as u64,
            Value::Int32(i) | Value::Date(i) => *i as u64,
            Value::Null => u64::MAX - 1,
            other => panic!("unexpected value {other:?}"),
        }
    }

    /// Update / combine / finalize through the kernels must be bit-identical
    /// to the scalar oracle for every aggregate, with rows fanned out over
    /// several states in both paths.
    #[test]
    fn kernels_match_scalar_oracle_bitwise() {
        const ROWS: usize = 257;
        const GROUPS: usize = 7;
        for (spec, ty) in all_stateful() {
            let agg = bind_aggregate(spec, &[ty]).unwrap();
            let col = test_column(ty, ROWS);
            let arg = if spec.arg.is_some() { Some(&col) } else { None };

            // Scalar oracle: per-row updates into GROUPS states.
            let mut oracle = vec![vec![0u8; agg.state_size.max(1)]; GROUPS];
            unsafe {
                for row in 0..ROWS {
                    update_state(&agg, oracle[row % GROUPS].as_mut_ptr(), arg, row);
                }
            }

            // Kernel path: one call with the same row -> state fan-out.
            let mut vec_states = vec![vec![0u8; agg.state_size.max(1)]; GROUPS];
            unsafe {
                let ptrs: Vec<*mut u8> = (0..ROWS)
                    .map(|row| vec_states[row % GROUPS].as_mut_ptr())
                    .collect();
                update_all(&agg, &ptrs, arg);
            }
            assert_eq!(oracle, vec_states, "update diverged: {spec:?} over {ty}");

            // Combine all states down pairwise, both paths.
            unsafe {
                let dst = vec_states[0].as_mut_ptr();
                let pairs: Vec<(*const u8, *mut u8)> =
                    (1..GROUPS).map(|g| (vec_states[g].as_ptr(), dst)).collect();
                (agg.kernels.combine)(&pairs);
                for g in 1..GROUPS {
                    let src = oracle[g].as_ptr();
                    combine_state(&agg, src, oracle[0].as_mut_ptr());
                }
            }
            assert_eq!(
                oracle[0], vec_states[0],
                "combine diverged: {spec:?} over {ty}"
            );

            // Finalize every state, kernel vs oracle, bitwise.
            unsafe {
                let ptrs: Vec<*const u8> = vec_states.iter().map(|s| s.as_ptr()).collect();
                let out = (agg.kernels.finalize)(&ptrs);
                assert_eq!(out.len(), GROUPS);
                assert_eq!(out.logical_type(), agg.output_type, "{spec:?} over {ty}");
                for (g, state) in oracle.iter().enumerate().take(GROUPS) {
                    let expect = finalize_state(&agg, state.as_ptr());
                    let got = out.value(g);
                    assert_eq!(
                        bits(&expect),
                        bits(&got),
                        "finalize diverged: {spec:?} over {ty}, state {g}: {expect:?} vs {got:?}"
                    );
                }
            }
        }
    }

    /// An all-NULL input column must leave states untouched on both paths
    /// and finalize to the same (often NULL) outputs.
    #[test]
    fn kernels_match_oracle_on_all_null_input() {
        for (spec, ty) in all_stateful() {
            if spec.arg.is_none() {
                continue;
            }
            let agg = bind_aggregate(spec, &[ty]).unwrap();
            let col = Vector::from_values(ty, &vec![Value::Null; 9]).unwrap();
            let mut oracle = vec![0u8; agg.state_size.max(1)];
            let mut state = vec![0u8; agg.state_size.max(1)];
            unsafe {
                for row in 0..9 {
                    update_state(&agg, oracle.as_mut_ptr(), Some(&col), row);
                }
                let ptrs: Vec<*mut u8> = (0..9).map(|_| state.as_mut_ptr()).collect();
                update_all(&agg, &ptrs, Some(&col));
                assert_eq!(oracle, state, "{spec:?} over {ty}");
                let out = (agg.kernels.finalize)(&[state.as_ptr()]);
                let expect = finalize_state(&agg, oracle.as_ptr());
                assert_eq!(
                    bits(&expect),
                    bits(&out.value(0)),
                    "{spec:?} over {ty}: {expect:?} vs {:?}",
                    out.value(0)
                );
            }
        }
    }

    /// Binding the same aggregate twice yields equal `BoundAggregate`s
    /// (kernel resolution is a pure function of the binding, so equality
    /// deliberately ignores the function pointers).
    #[test]
    fn resolution_is_deterministic() {
        for (spec, ty) in all_stateful() {
            let a = bind_aggregate(spec, &[ty]).unwrap();
            let b = bind_aggregate(spec, &[ty]).unwrap();
            assert_eq!(a, b, "{spec:?} over {ty}");
        }
    }
}
