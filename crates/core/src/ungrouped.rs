//! Ungrouped (and by extension low-cardinality) aggregation — the easy case
//! the paper describes first (Section V, "Low Cardinality Aggregation"):
//! thread-local pre-aggregation reduces each worker's input to a single
//! state vector; combining one row per thread afterwards costs nothing, so
//! a single thread does it. Memory use is constant: this path never spills.

use crate::function::{
    bind_aggregate, combine_state, finalize_state, update_state, AggKind, AggregateSpec,
    BoundAggregate,
};
use parking_lot::Mutex;
use rexa_exec::pipeline::{ChunkSource, LocalSink, ParallelSink, Pipeline};
use rexa_exec::{DataChunk, Error, LogicalType, Result, Value};

struct Bound {
    aggs: Vec<BoundAggregate>,
    offsets: Vec<usize>,
    states_size: usize,
    any_count: usize,
}

/// One thread's accumulated state.
struct ThreadState {
    states: Box<[u8]>,
    any: Box<[Option<Value>]>,
    saw_rows: bool,
}

impl ThreadState {
    fn new(bound: &Bound) -> Self {
        ThreadState {
            states: vec![0u8; bound.states_size.max(1)].into_boxed_slice(),
            any: vec![None; bound.any_count].into_boxed_slice(),
            saw_rows: false,
        }
    }
}

struct UngroupedSink<'a> {
    bound: &'a Bound,
    merged: Mutex<ThreadState>,
}

struct LocalUngrouped<'a> {
    sink: &'a UngroupedSink<'a>,
    state: ThreadState,
}

impl ParallelSink for UngroupedSink<'_> {
    fn local(&self) -> Result<Box<dyn LocalSink + '_>> {
        Ok(Box::new(LocalUngrouped {
            sink: self,
            state: ThreadState::new(self.bound),
        }))
    }
}

impl LocalSink for LocalUngrouped<'_> {
    fn sink(&mut self, chunk: &DataChunk) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        self.state.saw_rows = true;
        let mut any_idx = 0usize;
        for (k, agg) in self.sink.bound.aggs.iter().enumerate() {
            if agg.spec.kind == AggKind::AnyValue {
                let slot = &mut self.state.any[any_idx];
                any_idx += 1;
                if slot.is_none() {
                    *slot = Some(chunk.column(agg.spec.arg.unwrap()).value(0));
                }
                continue;
            }
            let arg = agg.spec.arg.map(|c| chunk.column(c));
            let off = self.sink.bound.offsets[k];
            for i in 0..chunk.len() {
                // SAFETY: states sized at bind time; offsets in range.
                unsafe { update_state(agg, self.state.states.as_mut_ptr().add(off), arg, i) };
            }
        }
        Ok(())
    }

    fn combine(self: Box<Self>) -> Result<()> {
        let mut merged = self.sink.merged.lock();
        if !self.state.saw_rows {
            return Ok(());
        }
        merged.saw_rows = true;
        let mut any_idx = 0usize;
        for (k, agg) in self.sink.bound.aggs.iter().enumerate() {
            if agg.spec.kind == AggKind::AnyValue {
                if merged.any[any_idx].is_none() {
                    merged.any[any_idx] = self.state.any[any_idx].clone();
                }
                any_idx += 1;
                continue;
            }
            let off = self.sink.bound.offsets[k];
            // SAFETY: both state vectors share the bound layout.
            unsafe {
                combine_state(
                    agg,
                    self.state.states.as_ptr().add(off),
                    merged.states.as_mut_ptr().add(off),
                )
            };
        }
        Ok(())
    }
}

/// Compute aggregates over the whole input with no GROUP BY; returns exactly
/// one row of values, in aggregate order (`COUNT(*)` of an empty input is 0;
/// value aggregates of an empty input are NULL, per SQL).
pub fn ungrouped_aggregate(
    source: &dyn ChunkSource,
    input_schema: &[LogicalType],
    aggregates: &[AggregateSpec],
    threads: usize,
) -> Result<Vec<Value>> {
    if aggregates.is_empty() {
        return Err(Error::InvalidInput(
            "ungrouped aggregation needs at least one aggregate".into(),
        ));
    }
    let mut aggs = Vec::new();
    let mut offsets = Vec::new();
    let mut states_size = 0usize;
    let mut any_count = 0usize;
    for spec in aggregates {
        let b = bind_aggregate(*spec, input_schema)?;
        if b.spec.kind == AggKind::AnyValue {
            any_count += 1;
        }
        offsets.push(states_size);
        states_size += b.state_size;
        aggs.push(b);
    }
    let bound = Bound {
        aggs,
        offsets,
        states_size,
        any_count,
    };
    let sink = UngroupedSink {
        bound: &bound,
        merged: Mutex::new(ThreadState::new(&bound)),
    };
    Pipeline::run(source, &sink, threads)?;

    let merged = sink.merged.into_inner();
    let mut row = Vec::with_capacity(bound.aggs.len());
    let mut any_idx = 0usize;
    for (k, agg) in bound.aggs.iter().enumerate() {
        let v = match agg.spec.kind {
            AggKind::AnyValue => {
                let v = merged.any[any_idx].clone().unwrap_or(Value::Null);
                any_idx += 1;
                v
            }
            // SAFETY: state initialized at bind, updated under the layout.
            _ => unsafe { finalize_state(agg, merged.states.as_ptr().add(bound.offsets[k])) },
        };
        row.push(v);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexa_exec::pipeline::CollectionSource;
    use rexa_exec::{ChunkCollection, Vector, VECTOR_SIZE};

    fn input(rows: i64) -> ChunkCollection {
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Varchar]);
        let mut k = 0i64;
        while k < rows {
            let n = (rows - k).min(VECTOR_SIZE as i64);
            coll.push(DataChunk::new(vec![
                Vector::from_i64((k..k + n).collect()),
                Vector::from_strs((k..k + n).map(|i| format!("s{i}"))),
            ]))
            .unwrap();
            k += n;
        }
        coll
    }

    #[test]
    fn sums_counts_min_max_avg() {
        let coll = input(10_000);
        for threads in [1, 4] {
            let source = CollectionSource::new(&coll);
            let row = ungrouped_aggregate(
                &source,
                coll.types(),
                &[
                    AggregateSpec::count_star(),
                    AggregateSpec::sum(0),
                    AggregateSpec::min(0),
                    AggregateSpec::max(0),
                    AggregateSpec::avg(0),
                    AggregateSpec::any_value(1),
                ],
                threads,
            )
            .unwrap();
            assert_eq!(row[0], Value::Int64(10_000));
            assert_eq!(row[1], Value::Int64((0..10_000).sum()));
            assert_eq!(row[2], Value::Int64(0));
            assert_eq!(row[3], Value::Int64(9_999));
            assert_eq!(row[4], Value::Float64(9_999.0 / 2.0));
            assert!(matches!(row[5], Value::Varchar(_)), "threads={threads}");
        }
    }

    #[test]
    fn empty_input_gives_sql_semantics() {
        let coll = input(0);
        let source = CollectionSource::new(&coll);
        let row = ungrouped_aggregate(
            &source,
            coll.types(),
            &[
                AggregateSpec::count_star(),
                AggregateSpec::min(0),
                AggregateSpec::any_value(1),
            ],
            4,
        )
        .unwrap();
        assert_eq!(row[0], Value::Int64(0));
        assert_eq!(row[1], Value::Null);
        assert_eq!(row[2], Value::Null);
    }

    #[test]
    fn no_aggregates_is_an_error() {
        let coll = input(5);
        let source = CollectionSource::new(&coll);
        assert!(ungrouped_aggregate(&source, coll.types(), &[], 2).is_err());
    }

    #[test]
    fn sum_is_thread_count_invariant() {
        let coll = input(50_000);
        let get = |threads| {
            let source = CollectionSource::new(&coll);
            ungrouped_aggregate(&source, coll.types(), &[AggregateSpec::sum(0)], threads).unwrap()
        };
        assert_eq!(get(1), get(2));
        assert_eq!(get(2), get(8));
    }
}
