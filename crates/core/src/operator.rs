//! The robust external hash aggregation operator (paper Section V).
//!
//! Phase 1 — **thread-local pre-aggregation**: each worker pulls morsels and
//! probes a small fixed-size salted linear-probing table. Found groups get
//! their aggregate states updated in place; new groups are materialized
//! *directly into radix partitions* using the spillable page layout (the
//! column-major → row-major conversion happens while partitioning, so tuples
//! are copied exactly once). When the table is two-thirds full it is
//! *reset*: only the entry array is cleared — tuples stay where they are —
//! and the partition pages are unpinned, making them evictable. The
//! operator never writes to storage itself; if memory runs short the buffer
//! manager spills individual unpinned pages. Phase 1 is therefore
//! **RAM-oblivious**: its behaviour does not depend on the memory limit
//! (only the small entry array must fit).
//!
//! Phase 2 — **partition-wise aggregation**: partitions are distributed over
//! threads. Each task pins one partition (over-partitioning keeps a
//! partition per thread within memory), triggers any pending pointer
//! recomputation, builds a resizably-sized salted table *by pointer
//! insertion over the already-materialized rows* (no copying), combines the
//! states of duplicate groups in place, and streams the surviving groups to
//! the consumer — after which the partition's pages are destroyed eagerly.

use crate::function::{
    bind_aggregate, combine_state, finalize_state, update_state, AggKind, AggregateSpec,
    BoundAggregate,
};
use crate::ht::{
    entry_ptr, is_pending, make_entry, make_pending, pending_ord, prefetch_read, salt_bits,
    SaltedHashTable, SharedGroupIndex,
};
use crate::instream::InStreamAgg;
use parking_lot::{Condvar, Mutex};
use rexa_buffer::{BufferManager, BufferStats};
use rexa_exec::pipeline::ChunkSource;
use rexa_exec::pool::ExecContext;
use rexa_exec::vector::VectorData;
use rexa_exec::{hashing, DataChunk, Error, LogicalType, Result, Vector, VECTOR_SIZE};
use rexa_layout::matcher::{
    adjacent_runs, key_prefix, prefix_is_exact, row_row_cmp, row_row_match, row_row_match_sel,
    rows_match, rows_match_sel,
};
use rexa_layout::{PartitionedTupleData, TupleDataCollection, TupleDataLayout};
use rexa_obs::span::{self, cat as span_cat};
use rexa_obs::{Phase, ProfileCollector, QueryProfile, SpanBuffer};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The query: which input columns to group by, and which aggregates to
/// compute over each group.
#[derive(Debug, Clone)]
pub struct HashAggregatePlan {
    /// Indices of the grouping columns in the input schema.
    pub group_cols: Vec<usize>,
    /// The aggregates, in output order.
    pub aggregates: Vec<AggregateSpec>,
}

/// Which implementation of the aggregation hot path to run.
///
/// Both modes produce bit-identical results at `threads: 1` (the vectorized
/// path preserves the scalar path's probe, update, and combine orders
/// exactly); with more threads, floating-point results may differ across
/// runs in *either* mode because partition combine order is scheduling-
/// dependent. `Scalar` is retained as the reference oracle for differential
/// tests and the baseline for `BENCH_agg.json` (see DESIGN.md S16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Selection-vector probing + monomorphized kernels (the default).
    #[default]
    Vectorized,
    /// The original row-at-a-time interpreted path.
    Scalar,
}

/// Whether the grouping keys arrive (mostly) sorted, which routes phase 1
/// through the in-stream aggregator (`crate::instream`): compare to the
/// previous key, accumulate, open a new group on key change — no hash
/// table and no per-row probe.
///
/// The in-stream path is correct on *any* input (keys that regress just
/// open another partial group for phase 2 to merge by key), so the hint is
/// about performance, never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortedInput {
    /// Sample key runs in each worker's first chunks and switch to the
    /// in-stream path when the input looks clustered (average run length
    /// of at least [`IN_STREAM_RUN_MIN`]).
    #[default]
    Detect,
    /// Assert sorted/clustered keys: in-stream from the first row. Plumbed
    /// from SQL scans over tables that declare a compatible sort order.
    Sorted,
    /// Never take the in-stream path.
    Unsorted,
}

/// How phase 2 aggregates one partition — chosen *per partition* at
/// runtime, recorded per partition in the profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase2Strategy {
    /// Merge sorted runs when the partition went external and its rows are
    /// fully covered by sorted runs; rebuild a hash table otherwise (an
    /// in-memory partition gains nothing from merging, and a coverage gap
    /// means some rows were never run-sorted).
    #[default]
    Adaptive,
    /// Always rebuild a hash table over the partition (the paper's
    /// phase 2).
    Hash,
    /// Sort every fragment's rows by key before its pins are released
    /// (making the spill write-out a *sorted run*) and stream-merge the
    /// runs in phase 2. Degrades to the hash path per partition when runs
    /// are unavailable or a spill fault was observed mid-run.
    SortedMerge,
}

/// How phase 1 organizes its hash table(s) across workers.
///
/// The paper's design is thread-local tables feeding radix partitions; the
/// "Global Hash Tables Strike Back!" analysis shows that at low group counts
/// one shared table wins, because per-worker duplication (and the merge work
/// it creates) dominates once the working set is cache-resident. `Adaptive`
/// samples the first morsels and picks per run.
///
/// The shared strategy is only ever active at `threads > 1` — single-thread
/// runs always take the thread-local path, so the scalar/vectorized
/// bit-identity contract of [`KernelMode`] is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase1Strategy {
    /// Decide at runtime from observed group density in the first morsels.
    #[default]
    Adaptive,
    /// Always thread-local salted tables + radix partitions (the paper).
    ThreadLocal,
    /// Always one shared concurrent group index.
    Shared,
}

/// Tuning knobs of the operator.
#[derive(Debug, Clone)]
pub struct AggregateConfig {
    /// Worker threads for both phases.
    pub threads: usize,
    /// Radix partition bits; `None` derives them from the thread count
    /// (over-partitioning: ≥ 4 partitions per thread).
    pub radix_bits: Option<u32>,
    /// Entries in the phase-1 thread-local table. The paper's value is
    /// 2^17 = 131,072; must be at least 4 × the vector size so a whole chunk
    /// fits below the reset threshold.
    pub ht_capacity: usize,
    /// Rows per output chunk.
    pub output_chunk_size: usize,
    /// Reset the phase-1 table when it is this full, in percent. The paper's
    /// experimentally determined value is two-thirds (66); exposed for the
    /// reset-threshold ablation benchmark.
    pub reset_fill_percent: u32,
    /// Hot-path implementation (vectorized by default; scalar oracle for
    /// differential testing and benchmarking).
    pub kernel_mode: KernelMode,
    /// Partitions beyond the merge frontier whose spilled pages phase 2
    /// prefetches in the background (0 disables read-ahead). Only effective
    /// when the buffer manager runs background I/O workers
    /// (`BufferManagerConfig::io_writers`); a synchronous manager ignores
    /// prefetch requests.
    pub readahead_depth: usize,
    /// Phase-1 table organization (see [`Phase1Strategy`]). The decision a
    /// run actually took is recorded in the profile's `strategy` field.
    pub phase1_strategy: Phase1Strategy,
    /// Sorted-input handling for the in-stream fast path (see
    /// [`SortedInput`]).
    pub sorted_input: SortedInput,
    /// Phase-2 per-partition strategy (see [`Phase2Strategy`]); decisions
    /// are recorded in the profile's per-partition strategy list.
    pub phase2_strategy: Phase2Strategy,
}

impl Default for AggregateConfig {
    fn default() -> Self {
        AggregateConfig {
            threads: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(16),
            radix_bits: None,
            ht_capacity: 1 << 17,
            output_chunk_size: VECTOR_SIZE,
            reset_fill_percent: 66,
            kernel_mode: KernelMode::Vectorized,
            readahead_depth: 2,
            phase1_strategy: Phase1Strategy::Adaptive,
            sorted_input: SortedInput::Detect,
            phase2_strategy: Phase2Strategy::Adaptive,
        }
    }
}

impl AggregateConfig {
    /// A config with the given thread count, defaults elsewhere.
    pub fn with_threads(threads: usize) -> Self {
        AggregateConfig {
            threads,
            ..Default::default()
        }
    }

    /// The radix bits this config resolves to (explicit, or derived from the
    /// thread count). Public so footprint estimators (the query service) can
    /// see the same partition count the operator will use.
    pub fn effective_radix_bits(&self) -> u32 {
        self.radix_bits.unwrap_or_else(|| {
            let parts = (self.threads * 4).next_power_of_two();
            (parts.trailing_zeros()).clamp(3, 8)
        })
    }
}

/// What one run did — phase timings, spill activity, reset counts. The
/// observability the paper's Figures 4–6 are built from.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Input rows consumed.
    pub rows_in: usize,
    /// Groups produced.
    pub groups: usize,
    /// Radix partitions used.
    pub partitions: usize,
    /// Hash-table resets across all threads (phase 1).
    pub resets: u64,
    /// Wall time of phase 1 (thread-local pre-aggregation).
    pub phase1: Duration,
    /// Wall time of phase 2 (partition-wise aggregation).
    pub phase2: Duration,
    /// Buffer-manager activity during the run (counters are deltas).
    pub buffer: BufferStats,
    /// The full execution profile — per-phase wall/busy/units, spill I/O,
    /// partitions gone external. [`QueryProfile::render`] turns it into an
    /// EXPLAIN-ANALYZE-style report.
    pub profile: QueryProfile,
}

/// Where each output aggregate comes from.
#[derive(Debug, Clone, Copy)]
enum OutSlot {
    /// A write-once payload column (ANY_VALUE), by payload index.
    Payload(usize),
    /// A real aggregate state, by state index.
    State(usize),
}

/// The validated, layout-resolved plan.
struct BoundPlan {
    group_cols: Vec<usize>,
    key_cols: usize,
    /// Input column index for each payload (ANY_VALUE) column.
    payload_args: Vec<usize>,
    /// Real aggregates, in state order.
    state_aggs: Vec<BoundAggregate>,
    out_slots: Vec<OutSlot>,
    layout: Arc<TupleDataLayout>,
    output_types: Vec<LogicalType>,
}

fn bind_plan(plan: &HashAggregatePlan, schema: &[LogicalType]) -> Result<BoundPlan> {
    if plan.group_cols.is_empty() {
        return Err(Error::Unsupported(
            "no GROUP BY columns: use ungrouped_aggregate for global aggregates".into(),
        ));
    }
    for &c in &plan.group_cols {
        if c >= schema.len() {
            return Err(Error::InvalidInput(format!(
                "group column {c} out of range ({} input columns)",
                schema.len()
            )));
        }
    }
    let group_types: Vec<LogicalType> = plan.group_cols.iter().map(|&c| schema[c]).collect();
    let mut payload_args = Vec::new();
    let mut payload_types = Vec::new();
    let mut state_aggs = Vec::new();
    let mut out_slots = Vec::new();
    let mut output_types: Vec<LogicalType> = group_types.clone();
    for spec in &plan.aggregates {
        let bound = bind_aggregate(*spec, schema)?;
        output_types.push(bound.output_type);
        if bound.spec.kind == AggKind::AnyValue {
            out_slots.push(OutSlot::Payload(payload_args.len()));
            payload_args.push(bound.spec.arg.unwrap());
            payload_types.push(bound.output_type);
        } else {
            out_slots.push(OutSlot::State(state_aggs.len()));
            state_aggs.push(bound);
        }
    }
    let mut layout_types = group_types;
    layout_types.extend(payload_types);
    let layout = Arc::new(TupleDataLayout::new(
        layout_types,
        state_aggs.iter().map(|a| a.state_size).collect(),
    ));
    Ok(BoundPlan {
        key_cols: plan.group_cols.len(),
        group_cols: plan.group_cols.clone(),
        payload_args,
        state_aggs,
        out_slots,
        layout,
        output_types,
    })
}

/// Are input rows `a` and `b` equal on `cols` (NULL == NULL)? Used to detect
/// duplicate new groups within one chunk.
fn input_rows_equal(cols: &[&Vector], a: usize, b: usize) -> bool {
    for col in cols {
        let va = col.validity().is_valid(a);
        let vb = col.validity().is_valid(b);
        if va != vb {
            return false;
        }
        if !va {
            continue;
        }
        let eq = match col.data() {
            VectorData::I32(v) => v[a] == v[b],
            VectorData::I64(v) => v[a] == v[b],
            VectorData::F64(v) => {
                // Bitwise (NaN groups with NaN), after key normalization so
                // -0.0 and 0.0 land in one group like they do in the hash.
                hashing::normalize_f64_key(v[a]).to_bits()
                    == hashing::normalize_f64_key(v[b]).to_bits()
            }
            VectorData::Str(v) => v.get(a) == v.get(b),
        };
        if !eq {
            return false;
        }
    }
    true
}

/// Adaptive-decision states (see [`Phase1Strategy`]).
const DECIDE_PENDING: u8 = 0;
const DECIDE_LOCAL: u8 = 1;
const DECIDE_SHARED: u8 = 2;

/// Rows one worker must observe before it may resolve the adaptive
/// decision (a few probe chunks: enough to see the group density).
const STRATEGY_SAMPLE_ROWS: usize = 4096;
/// Adaptive: most distinct groups a sampling worker may have seen for the
/// shared strategy to be worthwhile.
const SHARED_CARD_MAX: usize = 4096;
/// Adaptive: minimum observed rows-per-group density for the shared
/// strategy (sparser than this and the input may just be short).
const SHARED_DENSITY_MIN: usize = 8;
/// Adaptive: shared-index headroom multiplier over the sampled group count
/// (a mild underestimate must not immediately overflow; a large one
/// overflows and falls back, which is safe — overflow rows merge by key).
const SHARED_HEADROOM: usize = 4;
/// [`SortedInput::Detect`]: minimum average run length (sampled rows per
/// adjacent-equal-key run) for a worker to switch to the in-stream path.
/// Below this, per-run materialization appends too many partial groups —
/// phase 2 then combines several partials per group, and the per-run
/// bookkeeping eats the probe savings. Measured break-even on thin integer
/// keys sits near run length 13 (`agg_hotpath`'s `clustered` workload), so
/// the detector demands clear headroom before abandoning the hash table.
pub const IN_STREAM_RUN_MIN: usize = 16;

/// Phase-1 state of the shared ("global table") strategy.
struct SharedPhase1 {
    /// The concurrent group index: lock-free probes, serialized inserts.
    index: SharedGroupIndex,
    /// Canonical key rows, radix-partitioned like every other fragment.
    /// The mutex doubles as the index's insert lock. Pages stay pinned —
    /// workers key-compare against them lock-free — until the last worker
    /// to finish probing absorbs the set into its own fragments.
    canon: Mutex<PartitionedTupleData>,
}

/// Shared sink state for phase 1.
struct AggSink<'a> {
    plan: &'a BoundPlan,
    mgr: &'a Arc<BufferManager>,
    config: &'a AggregateConfig,
    ctx: &'a ExecContext,
    radix_bits: u32,
    rows_in: AtomicUsize,
    resets: AtomicU64,
    /// The phase-1 strategy this run resolved to (`DECIDE_*`).
    decision: AtomicU8,
    /// Installed shared-strategy state; `Some` exactly when the decision is
    /// [`DECIDE_SHARED`]. Doubles as the decision lock.
    shared_p1: Mutex<Option<Arc<SharedPhase1>>>,
}

impl AggSink<'_> {
    /// Create the thread-local state for one worker.
    fn local(&self) -> Result<LocalAgg<'_>> {
        // A forced SortedMerge sorts run tails regardless of the phase-1
        // path; Adaptive only pays for run-sorting once the in-stream path
        // engages (sorted input is what makes runs long and cheap). String
        // layouts never run-sort — permuting rows would break heap
        // pointers.
        let heapless = self.plan.layout.var_cols().is_empty();
        let mut local = LocalAgg {
            sink: self,
            ht: SaltedHashTable::with_capacity_ctx(self.mgr, self.config.ht_capacity, self.ctx)?,
            data: PartitionedTupleData::new(self.mgr, &self.plan.layout, self.radix_bits),
            targets: Vec::new(),
            hashes: Vec::new(),
            new_sel: Vec::new(),
            pending_slots: Vec::new(),
            scratch: ProbeScratch::default(),
            shared_mode: None,
            instream: None,
            detect_rows: 0,
            detect_runs: 0,
            run_sort: heapless && self.config.phase2_strategy == Phase2Strategy::SortedMerge,
            sort_busy: Duration::ZERO,
            runs_sealed: 0,
            rows_in: 0,
            resets: 0,
        };
        if self.config.sorted_input == SortedInput::Sorted {
            local.enable_instream();
        }
        Ok(local)
    }

    /// Install the shared-strategy state (index + canonical partition set)
    /// and publish the decision. No-op if a decision was already made.
    fn install_shared(&self, max_groups: usize) -> Result<()> {
        let mut slot = self.shared_p1.lock();
        if self.decision.load(Ordering::Acquire) != DECIDE_PENDING {
            return Ok(());
        }
        let index = SharedGroupIndex::with_capacity_ctx(self.mgr, max_groups, self.ctx)?;
        let canon = PartitionedTupleData::new(self.mgr, &self.plan.layout, self.radix_bits);
        *slot = Some(Arc::new(SharedPhase1 {
            index,
            canon: Mutex::new(canon),
        }));
        self.decision.store(DECIDE_SHARED, Ordering::Release);
        if let Some(p) = self.ctx.profile() {
            p.set_strategy("shared");
        }
        Ok(())
    }

    /// Publish a thread-local decision (forced, single-threaded, or the
    /// adaptive outcome). No-op if a decision was already made.
    fn settle_local(&self) {
        let _slot = self.shared_p1.lock();
        if self.decision.load(Ordering::Acquire) == DECIDE_PENDING {
            self.decision.store(DECIDE_LOCAL, Ordering::Release);
            if let Some(p) = self.ctx.profile() {
                p.set_strategy("thread_local");
            }
        }
    }

    /// Resolve the adaptive decision from one worker's sample; the first
    /// decider wins. The index is sized from the *observed* cardinality
    /// (with headroom), not a fixed worst case — under a tight memory
    /// limit a constant-size index would starve the other workers. A
    /// shared verdict falls back to thread-local when the index cannot be
    /// allocated (memory pressure is exactly when the extra allocation is
    /// wrong anyway).
    fn decide(&self, want_shared: bool, groups_seen: usize) -> u8 {
        let cur = self.decision.load(Ordering::Acquire);
        if cur != DECIDE_PENDING {
            return cur;
        }
        let max_groups = (groups_seen * SHARED_HEADROOM).max(1024);
        if !want_shared || self.install_shared(max_groups).is_err() {
            self.settle_local();
        }
        self.decision.load(Ordering::Acquire)
    }
}

/// Reusable per-chunk scratch of a thread-local sink. Everything in here is
/// dead between `sink` calls — the raw pointers are only meaningful while
/// the chunk that produced them is being processed.
#[derive(Default)]
struct ProbeScratch {
    /// Row pointers of the groups materialized from the current chunk.
    new_ptrs: Vec<*mut u8>,
    /// Current probe slot of each input row.
    slots: Vec<usize>,
    /// Rows still unresolved, ascending; shrinks every probe round.
    remaining: Vec<u32>,
    /// Next round's `remaining` (built by an ordered merge).
    next_remaining: Vec<u32>,
    /// Rows that advanced in stage 1 (empty/salt/pending handling).
    stage1_fail: Vec<u32>,
    /// Salt-matched candidates of the current round, parallel arrays.
    cand_rows: Vec<u32>,
    cand_ptrs: Vec<*const u8>,
    /// `rows_match_sel` outputs (positions into the candidate arrays).
    matched: Vec<u32>,
    no_match: Vec<u32>,
    /// Resolved row pointer per input row — written directly by the probe
    /// (rows of new groups hold a [`PENDING_PTR_TAG`]ged ordinal until the
    /// chunk materializes); the update kernels consume it as-is.
    row_ptrs: Vec<*mut u8>,
    /// Rows whose `row_ptrs` entry is a tagged ordinal to patch.
    pending_rows: Vec<u32>,
    /// Sortedness-detector scratch: run starts of the sampled chunk.
    run_starts: Vec<u32>,
    /// Reused `&Vector` buffers (lifetimes are per-chunk; the vectors are
    /// stored erased and only ever transmuted while *empty*).
    group_views: Vec<&'static Vector>,
    layout_views: Vec<&'static Vector>,
}

// SAFETY: the raw pointers never outlive one `sink` call and are never
// shared across threads — the scratch exists purely so a thread-local sink
// (which must be `Send` to move onto its worker) can reuse allocations.
unsafe impl Send for ProbeScratch {}

/// High-bit tag marking a `row_ptrs` slot that still holds a new-group
/// ordinal instead of a row pointer (real pointers fit in 48 bits).
const PENDING_PTR_TAG: u64 = 1 << 63;

impl ProbeScratch {
    /// Borrow the erased view buffer for this chunk's lifetime. Only sound
    /// because the buffer is empty at hand-out and cleared at hand-back.
    fn take_views<'v>(views: &mut Vec<&'static Vector>) -> Vec<&'v Vector> {
        debug_assert!(views.is_empty());
        // SAFETY: an empty Vec owns no references, only an allocation;
        // shortening the reference lifetime of its element type is sound.
        unsafe {
            std::mem::transmute::<Vec<&'static Vector>, Vec<&'v Vector>>(std::mem::take(views))
        }
    }

    /// Return a view buffer taken with [`Self::take_views`].
    fn put_views(views: &mut Vec<&'static Vector>, mut buf: Vec<&Vector>) {
        buf.clear();
        // SAFETY: as above — the Vec is empty.
        *views = unsafe { std::mem::transmute::<Vec<&Vector>, Vec<&'static Vector>>(buf) };
    }
}

/// A worker's view of the shared strategy: a private accumulator row per
/// group ordinal, so aggregate updates never need atomics. The claiming
/// worker's accumulator *is* the canonical row; every other worker
/// materializes its own on first contact, and phase 2 merges them by key
/// like any other duplicates (all rows of a group share a hash, so they
/// always land in the same radix partition).
struct SharedLocal {
    sp: Arc<SharedPhase1>,
    /// Ordinal → this worker's accumulator row (null until first seen).
    local_ords: Vec<*mut u8>,
    /// Scratch: ordinals whose accumulator row materializes this chunk.
    new_ords: Vec<usize>,
}

// SAFETY: the row pointers target pages owned by this worker's partitioned
// data (pinned until its flush — the shared path never resets) or canonical
// pages kept pinned through `sp`; only this worker dereferences them.
unsafe impl Send for SharedLocal {}

/// Thread-local phase-1 state.
struct LocalAgg<'a> {
    sink: &'a AggSink<'a>,
    ht: SaltedHashTable,
    data: PartitionedTupleData,
    /// Per-row resolution of the current chunk: an entry-encoded value
    /// (pending flag + ordinal, or a row pointer) on the thread-local
    /// path; a group ordinal (`u64::MAX` = none) on the shared path.
    targets: Vec<u64>,
    hashes: Vec<u64>,
    new_sel: Vec<u32>,
    pending_slots: Vec<usize>,
    scratch: ProbeScratch,
    /// `Some` once this worker switched to the shared strategy.
    shared_mode: Option<SharedLocal>,
    /// `Some` once this worker switched to the in-stream fast path (forced
    /// by [`SortedInput::Sorted`] or chosen by the sortedness detector).
    instream: Option<InStreamAgg>,
    /// Sortedness detector sample ([`SortedInput::Detect`]).
    detect_rows: usize,
    detect_runs: usize,
    /// Sort fragment tails into runs at every pin release (the sorted-run
    /// spill path; requires a heapless layout).
    run_sort: bool,
    sort_busy: Duration,
    runs_sealed: u64,
    rows_in: usize,
    resets: u64,
}

impl LocalAgg<'_> {
    /// The reset threshold: two-thirds full by default (experimentally
    /// determined in the paper; configurable for the ablation bench).
    fn should_reset(&self) -> bool {
        self.ht.count() * 100 >= self.ht.capacity() * self.sink.config.reset_fill_percent as usize
    }

    /// Row-at-a-time probe (the reference oracle, `KernelMode::Scalar`):
    /// resolve each input row fully before moving to the next.
    fn probe_scalar(&mut self, group_views: &[&Vector], n: usize) {
        let plan = self.sink.plan;
        for i in 0..n {
            let h = self.hashes[i];
            let mut slot = self.ht.slot(h);
            loop {
                let e = self.ht.entry(slot);
                if e == 0 {
                    let ord = self.new_sel.len();
                    self.ht.set_entry(slot, make_pending(h, ord), true);
                    self.pending_slots.push(slot);
                    self.new_sel.push(i as u32);
                    self.targets.push(make_pending(h, ord));
                    break;
                }
                if salt_bits(e) == salt_bits(h) {
                    if is_pending(e) {
                        // A group discovered earlier in this same chunk.
                        let ord = pending_ord(e);
                        let j = self.new_sel[ord] as usize;
                        if input_rows_equal(group_views, i, j) {
                            self.targets.push(e);
                            break;
                        }
                    } else {
                        let row = entry_ptr(e);
                        // SAFETY: rows referenced by live entries are on
                        // pages pinned since the last reset.
                        if unsafe { rows_match(&plan.layout, group_views, i, row) } {
                            self.targets.push(e);
                            break;
                        }
                    }
                }
                slot = self.ht.next_slot(slot);
            }
        }
    }

    /// Selection-vector probe: all rows advance through the table in
    /// lockstep rounds, and the expensive full-key comparison of the
    /// salt-matched candidates is batched by column ([`rows_match_sel`]).
    /// Resolves every row directly into `scratch.row_ptrs` — rows claiming
    /// a new group hold a [`PENDING_PTR_TAG`]ged ordinal (recorded in
    /// `scratch.pending_rows`) until the chunk's new groups materialize.
    ///
    /// The `remaining` selection is kept in ascending row order across
    /// rounds (ordered merge of the stage-1 advances and the key-compare
    /// failures), which makes the claim order of new groups — and therefore
    /// every downstream combine order — identical to [`Self::probe_scalar`]:
    /// rows probing the same slot sequence stay sorted, so the earliest
    /// occurrence of a key always claims its entry first, exactly like the
    /// scalar loop that resolves row `i` before ever looking at row `i + 1`.
    fn probe_vectorized(&mut self, group_views: &[&Vector], n: usize) {
        let plan = self.sink.plan;
        let s = &mut self.scratch;
        s.slots.clear();
        s.slots
            .extend(self.hashes[..n].iter().map(|&h| self.ht.slot(h)));
        // Every row's slot is overwritten exactly once by the probe below,
        // so steady-state chunks reuse the buffer without re-zeroing it;
        // only growth writes fresh nulls.
        if s.row_ptrs.len() < n {
            s.row_ptrs.resize(n, std::ptr::null_mut());
        }
        s.pending_rows.clear();
        s.remaining.clear();
        s.remaining.extend(0..n as u32);
        // The dominant probe shape — a single NULL-free integer key — gets a
        // fused loop that folds the key comparison into stage 1 and skips
        // the candidate buffering entirely.
        if let [col] = group_views {
            if let VectorData::I64(keys) = col.data() {
                if col.validity().no_nulls() {
                    return self.probe_rounds_i64(keys);
                }
            }
        }
        while !s.remaining.is_empty() {
            s.stage1_fail.clear();
            s.cand_rows.clear();
            s.cand_ptrs.clear();
            // Stage 1: classify each unresolved row by its current entry.
            // Cheap outcomes (empty claim, salt reject, in-chunk pending)
            // are handled inline; salt-matched real entries become
            // candidates for the batched key comparison. Entry loads are
            // prefetched a fixed distance ahead: the table exceeds L1, and
            // overlapping the random loads of a whole round is exactly the
            // memory-level parallelism the row-at-a-time loop cannot get.
            const PREFETCH_DIST: usize = 16;
            for (idx, &r) in s.remaining.iter().enumerate() {
                if let Some(&ahead) = s.remaining.get(idx + PREFETCH_DIST) {
                    self.ht.prefetch(s.slots[ahead as usize]);
                }
                let i = r as usize;
                let h = self.hashes[i];
                let slot = s.slots[i];
                let e = self.ht.entry(slot);
                if e == 0 {
                    let ord = self.new_sel.len();
                    self.ht.set_entry(slot, make_pending(h, ord), true);
                    self.pending_slots.push(slot);
                    self.new_sel.push(r);
                    s.row_ptrs[i] = (PENDING_PTR_TAG | ord as u64) as *mut u8;
                    s.pending_rows.push(r);
                    continue;
                }
                if salt_bits(e) == salt_bits(h) {
                    if is_pending(e) {
                        // Pending entries are rare (one per new group per
                        // chunk) and need an input-vs-input comparison the
                        // batched matcher cannot do — compare inline.
                        let ord = pending_ord(e);
                        let j = self.new_sel[ord] as usize;
                        if input_rows_equal(group_views, i, j) {
                            s.row_ptrs[i] = (PENDING_PTR_TAG | ord as u64) as *mut u8;
                            s.pending_rows.push(r);
                            continue;
                        }
                    } else {
                        let row = entry_ptr(e);
                        // Warm the row's key bytes for the stage-2 compare
                        // (and the in-line aggregate states it shares a
                        // cache line with on thin layouts).
                        prefetch_read(row);
                        s.cand_rows.push(r);
                        s.cand_ptrs.push(row);
                        continue;
                    }
                }
                s.slots[i] = self.ht.next_slot(slot);
                s.stage1_fail.push(r);
            }
            // Stage 2: one type dispatch per key column for all candidates.
            // SAFETY: candidate pointers come from live entries, whose rows
            // are on pages pinned since the last reset.
            unsafe {
                rows_match_sel(
                    &plan.layout,
                    group_views,
                    &s.cand_rows,
                    &s.cand_ptrs,
                    &mut s.matched,
                    &mut s.no_match,
                );
            }
            for &p in &s.matched {
                let i = s.cand_rows[p as usize] as usize;
                s.row_ptrs[i] = s.cand_ptrs[p as usize] as *mut u8;
            }
            for &p in &s.no_match {
                let i = s.cand_rows[p as usize] as usize;
                s.slots[i] = self.ht.next_slot(s.slots[i]);
            }
            // Merge the two (each ascending) failure lists back into one
            // ascending selection for the next round.
            s.next_remaining.clear();
            let (a, b) = (&s.stage1_fail, &s.no_match);
            let (mut ai, mut bi) = (0, 0);
            while ai < a.len() && bi < b.len() {
                let br = s.cand_rows[b[bi] as usize];
                if a[ai] < br {
                    s.next_remaining.push(a[ai]);
                    ai += 1;
                } else {
                    s.next_remaining.push(br);
                    bi += 1;
                }
            }
            s.next_remaining.extend_from_slice(&a[ai..]);
            s.next_remaining
                .extend(b[bi..].iter().map(|&p| s.cand_rows[p as usize]));
            std::mem::swap(&mut s.remaining, &mut s.next_remaining);
        }
    }

    /// [`Self::probe_vectorized`]'s round loop, fused for a single NULL-free
    /// `i64` key column: the key comparison is one unaligned load, so it
    /// runs inline in stage 1 instead of going through the candidate
    /// buffers and the by-column matcher — no per-round compare pass, no
    /// merge (the single failure list is already ascending, preserving the
    /// claim-order equivalence with the scalar oracle).
    ///
    /// Expects the common probe state (`slots`, `row_ptrs`, `pending_rows`,
    /// `remaining`) initialized by the caller. A materialized row can still
    /// hold a NULL key (created from an earlier chunk *with* NULLs), so the
    /// row side checks validity; the input side is NULL-free by contract.
    fn probe_rounds_i64(&mut self, keys: &[i64]) {
        let layout = &self.sink.plan.layout;
        let key_off = layout.offset(0);
        let s = &mut self.scratch;
        while !s.remaining.is_empty() {
            s.stage1_fail.clear();
            const PREFETCH_DIST: usize = 16;
            for (idx, &r) in s.remaining.iter().enumerate() {
                if let Some(&ahead) = s.remaining.get(idx + PREFETCH_DIST) {
                    self.ht.prefetch(s.slots[ahead as usize]);
                }
                let i = r as usize;
                let h = self.hashes[i];
                let slot = s.slots[i];
                let e = self.ht.entry(slot);
                if e == 0 {
                    let ord = self.new_sel.len();
                    self.ht.set_entry(slot, make_pending(h, ord), true);
                    self.pending_slots.push(slot);
                    self.new_sel.push(r);
                    s.row_ptrs[i] = (PENDING_PTR_TAG | ord as u64) as *mut u8;
                    s.pending_rows.push(r);
                    continue;
                }
                if salt_bits(e) == salt_bits(h) {
                    if is_pending(e) {
                        let ord = pending_ord(e);
                        let j = self.new_sel[ord] as usize;
                        if keys[i] == keys[j] {
                            s.row_ptrs[i] = (PENDING_PTR_TAG | ord as u64) as *mut u8;
                            s.pending_rows.push(r);
                            continue;
                        }
                    } else {
                        let row = entry_ptr(e);
                        // SAFETY: live entry → its row is on a page pinned
                        // since the last reset; `key_off` is in-row.
                        let hit = unsafe {
                            layout.is_valid(row, 0)
                                && std::ptr::read_unaligned(row.add(key_off) as *const i64)
                                    == keys[i]
                        };
                        if hit {
                            s.row_ptrs[i] = row;
                            continue;
                        }
                    }
                }
                s.slots[i] = self.ht.next_slot(slot);
                s.stage1_fail.push(r);
            }
            std::mem::swap(&mut s.remaining, &mut s.stage1_fail);
        }
    }
}

impl LocalAgg<'_> {
    /// Consume one chunk (strategy-dispatched).
    fn sink(&mut self, chunk: &DataChunk) -> Result<()> {
        let plan = self.sink.plan;
        let n = chunk.len();
        if n == 0 {
            return Ok(());
        }
        self.check_strategy();
        let mut group_views = ProbeScratch::take_views(&mut self.scratch.group_views);
        group_views.extend(plan.group_cols.iter().map(|&c| chunk.column(c)));

        // Sortedness detector ([`SortedInput::Detect`]): sample the
        // adjacent-run density of the first chunks; when runs average
        // [`IN_STREAM_RUN_MIN`] rows or longer, switch this worker to the
        // in-stream path (the current chunk included). The sample is the
        // same size as the phase-1 strategy sample, and the detector fires
        // one chunk earlier, so a sorted dense input prefers in-stream over
        // the shared index.
        if self.instream.is_none()
            && self.shared_mode.is_none()
            && self.sink.config.sorted_input == SortedInput::Detect
            && self.detect_rows < STRATEGY_SAMPLE_ROWS
        {
            adjacent_runs(&group_views, n, &mut self.scratch.run_starts);
            self.detect_rows += n;
            self.detect_runs += self.scratch.run_starts.len();
            if self.detect_rows >= STRATEGY_SAMPLE_ROWS
                && self.detect_runs * IN_STREAM_RUN_MIN <= self.detect_rows
            {
                self.enable_instream();
            }
        }

        let res = if self.instream.is_some() {
            self.sink_instream(chunk, &group_views, n)
        } else {
            // Hash the group columns once; the hash is materialized in the
            // row and reused by phase 2. (The in-stream path hashes inside
            // `sink_chunk` — only run starts on the common key shape.)
            self.hashes.clear();
            self.hashes.resize(n, 0);
            for (ci, col) in group_views.iter().enumerate() {
                hashing::hash_vector(col, &mut self.hashes, ci > 0);
            }
            if self.shared_mode.is_some() {
                self.sink_shared(chunk, &group_views, n)
            } else {
                self.sink_local(chunk, &group_views, n)
            }
        };
        ProbeScratch::put_views(&mut self.scratch.group_views, group_views);
        res?;
        self.rows_in += n;
        Ok(())
    }

    /// Observe the run-wide strategy decision at chunk granularity, and (on
    /// the adaptive path) contribute this worker's sample once it is large
    /// enough. An overflowed shared index drops this worker back to the
    /// thread-local path permanently — rows already routed through the
    /// index merge by key in phase 2 regardless.
    fn check_strategy(&mut self) {
        if self.instream.is_some() {
            // The in-stream path is a per-worker commitment; the run-wide
            // strategy was settled to thread-local when it engaged.
            return;
        }
        if let Some(sl) = &self.shared_mode {
            if sl.sp.index.overflowed() {
                self.shared_mode = None;
            }
            return;
        }
        if self.sink.config.threads <= 1 {
            return;
        }
        match self.sink.decision.load(Ordering::Acquire) {
            DECIDE_SHARED => self.enter_shared(),
            DECIDE_PENDING if self.rows_in >= STRATEGY_SAMPLE_ROWS => {
                let groups_seen = self.ht.count();
                let want_shared = self.resets == 0
                    && groups_seen <= SHARED_CARD_MAX
                    && groups_seen * SHARED_DENSITY_MIN <= self.rows_in;
                if self.sink.decide(want_shared, groups_seen) == DECIDE_SHARED {
                    self.enter_shared();
                }
            }
            _ => {}
        }
    }

    /// Switch this worker to the in-stream fast path. Settle the run-wide
    /// strategy first (a later settle would overwrite the profile label),
    /// then record the route. Rows already probed into the local table stay
    /// in its fragments — phase 2 merges them by key. Under an Adaptive
    /// phase-2 strategy the switch also turns on run-sorting: sorted input
    /// is exactly what makes sealed runs long and the permute cheap.
    fn enable_instream(&mut self) {
        self.sink.settle_local();
        if let Some(p) = self.sink.ctx.profile() {
            p.set_strategy("instream");
        }
        if self.sink.plan.layout.var_cols().is_empty()
            && self.sink.config.phase2_strategy != Phase2Strategy::Hash
        {
            self.run_sort = true;
        }
        self.instream = Some(InStreamAgg::new());
    }

    /// In-stream (sorted-input) chunk path — see [`crate::instream`].
    fn sink_instream(
        &mut self,
        chunk: &DataChunk,
        group_views: &[&Vector],
        n: usize,
    ) -> Result<()> {
        let plan = self.sink.plan;
        let mut layout_views = ProbeScratch::take_views(&mut self.scratch.layout_views);
        layout_views.extend_from_slice(group_views);
        for &c in &plan.payload_args {
            layout_views.push(chunk.column(c));
        }
        let is = self.instream.as_mut().expect("instream checked");
        let res = is.sink_chunk(
            &plan.layout,
            &plan.state_aggs,
            self.sink.config.kernel_mode,
            chunk,
            group_views,
            &layout_views,
            &mut self.hashes,
            &mut self.data,
        );
        ProbeScratch::put_views(&mut self.scratch.layout_views, layout_views);
        res?;
        let _ = n;
        // Same memory-epoch budget as the hash path's reset threshold: once
        // this epoch has materialized as many group rows as a reset-full
        // hash table would hold, seal the epoch so its pages become
        // spillable. (The hash table itself is idle on this path.)
        let appended = self.instream.as_ref().expect("instream checked").appended();
        if appended * 100 >= self.ht.capacity() * self.sink.config.reset_fill_percent as usize {
            self.seal_epoch();
        }
        Ok(())
    }

    /// End one memory epoch: optionally seal the partitions' unsealed tails
    /// as sorted runs, then release the append pins (pages become
    /// spillable) and clear the probe table.
    fn seal_epoch(&mut self) {
        if self.run_sort {
            let t = Instant::now();
            self.runs_sealed += self.data.seal_sorted_runs(self.sink.plan.key_cols);
            self.sort_busy += t.elapsed();
        }
        if let Some(is) = &mut self.instream {
            is.on_release();
        }
        self.ht.reset();
        self.data.release_pins();
        self.resets += 1;
    }

    /// Adopt the installed shared state. Whatever this worker's local table
    /// accumulated while sampling stays in its fragments — phase 2 merges
    /// those rows with the shared-path rows by key.
    fn enter_shared(&mut self) {
        let sp = self.sink.shared_p1.lock().as_ref().map(Arc::clone);
        if let Some(sp) = sp {
            if !sp.index.overflowed() {
                self.shared_mode = Some(SharedLocal {
                    sp,
                    local_ords: Vec::new(),
                    new_ords: Vec::new(),
                });
            }
        }
    }

    /// Thread-local chunk path (the paper's design).
    fn sink_local(&mut self, chunk: &DataChunk, group_views: &[&Vector], n: usize) -> Result<()> {
        let plan = self.sink.plan;
        let mode = self.sink.config.kernel_mode;
        // Probe: resolve every input row to an existing row pointer or a
        // pending new-group ordinal.
        self.targets.clear();
        self.new_sel.clear();
        self.pending_slots.clear();
        match mode {
            KernelMode::Scalar => self.probe_scalar(group_views, n),
            KernelMode::Vectorized => self.probe_vectorized(group_views, n),
        }

        // Materialize the new groups directly into radix partitions
        // (column-major -> row-major conversion happens here, once).
        self.scratch.new_ptrs.clear();
        if !self.new_sel.is_empty() {
            let mut layout_views = ProbeScratch::take_views(&mut self.scratch.layout_views);
            layout_views.extend_from_slice(group_views);
            for &c in &plan.payload_args {
                layout_views.push(chunk.column(c));
            }
            self.data.append(
                &layout_views,
                &self.hashes,
                &self.new_sel,
                Some(&mut self.scratch.new_ptrs),
            )?;
            ProbeScratch::put_views(&mut self.scratch.layout_views, layout_views);
            // Patch pending entries to real row pointers.
            for (ord, &slot) in self.pending_slots.iter().enumerate() {
                let h = self.hashes[self.new_sel[ord] as usize];
                self.ht
                    .set_entry(slot, make_entry(h, self.scratch.new_ptrs[ord]), false);
            }
        }
        // Update aggregate states for every input row.
        let s = &mut self.scratch;
        match mode {
            KernelMode::Scalar => {
                for (sidx, agg) in plan.state_aggs.iter().enumerate() {
                    let arg = agg.spec.arg.map(|c| chunk.column(c));
                    let off = plan.layout.aggr_offset(sidx);
                    for i in 0..n {
                        let t = self.targets[i];
                        let row = if is_pending(t) {
                            s.new_ptrs[pending_ord(t)]
                        } else {
                            entry_ptr(t)
                        };
                        // SAFETY: row points into a pinned page; states are
                        // in-row.
                        unsafe { update_state(agg, row.add(off), arg, i) };
                    }
                }
            }
            KernelMode::Vectorized => {
                // Patch the tagged new-group rows to their materialized
                // pointers (O(new groups' occurrences), not O(n)), then one
                // monomorphized kernel call per aggregate over the chunk.
                for &r in &s.pending_rows {
                    let i = r as usize;
                    let ord = (s.row_ptrs[i] as u64 & !PENDING_PTR_TAG) as usize;
                    s.row_ptrs[i] = s.new_ptrs[ord];
                }
                for (sidx, agg) in plan.state_aggs.iter().enumerate() {
                    let arg = agg.spec.arg.map(|c| chunk.column(c));
                    let off = plan.layout.aggr_offset(sidx);
                    // SAFETY: every row pointer targets a row on a pinned
                    // page with the aggregate's state at `off`.
                    unsafe { (agg.kernels.update)(&s.row_ptrs[..n], off, arg) };
                }
            }
        }

        // Reset when two-thirds full: clear the entry array (cheap), unpin
        // the partition pages (they become spillable).
        if self.should_reset() {
            self.seal_epoch();
        }
        Ok(())
    }

    /// Shared-strategy chunk path: resolve each row to a group ordinal in
    /// the run-wide [`SharedGroupIndex`] (lock-free probes; inserts batched
    /// under the canon lock), then update this worker's *private*
    /// accumulator row for that ordinal — no atomics in the update kernels.
    fn sink_shared(&mut self, chunk: &DataChunk, group_views: &[&Vector], n: usize) -> Result<()> {
        let plan = self.sink.plan;
        let sl = self.shared_mode.as_mut().expect("shared_mode checked");
        let sp = Arc::clone(&sl.sp);
        let idx = &sp.index;

        // `targets[i]` = resolved group ordinal (u64::MAX = unresolved).
        self.targets.clear();
        self.targets.resize(n, u64::MAX);
        let s = &mut self.scratch;
        s.slots.clear();
        s.slots
            .extend(self.hashes[..n].iter().map(|&h| idx.slot(h)));
        // Lock-free probe: most rows hit an already-published group.
        s.stage1_fail.clear(); // rows needing the insert pass
        'rows: for i in 0..n {
            let h = self.hashes[i];
            loop {
                let e = idx.entry(s.slots[i]);
                if e == 0 {
                    s.stage1_fail.push(i as u32);
                    continue 'rows;
                }
                if salt_bits(e) == salt_bits(h) {
                    let ord = SharedGroupIndex::entry_ordinal(e);
                    // SAFETY: published ordinals have canonical rows on
                    // pages kept pinned for the whole of phase 1; only the
                    // immutable key bytes are read here.
                    if unsafe { rows_match(&plan.layout, group_views, i, idx.row_ptr(ord)) } {
                        self.targets[i] = ord as u64;
                        continue 'rows;
                    }
                }
                s.slots[i] = idx.next_slot(s.slots[i]);
            }
        }

        let mut layout_views = ProbeScratch::take_views(&mut s.layout_views);
        layout_views.extend_from_slice(group_views);
        for &c in &plan.payload_args {
            layout_views.push(chunk.column(c));
        }

        // Insert pass: serialize new-group claims under the canon lock.
        // Overflow rows (index full) fall through to `no_match` and are
        // appended as unaggregated singletons — phase 2 merges by key.
        s.no_match.clear();
        if !s.stage1_fail.is_empty() {
            let mut canon = sp.canon.lock();
            let mut one: Vec<*mut u8> = Vec::with_capacity(1);
            'pending: for &r in &s.stage1_fail {
                let i = r as usize;
                let h = self.hashes[i];
                loop {
                    let e = idx.entry(s.slots[i]);
                    if e == 0 {
                        match idx.alloc_ordinal() {
                            Some(ord) => {
                                one.clear();
                                canon.append(&layout_views, &self.hashes, &[r], Some(&mut one))?;
                                idx.publish(s.slots[i], h, ord, one[0]);
                                if sl.local_ords.len() <= ord {
                                    sl.local_ords.resize(ord + 1, std::ptr::null_mut());
                                }
                                // The claiming worker aggregates straight
                                // into the canonical row it just wrote.
                                sl.local_ords[ord] = one[0];
                                self.targets[i] = ord as u64;
                            }
                            None => s.no_match.push(r),
                        }
                        continue 'pending;
                    }
                    if salt_bits(e) == salt_bits(h) {
                        let ord = SharedGroupIndex::entry_ordinal(e);
                        // SAFETY: as in the lock-free pass.
                        if unsafe { rows_match(&plan.layout, group_views, i, idx.row_ptr(ord)) } {
                            self.targets[i] = ord as u64;
                            continue 'pending;
                        }
                    }
                    s.slots[i] = idx.next_slot(s.slots[i]);
                }
            }
        }
        if s.row_ptrs.len() < n {
            s.row_ptrs.resize(n, std::ptr::null_mut());
        }
        if !s.no_match.is_empty() {
            // Index overflow: append these rows unaggregated and let the
            // next chunk's strategy check drop back to the local path.
            s.new_ptrs.clear();
            self.data.append(
                &layout_views,
                &self.hashes,
                &s.no_match,
                Some(&mut s.new_ptrs),
            )?;
            for (k, &r) in s.no_match.iter().enumerate() {
                // Each singleton row is its own (already-final) target.
                s.row_ptrs[r as usize] = s.new_ptrs[k];
            }
        }

        // Materialize this worker's accumulator row for ordinals it meets
        // for the first time (one batched append, claim-marked first).
        self.new_sel.clear();
        sl.new_ords.clear();
        let grow = idx.count();
        if sl.local_ords.len() < grow {
            sl.local_ords.resize(grow, std::ptr::null_mut());
        }
        for i in 0..n {
            let t = self.targets[i];
            if t == u64::MAX {
                continue;
            }
            let ord = t as usize;
            if sl.local_ords[ord].is_null() {
                sl.local_ords[ord] = usize::MAX as *mut u8; // claim mark
                self.new_sel.push(i as u32);
                sl.new_ords.push(ord);
            }
        }
        if !self.new_sel.is_empty() {
            s.new_ptrs.clear();
            self.data.append(
                &layout_views,
                &self.hashes,
                &self.new_sel,
                Some(&mut s.new_ptrs),
            )?;
            for (k, &ord) in sl.new_ords.iter().enumerate() {
                sl.local_ords[ord] = s.new_ptrs[k];
            }
        }
        ProbeScratch::put_views(&mut s.layout_views, layout_views);

        // Resolve per-row accumulator pointers and run the update kernels.
        for i in 0..n {
            let t = self.targets[i];
            if t != u64::MAX {
                s.row_ptrs[i] = sl.local_ords[t as usize];
            }
            // else: overflow singleton pointer already written above.
        }
        match self.sink.config.kernel_mode {
            KernelMode::Scalar => {
                for (sidx, agg) in plan.state_aggs.iter().enumerate() {
                    let arg = agg.spec.arg.map(|c| chunk.column(c));
                    let off = plan.layout.aggr_offset(sidx);
                    for i in 0..n {
                        // SAFETY: every pointer targets a row on a pinned
                        // page owned by this worker's data.
                        unsafe { update_state(agg, s.row_ptrs[i].add(off), arg, i) };
                    }
                }
            }
            KernelMode::Vectorized => {
                for (sidx, agg) in plan.state_aggs.iter().enumerate() {
                    let arg = agg.spec.arg.map(|c| chunk.column(c));
                    let off = plan.layout.aggr_offset(sidx);
                    // SAFETY: as above.
                    unsafe { (agg.kernels.update)(&s.row_ptrs[..n], off, arg) };
                }
            }
        }
        // The shared path never resets: accumulator pages stay pinned (one
        // row per group per worker — bounded by the index capacity).
        Ok(())
    }
}

/// Aggregate one partition: pin, recompute pointers, merge duplicate groups
/// by pointer insertion, stream outputs, destroy pages.
#[allow(clippy::too_many_arguments)]
fn finalize_partition(
    plan: &BoundPlan,
    mgr: &Arc<BufferManager>,
    config: &AggregateConfig,
    ctx: &ExecContext,
    partition_idx: usize,
    spill_retry_baseline: u64,
    mut part: TupleDataCollection,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
    groups_out: &AtomicUsize,
    sbuf: Option<&SpanBuffer>,
) -> Result<()> {
    if part.rows() == 0 {
        return Ok(());
    }
    // A partition with evicted pages "went external": pinning it back below
    // reads those bytes from the spill files. Recorded before the pins so
    // the profile reflects where the partition *was*, not where it ends up.
    let external = part.unloaded_bytes() > 0;
    if let Some(profile) = ctx.profile() {
        if external {
            profile.add_partitions_external(1);
        }
    }
    // Spend grant headroom for the pages this partition is about to pin:
    // the admission footprint promised them, and releasing the bytes here
    // means the pins consume the promised headroom instead of charging the
    // limit a second time.
    ctx.spend_grant(part.data_bytes());
    let pins = part.pin_all()?;
    let layout = &plan.layout;

    // Per-partition merge strategy. The sorted merge is eligible only when
    // the sealed runs tile the whole partition (an unsealed tail or a
    // combined unsorted fragment disqualifies it), the layout is heapless,
    // and no spill write was retried since the operator started — a retried
    // write means the fault-injection (or a flaky device) touched the spill
    // path, and re-hashing is the robust degradation. Adaptive additionally
    // requires the partition to have gone external: in memory, the hash
    // rebuild is cheap and the run seals were free to skip.
    let runs: Vec<(usize, usize)> = part.sorted_runs().to_vec();
    let spill_clean = mgr.stats().spill_retries == spill_retry_baseline;
    let sorted_ok = !runs.is_empty()
        && part.runs_cover_all_rows()
        && layout.var_cols().is_empty()
        && spill_clean;
    let use_sorted = match config.phase2_strategy {
        Phase2Strategy::Hash => false,
        Phase2Strategy::SortedMerge => sorted_ok,
        Phase2Strategy::Adaptive => sorted_ok && external,
    };
    if let Some(profile) = ctx.profile() {
        profile.record_partition_merge(
            partition_idx,
            if use_sorted { "sorted_merge" } else { "hash" },
            runs.len() as u64,
            if use_sorted { runs.len() as u64 } else { 0 },
        );
    }

    let mut live: Vec<*mut u8> = Vec::new();
    let mut ptrs: Vec<*mut u8> = Vec::new();
    if use_sorted {
        merge_sorted_runs(
            plan,
            config,
            ctx,
            partition_idx,
            &part,
            &pins,
            &runs,
            &mut live,
            &mut ptrs,
            sbuf,
        )?;
    } else {
        finalize_hash_dedup(plan, mgr, config, ctx, &part, &pins, &mut live, &mut ptrs)?;
    }

    // Emit the surviving groups ("fully aggregated partitions are
    // immediately scanned" — pushed to the consumer, then freed).
    let t_emit = Instant::now();
    let t_emit_ns = sbuf.map(|b| b.now_ns());
    for batch in live.chunks(config.output_chunk_size.max(1)) {
        ctx.check_cancelled()?;
        // SAFETY: batch pointers come from this collection under `pins`.
        let gathered = unsafe { part.gather(batch) };
        let mut columns: Vec<Vector> = gathered.columns()[..plan.key_cols].to_vec();
        for slot in &plan.out_slots {
            match slot {
                OutSlot::Payload(p) => columns.push(gathered.column(plan.key_cols + p).clone()),
                OutSlot::State(s) => {
                    let agg = &plan.state_aggs[*s];
                    let off = layout.aggr_offset(*s);
                    match config.kernel_mode {
                        KernelMode::Scalar => {
                            let mut col = Vector::empty(agg.output_type);
                            for &row in batch {
                                // SAFETY: as above.
                                let v = unsafe { finalize_state(agg, row.add(off)) };
                                col.push_value(&v)?;
                            }
                            columns.push(col);
                        }
                        KernelMode::Vectorized => {
                            let states: Vec<*const u8> = batch
                                .iter()
                                .map(|&row| unsafe { row.add(off) as *const u8 })
                                .collect();
                            // SAFETY: as above; the kernel writes the output
                            // vector directly, skipping boxed Values.
                            columns.push(unsafe { (agg.kernels.finalize)(&states) });
                        }
                    }
                }
            }
        }
        consumer(DataChunk::new(columns))?;
    }
    if let (Some(b), Some(t)) = (sbuf, t_emit_ns) {
        b.complete(
            "finalize",
            span_cat::COMPUTE,
            t,
            span::arg1("groups", live.len() as u64),
        );
    }
    if let Some(profile) = ctx.profile() {
        // The emit share of this task's time: phase-2 busy (credited to the
        // merge phase by `parallel_for`) includes it; this split shows how
        // much of it was spent gathering and streaming output.
        profile.add_busy_to(Phase::Finalize, t_emit.elapsed());
        profile.add_rows_out(live.len() as u64);
    }
    groups_out.fetch_add(live.len(), Ordering::Relaxed);
    drop(pins);
    drop(part); // eager destroy: memory or spill space released now
    Ok(())
}

/// Phase-2 hash dedup (the default merge): rebuild a partition-local probe
/// table over the pinned rows, combining duplicate groups by key.
#[allow(clippy::too_many_arguments)]
fn finalize_hash_dedup(
    plan: &BoundPlan,
    mgr: &Arc<BufferManager>,
    config: &AggregateConfig,
    ctx: &ExecContext,
    part: &TupleDataCollection,
    pins: &rexa_layout::CollectionPins,
    live: &mut Vec<*mut u8>,
    ptrs: &mut Vec<*mut u8>,
) -> Result<()> {
    let layout = &plan.layout;
    let cap = (part.rows() * 2).next_power_of_two().max(1024);
    let mut ht = SaltedHashTable::with_capacity_ctx(mgr, cap, ctx)?;
    match config.kernel_mode {
        KernelMode::Scalar => {
            for c in 0..part.chunk_count() {
                ctx.check_cancelled()?;
                ptrs.clear();
                part.chunk_row_ptrs(pins, c, ptrs);
                for &row in ptrs.iter() {
                    // SAFETY: the partition is pinned and pointer-recomputed.
                    let h = unsafe { layout.read_hash(row) };
                    let mut slot = ht.slot(h);
                    loop {
                        let e = ht.entry(slot);
                        if e == 0 {
                            ht.set_entry(slot, make_entry(h, row), true);
                            live.push(row);
                            break;
                        }
                        if salt_bits(e) == salt_bits(h) {
                            let existing = entry_ptr(e);
                            // SAFETY: both rows live on pinned pages.
                            if unsafe { row_row_match(layout, plan.key_cols, existing, row) } {
                                for (sidx, agg) in plan.state_aggs.iter().enumerate() {
                                    let off = layout.aggr_offset(sidx);
                                    // SAFETY: states are inside the rows.
                                    unsafe { combine_state(agg, row.add(off), existing.add(off)) };
                                }
                                break;
                            }
                        }
                        slot = ht.next_slot(slot);
                    }
                }
            }
        }
        KernelMode::Vectorized => {
            // Selection-vector insertion: resolve every row of a chunk to
            // its surviving group row first (claiming new entries along the
            // way), then run one combine kernel per aggregate over the
            // duplicates. Combines stay in chunk-row order, so per-group
            // float results are bit-identical to the scalar loop.
            let mut hashes: Vec<u64> = Vec::new();
            let mut slots: Vec<usize> = Vec::new();
            let mut targets: Vec<*mut u8> = Vec::new();
            let mut remaining: Vec<u32> = Vec::new();
            let mut next_remaining: Vec<u32> = Vec::new();
            let mut stage1_fail: Vec<u32> = Vec::new();
            let mut cand_rows: Vec<u32> = Vec::new();
            let mut cand_existing: Vec<*const u8> = Vec::new();
            let mut cand_new: Vec<*const u8> = Vec::new();
            let mut matched: Vec<u32> = Vec::new();
            let mut no_match: Vec<u32> = Vec::new();
            let mut pairs: Vec<(*const u8, *mut u8)> = Vec::new();
            let mut state_pairs: Vec<(*const u8, *mut u8)> = Vec::new();
            for c in 0..part.chunk_count() {
                ctx.check_cancelled()?;
                ptrs.clear();
                part.chunk_row_ptrs(pins, c, ptrs);
                let m = ptrs.len();
                // SAFETY: the partition is pinned and pointer-recomputed.
                hashes.clear();
                hashes.extend(ptrs.iter().map(|&row| unsafe { layout.read_hash(row) }));
                slots.clear();
                slots.extend(hashes.iter().map(|&h| ht.slot(h)));
                targets.clear();
                targets.resize(m, std::ptr::null_mut());
                remaining.clear();
                remaining.extend(0..m as u32);
                while !remaining.is_empty() {
                    stage1_fail.clear();
                    cand_rows.clear();
                    cand_existing.clear();
                    cand_new.clear();
                    for &r in &remaining {
                        let i = r as usize;
                        let row = ptrs[i];
                        let h = hashes[i];
                        let slot = slots[i];
                        let e = ht.entry(slot);
                        if e == 0 {
                            ht.set_entry(slot, make_entry(h, row), true);
                            live.push(row);
                            targets[i] = row; // survives as its own group
                            continue;
                        }
                        if salt_bits(e) == salt_bits(h) {
                            cand_rows.push(r);
                            cand_existing.push(entry_ptr(e));
                            cand_new.push(row);
                            continue;
                        }
                        slots[i] = ht.next_slot(slot);
                        stage1_fail.push(r);
                    }
                    // SAFETY: all candidate rows live on pinned pages.
                    unsafe {
                        row_row_match_sel(
                            layout,
                            plan.key_cols,
                            &cand_existing,
                            &cand_new,
                            &mut matched,
                            &mut no_match,
                        );
                    }
                    for &p in &matched {
                        targets[cand_rows[p as usize] as usize] =
                            cand_existing[p as usize] as *mut u8;
                    }
                    for &p in &no_match {
                        let i = cand_rows[p as usize] as usize;
                        slots[i] = ht.next_slot(slots[i]);
                    }
                    // Ordered merge keeps `remaining` ascending, mirroring
                    // the phase-1 probe.
                    next_remaining.clear();
                    let (mut ai, mut bi) = (0, 0);
                    while ai < stage1_fail.len() && bi < no_match.len() {
                        let br = cand_rows[no_match[bi] as usize];
                        if stage1_fail[ai] < br {
                            next_remaining.push(stage1_fail[ai]);
                            ai += 1;
                        } else {
                            next_remaining.push(br);
                            bi += 1;
                        }
                    }
                    next_remaining.extend_from_slice(&stage1_fail[ai..]);
                    next_remaining.extend(no_match[bi..].iter().map(|&p| cand_rows[p as usize]));
                    std::mem::swap(&mut remaining, &mut next_remaining);
                }
                // Combine duplicates into their surviving rows, in chunk-row
                // order, one columnar kernel call per aggregate.
                pairs.clear();
                pairs.extend(
                    ptrs.iter()
                        .zip(&targets)
                        .filter(|&(&row, &dst)| !std::ptr::eq(row, dst))
                        .map(|(&row, &dst)| (row as *const u8, dst)),
                );
                if !pairs.is_empty() {
                    for (sidx, agg) in plan.state_aggs.iter().enumerate() {
                        let off = layout.aggr_offset(sidx);
                        state_pairs.clear();
                        state_pairs.extend(pairs.iter().map(|&(src, dst)| {
                            // SAFETY: states are inside the rows.
                            unsafe { (src.add(off), dst.add(off)) }
                        }));
                        // SAFETY: src/dst are distinct rows' states.
                        unsafe { (agg.kernels.combine)(&state_pairs) };
                    }
                }
            }
        }
    }
    Ok(())
}

/// Phase-2 sorted merge: a K-way streaming merge over the partition's
/// sealed sorted runs. The first row of each key claims into `live`; every
/// following equal row combines into it — duplicate groups dissolve without
/// rebuilding a hash table, so the working set is the K run cursors instead
/// of a probe table over all rows. Combines happen in merge order (scalar:
/// immediately; vectorized: deferred into one batched kernel call per
/// aggregate, same per-group order), and equal keys break ties on the run
/// index, so the merge is deterministic.
#[allow(clippy::too_many_arguments)]
fn merge_sorted_runs(
    plan: &BoundPlan,
    config: &AggregateConfig,
    ctx: &ExecContext,
    partition_idx: usize,
    part: &TupleDataCollection,
    pins: &rexa_layout::CollectionPins,
    runs: &[(usize, usize)],
    live: &mut Vec<*mut u8>,
    ptrs: &mut Vec<*mut u8>,
    sbuf: Option<&SpanBuffer>,
) -> Result<()> {
    let layout = &plan.layout;
    let t0 = sbuf.map(|b| b.now_ns());
    // Row pointers in logical row order (chunk order), so run ranges index
    // directly.
    let mut all: Vec<*mut u8> = Vec::with_capacity(part.rows());
    for c in 0..part.chunk_count() {
        ptrs.clear();
        part.chunk_row_ptrs(pins, c, ptrs);
        all.extend_from_slice(ptrs);
    }
    debug_assert_eq!(all.len(), part.rows());

    // Cursor = (pos, end, run index, key prefix of the row at pos) over
    // `all`; a manual binary min-heap ordered by key bytes, run index
    // breaking ties. The cached prefix settles most heap comparisons with
    // one integer compare; a prefix tie falls back to the row comparator
    // unless the prefix order is exact for this key layout (the common
    // single fixed-width group column).
    type Cursor = (usize, usize, usize, u128);
    let exact = prefix_is_exact(layout, plan.key_cols);
    let before = |a: &Cursor, b: &Cursor| -> bool {
        match a.3.cmp(&b.3) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal if exact => a.2 < b.2,
            std::cmp::Ordering::Equal => {
                // SAFETY: all rows are pinned; only key bytes are read.
                let c = unsafe { row_row_cmp(layout, plan.key_cols, all[a.0], all[b.0]) };
                if c.is_eq() {
                    a.2 < b.2
                } else {
                    c.is_lt()
                }
            }
        }
    };
    fn sift_down<F: Fn(&(usize, usize, usize, u128), &(usize, usize, usize, u128)) -> bool>(
        v: &mut [(usize, usize, usize, u128)],
        mut i: usize,
        before: &F,
    ) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < v.len() && before(&v[l], &v[best]) {
                best = l;
            }
            if r < v.len() && before(&v[r], &v[best]) {
                best = r;
            }
            if best == i {
                return;
            }
            v.swap(i, best);
            i = best;
        }
    }
    let mut heap: Vec<Cursor> = runs
        .iter()
        .enumerate()
        .filter(|&(_, &(_, len))| len > 0)
        .map(|(k, &(start, len))| {
            // SAFETY: run rows are pinned.
            (start, start + len, k, unsafe {
                key_prefix(layout, all[start])
            })
        })
        .collect();
    let fanin = heap.len() as u64;
    for i in (0..heap.len() / 2).rev() {
        sift_down(&mut heap, i, &before);
    }

    let mut current: *mut u8 = std::ptr::null_mut();
    let mut current_prefix: u128 = 0;
    let mut pairs: Vec<(*const u8, *mut u8)> = Vec::new();
    let mut popped = 0usize;
    while let Some(&(pos, end, _, prefix)) = heap.first() {
        popped += 1;
        if popped & 1023 == 0 {
            ctx.check_cancelled()?;
        }
        let row = all[pos];
        // Prefix mismatch rules the key out without touching row bytes; on
        // a match the full comparator confirms unless the prefix is exact.
        // SAFETY: both rows are pinned; only immutable key bytes are read.
        let same_key = !current.is_null()
            && prefix == current_prefix
            && (exact || unsafe { row_row_match(layout, plan.key_cols, current, row) });
        if same_key {
            match config.kernel_mode {
                KernelMode::Scalar => {
                    for (sidx, agg) in plan.state_aggs.iter().enumerate() {
                        let off = layout.aggr_offset(sidx);
                        // SAFETY: states are inside the rows.
                        unsafe { combine_state(agg, row.add(off), current.add(off)) };
                    }
                }
                KernelMode::Vectorized => pairs.push((row as *const u8, current)),
            }
        } else {
            live.push(row);
            current = row;
            current_prefix = prefix;
        }
        // Advance this run's cursor (or retire it), then restore the heap.
        if pos + 1 < end {
            heap[0].0 = pos + 1;
            // SAFETY: run rows are pinned.
            heap[0].3 = unsafe { key_prefix(layout, all[pos + 1]) };
        } else {
            let last = heap.len() - 1;
            heap.swap(0, last);
            heap.pop();
        }
        if !heap.is_empty() {
            sift_down(&mut heap, 0, &before);
        }
    }
    if !pairs.is_empty() {
        let mut state_pairs: Vec<(*const u8, *mut u8)> = Vec::new();
        for (sidx, agg) in plan.state_aggs.iter().enumerate() {
            let off = layout.aggr_offset(sidx);
            state_pairs.clear();
            state_pairs.extend(pairs.iter().map(|&(src, dst)| {
                // SAFETY: states are inside the rows.
                unsafe { (src.add(off), dst.add(off)) }
            }));
            // SAFETY: src/dst are distinct rows' states.
            unsafe { (agg.kernels.combine)(&state_pairs) };
        }
    }
    if let (Some(b), Some(t)) = (sbuf, t0) {
        b.complete(
            "sorted_merge",
            span_cat::COMPUTE,
            t,
            span::arg2("partition", partition_idx as u64, "fanin", fanin),
        );
    }
    Ok(())
}

/// Phase-2 merge schedule: partition indices ordered by payload size,
/// largest first (longest-processing-time-first). Radix partitioning over
/// skewed keys produces wildly uneven partitions; claiming the giants first
/// keeps them off the tail of the schedule, where a straggler would run
/// alone while every other worker idles. Ties break on the lower index so
/// the schedule is deterministic.
fn lpt_order(sizes: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
    order
}

/// Pick the next partition to merge from the ready list: the same policy as
/// [`lpt_order`], applied incrementally as partitions become mergeable.
/// Returns the *position* within `ready` of the largest entry (ties to the
/// lower partition index, keeping the schedule deterministic).
fn lpt_claim(ready: &[(usize, usize)]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (k, &(bytes, p)) in ready.iter().enumerate() {
        best = match best {
            None => Some(k),
            Some(b) => {
                let (bb, bp) = ready[b];
                if bytes > bb || (bytes == bb && p < bp) {
                    Some(k)
                } else {
                    Some(b)
                }
            }
        };
    }
    best
}

/// Phase-1 → phase-2 handoff: instead of a hard barrier between the phases,
/// every worker flushes its thread-local fragments partition by partition,
/// and a partition whose *last* fragment lands becomes mergeable immediately
/// — feeding the LPT/read-ahead merge schedule while slower workers are
/// still probing or flushing the rest.
///
/// Built to survive the pool's saturation mode: [`ExecContext::run_units`]
/// may execute worker bodies *sequentially* on one runner, so a merge loop
/// must never block on fragments unless every worker body has provably
/// started (`started == threads`). When that does not hold, a worker simply
/// exits after draining what is already mergeable — the final body observes
/// `flushers == 0` and drains every remaining partition itself.
struct PartitionHandoff {
    /// Merged fragments per partition (flushers append under the lock).
    slots: Vec<Mutex<TupleDataCollection>>,
    /// Fragments still outstanding per partition; the flush that takes a
    /// partition's count to zero publishes it to `ready`.
    pending: Vec<AtomicUsize>,
    /// Mergeable partitions as `(payload bytes, partition index)`.
    ready: Mutex<Vec<(usize, usize)>>,
    ready_cv: Condvar,
    /// Read-ahead marker per partition (first claimant warms it).
    prefetched: Vec<AtomicBool>,
    /// A worker failed (error or panic): abandon all waiting.
    failed: AtomicBool,
    /// Worker bodies that have begun executing (see the type docs).
    started: AtomicUsize,
    /// Workers still probing; the one that takes this to zero absorbs the
    /// shared strategy's canonical rows into its own fragments.
    probers: AtomicUsize,
    /// Workers that have not finished flushing. Zero means `ready` is
    /// complete; the worker that takes it there stamps the phase-1 wall
    /// and the mid-run buffer stats.
    flushers: AtomicUsize,
    phase1_nanos: AtomicU64,
    stats_mid: Mutex<Option<BufferStats>>,
}

impl PartitionHandoff {
    fn new(
        mgr: &Arc<BufferManager>,
        layout: &Arc<TupleDataLayout>,
        partitions: usize,
        threads: usize,
    ) -> Self {
        PartitionHandoff {
            slots: (0..partitions)
                .map(|_| {
                    Mutex::new(TupleDataCollection::new(
                        Arc::clone(mgr),
                        Arc::clone(layout),
                    ))
                })
                .collect(),
            pending: (0..partitions).map(|_| AtomicUsize::new(threads)).collect(),
            ready: Mutex::new(Vec::new()),
            ready_cv: Condvar::new(),
            prefetched: (0..partitions).map(|_| AtomicBool::new(false)).collect(),
            failed: AtomicBool::new(false),
            started: AtomicUsize::new(0),
            probers: AtomicUsize::new(threads),
            flushers: AtomicUsize::new(threads),
            phase1_nanos: AtomicU64::new(0),
            stats_mid: Mutex::new(None),
        }
    }

    /// Mark the run failed and wake every waiter (idempotent).
    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
        let _guard = self.ready.lock();
        self.ready_cv.notify_all();
    }
}

/// Arms [`PartitionHandoff::fail`] until a worker body completes cleanly —
/// error returns *and* panics unwind through here, so waiting peers always
/// wake instead of deadlocking on fragments that will never arrive.
struct FailGuard<'a> {
    handoff: &'a PartitionHandoff,
    armed: bool,
}

impl Drop for FailGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.handoff.fail();
        }
    }
}

/// Run the full aggregation, streaming output chunks to `consumer` (which is
/// called concurrently from the phase-2 tasks).
pub fn hash_aggregate_streaming(
    mgr: &Arc<BufferManager>,
    source: &dyn ChunkSource,
    input_schema: &[LogicalType],
    plan: &HashAggregatePlan,
    config: &AggregateConfig,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
) -> Result<RunStats> {
    hash_aggregate_streaming_ctx(
        mgr,
        source,
        input_schema,
        plan,
        config,
        &ExecContext::new(),
        consumer,
    )
}

/// Like [`hash_aggregate_streaming`], but scheduled through `ctx`: both
/// phases run on the context's shared worker pool (when it has one), and the
/// context's cancellation token is checked between chunks in phase 1 and
/// between chunk batches in phase 2. On cancellation every thread-local and
/// partitioned intermediate is dropped before this returns, so pinned pages
/// are unpinned and spill files deleted promptly.
pub fn hash_aggregate_streaming_ctx(
    mgr: &Arc<BufferManager>,
    source: &dyn ChunkSource,
    input_schema: &[LogicalType],
    plan: &HashAggregatePlan,
    config: &AggregateConfig,
    ctx: &ExecContext,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
) -> Result<RunStats> {
    assert!(
        config.ht_capacity >= 4 * VECTOR_SIZE,
        "phase-1 table must be at least 4x the vector size"
    );
    let bound = bind_plan(plan, input_schema)?;
    // A source that knows its sort columns lets the operator assert the
    // sorted-input fast path up front: when the grouping keys cover a
    // prefix of the sort columns (any permutation of a sorted prefix
    // arrives grouped), `Detect` is promoted to `Sorted` and the sampling
    // phase is skipped.
    let promoted;
    let config = if config.sorted_input == SortedInput::Detect
        && source.sorted_by().is_some_and(|sorted| {
            !plan.group_cols.is_empty()
                && plan.group_cols.len() <= sorted.len()
                && plan
                    .group_cols
                    .iter()
                    .all(|c| sorted[..plan.group_cols.len()].contains(c))
        }) {
        promoted = AggregateConfig {
            sorted_input: SortedInput::Sorted,
            ..config.clone()
        };
        &promoted
    } else {
        config
    };
    let radix_bits = config.effective_radix_bits();
    let stats_before = mgr.stats();
    // Spill-retry watermark: phase 2 degrades sorted merges to hash dedup
    // when any spill write needed a retry during this run (see
    // `finalize_partition`).
    let spill_baseline = stats_before.spill_retries;

    // Every run collects a full profile: workers credit busy time and work
    // units to the collector's current phase, and the orchestration below
    // stamps the phase walls. A service-attached collector (via the
    // context) is reused so its scrape sees the same numbers; otherwise a
    // private one backs the RunStats profile.
    let collector = ctx
        .profile()
        .cloned()
        .unwrap_or_else(|| Arc::new(ProfileCollector::new()));
    let ctx_prof = ctx.clone().with_profile(Arc::clone(&collector));
    let ctx = &ctx_prof;
    collector.set_threads(config.threads);
    // Timeline tracing is strictly opt-in: with no collector on the
    // context, every span site below is a skipped `Option` check. With
    // one, the buffer manager's background I/O workers record into the
    // same collector (via a weak sink), so spill/read-ahead overlap shows
    // up on `io` tracks next to the compute tracks.
    let spans = ctx.spans().cloned();
    if let Some(sc) = &spans {
        mgr.attach_spans(sc);
    }
    let cbuf = spans.as_ref().map(|sc| sc.track("coordinator"));
    let t_run = Instant::now();

    let sink = AggSink {
        plan: &bound,
        mgr,
        config,
        ctx,
        radix_bits,
        rows_in: AtomicUsize::new(0),
        resets: AtomicU64::new(0),
        decision: AtomicU8::new(DECIDE_PENDING),
        shared_p1: Mutex::new(None),
    };
    // Resolve a forced strategy up front; `Adaptive` stays pending until the
    // first worker sample arrives. The shared strategy needs concurrency to
    // pay off (and single-thread runs promise scalar/vectorized
    // bit-identity), so it only ever engages at `threads > 1`.
    let threads_n = config.threads.max(1);
    match config.phase1_strategy {
        Phase1Strategy::ThreadLocal => sink.settle_local(),
        Phase1Strategy::Shared if threads_n > 1 => {
            sink.install_shared(config.ht_capacity.max(STRATEGY_SAMPLE_ROWS))?;
        }
        Phase1Strategy::Shared => sink.settle_local(),
        Phase1Strategy::Adaptive if threads_n <= 1 => sink.settle_local(),
        Phase1Strategy::Adaptive => {}
    }

    let partitions = 1usize << radix_bits;
    let groups_out = AtomicUsize::new(0);
    // Buffer stats at the probe/merge boundary, for attributing background
    // I/O overlap to the right phase.
    let mut stats_mid: Option<BufferStats> = None;
    // Phases 1 and 2 run inside this immediately-invoked closure so that
    // `drain_io` below executes on success *and* error paths: any deferred
    // background-write error must surface to this query, and accounting must
    // be back at baseline before the final stats delta is taken.
    let run: Result<(Duration, Duration, usize, u64)> = (|| {
        collector.set_phase(Phase::Probe);
        collector.add_partitions(partitions as u64);
        let handoff = PartitionHandoff::new(mgr, &bound.layout, partitions, threads_n);
        let depth = config.readahead_depth;
        let t0 = Instant::now();
        let t0_ns = cbuf.as_ref().map(|b| b.now_ns());
        // The unified worker body: probe morsels into thread-local (or
        // shared) state, flush fragments through the per-partition handoff,
        // then merge whatever partitions are (or become) ready. There is no
        // barrier: the first complete partition is merged while other
        // workers still probe.
        let worker = || -> Result<()> {
            let wid = collector.begin_worker();
            let sbuf = spans.as_ref().map(|sc| sc.track(format!("worker {wid}")));
            let mut guard = FailGuard {
                handoff: &handoff,
                armed: true,
            };
            handoff.started.fetch_add(1, Ordering::AcqRel);
            let t_worker = Instant::now();
            let t_probe_ns = sbuf.as_ref().map(|b| b.now_ns());
            let mut local = sink.local()?;
            let mut reader = source.reader();
            let mut chunks = 0u64;
            let probe_res: Result<()> = (|| {
                // Tracing-only morsel segmentation: one span per claimed
                // morsel, one timestamp per chunk — skipped entirely when
                // no collector is attached.
                let mut m_seen = 0u64;
                let mut m_start = 0u64;
                while let Some(chunk) = reader.next()? {
                    ctx.check_cancelled()?;
                    let t_chunk = sbuf.as_ref().map(|b| b.now_ns());
                    local.sink(chunk)?;
                    chunks += 1;
                    if let (Some(b), Some(t)) = (&sbuf, t_chunk) {
                        let claimed = reader.morsels_claimed();
                        if claimed != m_seen {
                            if m_seen > 0 {
                                b.complete_between(
                                    "morsel",
                                    span_cat::COMPUTE,
                                    m_start,
                                    t,
                                    span::arg1("morsel", m_seen - 1),
                                );
                            }
                            m_seen = claimed;
                            m_start = t;
                        }
                    }
                }
                if let Some(b) = &sbuf {
                    if m_seen > 0 {
                        b.complete(
                            "morsel",
                            span_cat::COMPUTE,
                            m_start,
                            span::arg1("morsel", m_seen - 1),
                        );
                    }
                }
                Ok(())
            })();
            let morsels = reader.morsels_claimed();
            drop(reader);
            sink.rows_in.fetch_add(local.rows_in, Ordering::Relaxed);
            sink.resets.fetch_add(local.resets, Ordering::Relaxed);
            collector.record_worker_resets(wid, local.resets);
            probe_res?;
            // Seal the unsealed partition tails as this worker's final
            // sorted runs while the append pins are still held (sealing
            // permutes row bytes in place, which needs the pages resident
            // and exclusive).
            if local.run_sort {
                let t_sort = Instant::now();
                let t_sort_ns = sbuf.as_ref().map(|b| b.now_ns());
                let sealed = local.data.seal_sorted_runs(bound.key_cols);
                local.runs_sealed += sealed;
                if let Some(is) = &mut local.instream {
                    is.on_release();
                }
                local.sort_busy += t_sort.elapsed();
                if let (Some(b), Some(t)) = (&sbuf, t_sort_ns) {
                    b.complete("run_sort", span_cat::COMPUTE, t, span::arg1("runs", sealed));
                }
            }
            collector.add_busy_to(Phase::Sort, local.sort_busy);
            collector.add_sorted_runs(local.runs_sealed);
            // The last worker out of the probe absorbs the shared
            // strategy's canonical rows (nobody key-compares against them
            // once probing is over), so they flush like any other
            // fragments and phase 2 merges per-worker duplicates by key.
            if handoff.probers.fetch_sub(1, Ordering::AcqRel) == 1 {
                let sp = sink.shared_p1.lock().as_ref().map(Arc::clone);
                if let Some(sp) = sp {
                    let mut canon_guard = sp.canon.lock();
                    let mut canon = std::mem::replace(
                        &mut *canon_guard,
                        PartitionedTupleData::new(mgr, &bound.layout, radix_bits),
                    );
                    drop(canon_guard);
                    canon.release_pins();
                    local.data.release_pins();
                    local.data.combine(canon);
                }
                // Probe pins are gone everywhere: wake merge waiters.
                let _g = handoff.ready.lock();
                handoff.ready_cv.notify_all();
            }
            local.data.release_pins();
            if let (Some(b), Some(t)) = (&sbuf, t_probe_ns) {
                b.complete(
                    "probe",
                    span_cat::COMPUTE,
                    t,
                    span::arg2("chunks", chunks, "morsels", morsels),
                );
            }
            let t_flush_ns = sbuf.as_ref().map(|b| b.now_ns());
            // Flush fragments partition by partition, staggered by worker
            // id so concurrent flushes mostly touch different slot locks.
            // The flush that completes a partition publishes it.
            for k in 0..partitions {
                let p = (k + wid) % partitions;
                let frag = local.data.take_partition(p);
                handoff.slots[p].lock().merge_from(frag);
                if handoff.pending[p].fetch_sub(1, Ordering::AcqRel) == 1 {
                    let bytes = handoff.slots[p].lock().data_bytes();
                    let mut ready = handoff.ready.lock();
                    ready.push((bytes, p));
                    handoff.ready_cv.notify_one();
                    if let Some(b) = &sbuf {
                        b.instant(
                            "publish",
                            span_cat::COMPUTE,
                            span::arg1("partition", p as u64),
                        );
                    }
                }
            }
            if let (Some(b), Some(t)) = (&sbuf, t_flush_ns) {
                b.complete(
                    "flush",
                    span_cat::COMPUTE,
                    t,
                    span::arg1("partitions", partitions as u64),
                );
            }
            drop(local); // frees the probe table before merging starts
            let probe_busy = t_worker.elapsed();
            collector.add_busy_to(Phase::Probe, probe_busy);
            collector.add_units_to(Phase::Probe, chunks);
            collector.record_worker(wid, probe_busy, morsels, chunks);
            if handoff.flushers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Every fragment is flushed: phase 1 is over. Stamp its
                // wall and the buffer stats snapshot that attributes
                // background I/O overlap to the right phase.
                handoff
                    .phase1_nanos
                    .store(t0.elapsed().as_nanos() as u64, Ordering::Release);
                *handoff.stats_mid.lock() = Some(mgr.stats());
                let _g = handoff.ready.lock();
                handoff.ready_cv.notify_all();
            }
            // Merge loop: claim ready partitions (largest first) until the
            // run drains — or until waiting would be unsound because not
            // every worker body has started (saturated pool runs bodies
            // sequentially; the final body drains the leftovers). Claims
            // hold off while any worker is still *probing*: probe pages are
            // pinned, and pinning phase-2 partitions on top of them would
            // raise the peak pinned footprint past what admission promised.
            // Flushed fragments are unpinned, so merging overlaps the
            // remaining flush work freely.
            let mut merge_busy = Duration::ZERO;
            loop {
                let claim = loop {
                    if handoff.failed.load(Ordering::Acquire) {
                        return Err(Error::Cancelled);
                    }
                    // Loaded *before* the ready lock: observing zero means
                    // every flush (and its ready-publish) happens-before
                    // this lock acquisition, so an empty list is final.
                    let flushers_left = handoff.flushers.load(Ordering::Acquire);
                    let probing = handoff.probers.load(Ordering::Acquire) > 0;
                    let all_started = handoff.started.load(Ordering::Acquire) >= threads_n;
                    let mut ready = handoff.ready.lock();
                    if !probing {
                        if let Some(k) = lpt_claim(&ready) {
                            break Some(ready.swap_remove(k));
                        }
                    }
                    if flushers_left == 0 || !all_started {
                        break None;
                    }
                    let _timeout = handoff
                        .ready_cv
                        .wait_for(&mut ready, Duration::from_millis(5));
                };
                let Some((_, p)) = claim else { break };
                let t_merge = Instant::now();
                let t_merge_ns = sbuf.as_ref().map(|b| {
                    b.instant(
                        "claim",
                        span_cat::COMPUTE,
                        span::arg1("partition", p as u64),
                    );
                    b.now_ns()
                });
                // Read-ahead: warm the largest still-queued partitions so
                // their spilled pages are resident by the time a worker
                // claims them.
                if depth > 0 {
                    let snapshot: Vec<(usize, usize)> = handoff.ready.lock().clone();
                    let sizes: Vec<usize> = snapshot.iter().map(|&(b, _)| b).collect();
                    let mut warmed = 0usize;
                    for pos in lpt_order(&sizes) {
                        if warmed >= depth {
                            break;
                        }
                        let pi = snapshot[pos].1;
                        if !handoff.prefetched[pi].swap(true, Ordering::Relaxed) {
                            handoff.slots[pi].lock().prefetch_all();
                            warmed += 1;
                        }
                    }
                }
                let part = {
                    let mut slot = handoff.slots[p].lock();
                    std::mem::replace(
                        &mut *slot,
                        TupleDataCollection::new(Arc::clone(mgr), Arc::clone(&bound.layout)),
                    )
                };
                collector.add_units_to(Phase::Merge, 1);
                finalize_partition(
                    &bound,
                    mgr,
                    config,
                    ctx,
                    p,
                    spill_baseline,
                    part,
                    consumer,
                    &groups_out,
                    sbuf.as_deref(),
                )?;
                if let (Some(b), Some(t)) = (&sbuf, t_merge_ns) {
                    b.complete(
                        "merge",
                        span_cat::COMPUTE,
                        t,
                        span::arg1("partition", p as u64),
                    );
                }
                merge_busy += t_merge.elapsed();
            }
            collector.add_busy_to(Phase::Merge, merge_busy);
            guard.armed = false;
            Ok(())
        };
        if threads_n == 1 {
            worker()?;
        } else {
            ctx.run_units(threads_n, &worker)?;
        }
        // Phase walls under overlap: phase 1 ends when the last fragment
        // flushes; everything after is merge. The old partition step is a
        // per-partition handoff now — it has no wall of its own.
        stats_mid = handoff.stats_mid.lock().take();
        let phase1 = Duration::from_nanos(handoff.phase1_nanos.load(Ordering::Acquire));
        let phase2 = t0.elapsed().saturating_sub(phase1);
        collector.set_phase_wall(Phase::Probe, phase1);
        collector.set_phase_wall(Phase::Partition, Duration::ZERO);
        collector.set_phase_wall(Phase::Sort, Duration::ZERO);
        collector.set_phase_wall(Phase::Merge, phase2);
        if let (Some(b), Some(t0n)) = (&cbuf, t0_ns) {
            // Phase lanes on the coordinator track: the wall-clock extent
            // of phase 1 (until the last fragment flushed) and phase 2,
            // for orientation above the per-worker tracks.
            let p1 = phase1.as_nanos() as u64;
            let p2 = phase2.as_nanos() as u64;
            b.complete_between("phase 1", span_cat::COMPUTE, t0n, t0n + p1, span::NO_ARGS);
            b.complete_between(
                "phase 2",
                span_cat::COMPUTE,
                t0n + p1,
                t0n + p1 + p2,
                span::NO_ARGS,
            );
        }
        // An input too small to sample (or empty) never decides: it ran
        // thread-local throughout, so record that.
        if sink.decision.load(Ordering::Acquire) == DECIDE_PENDING {
            sink.settle_local();
        }
        let rows_in = sink.rows_in.load(Ordering::Relaxed);
        let resets = sink.resets.load(Ordering::Relaxed);
        Ok((phase1, phase2, rows_in, resets))
    })();

    // Wait out any in-flight background writes/reads: a deferred spill error
    // belongs to this query, and the stats delta below must not race active
    // I/O. The run's own error (if any) takes precedence.
    let t_drain_ns = cbuf.as_ref().map(|b| b.now_ns());
    let drained = mgr.drain_io();
    if let (Some(b), Some(t)) = (&cbuf, t_drain_ns) {
        b.complete("drain_io", span_cat::IO, t, span::NO_ARGS);
    }
    let (phase1, phase2, rows_in, resets) = run?;
    drained?;

    let groups = groups_out.load(Ordering::Relaxed);
    let stats_after = mgr.stats();
    let buffer = stats_after.delta_since(&stats_before);
    if let Some(mid) = &stats_mid {
        // Background I/O that overlapped each phase: spill writes issued
        // while the probe ran; writes plus read-ahead loads during the
        // merge.
        let d1 = mid.delta_since(&stats_before);
        collector.set_phase_overlap(Phase::Probe, Duration::from_nanos(d1.bg_write_nanos));
        let d2 = stats_after.delta_since(mid);
        collector.set_phase_overlap(
            Phase::Merge,
            Duration::from_nanos(d2.bg_write_nanos + d2.readahead_nanos),
        );
    }
    collector.set_readahead(buffer.readahead_hits, buffer.readahead_misses);
    collector.set_phase(Phase::Finalize);
    collector.add_rows_in(rows_in as u64);
    collector.add_groups(groups as u64);
    collector.add_ht_resets(resets);
    collector.set_spill_io(
        buffer.temp_bytes_written,
        buffer.temp_bytes_read,
        buffer.spill_retries,
        buffer.evictions_persistent + buffer.evictions_temporary,
    );
    let operator = match config.kernel_mode {
        KernelMode::Vectorized => "HASH_AGGREGATE (vectorized)",
        KernelMode::Scalar => "HASH_AGGREGATE (scalar)",
    };
    let mut profile = collector.finish(operator, t_run.elapsed());
    if let Some(sc) = &spans {
        // The workers have joined and `drain_io` waited out the background
        // jobs, so every buffer for this query is quiescent: merge them
        // into the profile. Non-destructive — a service collector carrying
        // admission spans keeps them for its own export.
        profile.timeline = sc.merge();
    }

    Ok(RunStats {
        rows_in,
        groups,
        partitions,
        resets,
        phase1,
        phase2,
        buffer,
        profile,
    })
}

/// Run the aggregation and collect the output in memory (convenient for
/// tests and small results; large results should stream).
pub fn hash_aggregate_collect(
    mgr: &Arc<BufferManager>,
    source: &dyn ChunkSource,
    input_schema: &[LogicalType],
    plan: &HashAggregatePlan,
    config: &AggregateConfig,
) -> Result<(rexa_exec::ChunkCollection, RunStats)> {
    let bound = bind_plan(plan, input_schema)?;
    let out = Mutex::new(rexa_exec::ChunkCollection::new(bound.output_types.clone()));
    let stats = hash_aggregate_streaming(mgr, source, input_schema, plan, config, &|chunk| {
        out.lock().push(chunk)
    })?;
    Ok((out.into_inner(), stats))
}

/// The output schema (group columns then aggregates) of a plan against an
/// input schema.
pub fn output_schema(
    plan: &HashAggregatePlan,
    input_schema: &[LogicalType],
) -> Result<Vec<LogicalType>> {
    Ok(bind_plan(plan, input_schema)?.output_types)
}

/// Bytes per materialized row (hash, group keys, aggregate states) for a
/// plan against an input schema. Footprint estimators use this to size the
/// pinned-partition part of a query's memory demand.
pub fn plan_row_width(plan: &HashAggregatePlan, input_schema: &[LogicalType]) -> Result<usize> {
    Ok(bind_plan(plan, input_schema)?.layout.row_width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::{reference_aggregate, sorted_rows};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rexa_buffer::{BufferManagerConfig, EvictionPolicy};
    use rexa_exec::pipeline::CollectionSource;
    use rexa_exec::{ChunkCollection, Value};
    use rexa_storage::scratch_dir;

    fn mgr_with(limit: usize, page_size: usize) -> Arc<BufferManager> {
        BufferManager::new(
            BufferManagerConfig::with_limit(limit)
                .page_size(page_size)
                .policy(EvictionPolicy::Mixed)
                .temp_dir(scratch_dir("agg").unwrap()),
        )
        .unwrap()
    }

    /// rows of (key % groups, value, string derived from key)
    fn make_input(rows: usize, groups: usize, seed: u64) -> ChunkCollection {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coll = ChunkCollection::new(vec![
            LogicalType::Int64,
            LogicalType::Int64,
            LogicalType::Varchar,
        ]);
        let mut remaining = rows;
        while remaining > 0 {
            let n = remaining.min(VECTOR_SIZE);
            remaining -= n;
            let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..groups) as i64).collect();
            let vals: Vec<i64> = keys.iter().map(|k| k * 10).collect();
            let strs: Vec<String> = keys
                .iter()
                .map(|k| {
                    if k % 2 == 0 {
                        format!("k{k}")
                    } else {
                        format!("group number {k} with a long string payload")
                    }
                })
                .collect();
            coll.push(DataChunk::new(vec![
                Vector::from_i64(keys),
                Vector::from_i64(vals),
                Vector::from_strs(strs),
            ]))
            .unwrap();
        }
        coll
    }

    fn check_against_reference(
        coll: &ChunkCollection,
        plan: &HashAggregatePlan,
        config: &AggregateConfig,
        mgr: &Arc<BufferManager>,
    ) -> RunStats {
        let source = CollectionSource::new(coll);
        let (out, stats) =
            hash_aggregate_collect(mgr, &source, coll.types(), plan, config).unwrap();
        let got = sorted_rows(out.chunks());
        let source = CollectionSource::new(coll);
        let want =
            reference_aggregate(&source, coll.types(), &plan.group_cols, &plan.aggregates).unwrap();
        assert_eq!(got.len(), want.len(), "group count mismatch");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w);
        }
        assert_eq!(stats.groups, want.len());
        stats
    }

    fn small_config(threads: usize) -> AggregateConfig {
        AggregateConfig {
            threads,
            radix_bits: Some(3),
            ht_capacity: 4 * VECTOR_SIZE, // small: force frequent resets
            output_chunk_size: 512,
            reset_fill_percent: 66,
            ..Default::default()
        }
    }

    #[test]
    fn lpt_order_sorts_skewed_partitions_largest_first() {
        // Zipf-ish partition payloads: one giant, a few mid-size, a long
        // tail of near-empty partitions (what radix partitioning produces
        // over skewed keys).
        let sizes = [4096, 0, 786_432, 64, 8_388_608, 4096, 0, 131_072];
        let order = lpt_order(&sizes);
        assert_eq!(order, vec![4, 2, 7, 0, 5, 3, 1, 6]);
        // The schedule is a permutation, monotonically non-increasing in
        // size, with ties broken on the lower index (0 before 5, 1 before 6).
        for w in order.windows(2) {
            assert!(sizes[w[0]] >= sizes[w[1]]);
            if sizes[w[0]] == sizes[w[1]] {
                assert!(w[0] < w[1]);
            }
        }
        assert!(lpt_order(&[]).is_empty());
        assert_eq!(lpt_order(&[7]), vec![0]);
    }

    #[test]
    fn matches_reference_single_thread() {
        let coll = make_input(20_000, 500, 1);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::min(1),
                AggregateSpec::max(1),
                AggregateSpec::avg(1),
            ],
        };
        let stats = check_against_reference(&coll, &plan, &small_config(1), &mgr);
        assert_eq!(stats.rows_in, 20_000);
    }

    #[test]
    fn matches_reference_multi_thread() {
        let coll = make_input(50_000, 2_000, 2);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        for threads in [2, 4, 8] {
            check_against_reference(&coll, &plan, &small_config(threads), &mgr);
        }
    }

    #[test]
    fn spill_failure_aborts_cleanly_and_releases_everything() {
        use rexa_storage::{FaultInjector, FaultKind, FaultRule, IoBackend, IoOp, Schedule};
        // Same geometry as `spills_under_tight_memory_and_stays_correct`,
        // but every spill write hits ENOSPC: the run must abort with the
        // typed error, release every pin / reservation / temp slot, and
        // leave the manager fit for an immediate fault-free rerun.
        let coll = make_input(60_000, 60_000, 5);
        let injector = Arc::new(FaultInjector::new(9).rule(FaultRule::on(
            IoOp::Write,
            Schedule::Always,
            FaultKind::Enospc,
        )));
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(coll.approx_bytes() / 2)
                .page_size(4 << 10)
                .policy(EvictionPolicy::Mixed)
                .temp_dir(scratch_dir("aggfault").unwrap())
                .io_backend(Arc::clone(&injector) as Arc<dyn IoBackend>),
        )
        .unwrap();
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        let config = AggregateConfig {
            threads: 4,
            radix_bits: Some(5),
            ht_capacity: 4 * VECTOR_SIZE,
            output_chunk_size: VECTOR_SIZE,
            reset_fill_percent: 66,
            ..Default::default()
        };
        let source = CollectionSource::new(&coll);
        let err = hash_aggregate_collect(&mgr, &source, coll.types(), &plan, &config)
            .expect_err("a spilling run cannot succeed with all spill writes failing");
        assert!(
            matches!(err, rexa_exec::Error::SpillFailed { .. }),
            "expected SpillFailed, got {err}"
        );
        let s = mgr.stats();
        assert_eq!(s.temporary_resident, 0, "leaked pages: {s:?}");
        assert_eq!(s.non_paged, 0, "leaked reservation: {s:?}");
        assert_eq!(s.temp_bytes_on_disk, 0, "leaked spill bytes: {s:?}");
        assert_eq!(mgr.temp_slots_in_use(), 0, "leaked temp slot");
        assert!(s.spill_failures > 0, "{s:?}");
        // Disk recovers; the identical run on the same manager is correct.
        injector.set_enabled(false);
        let stats = check_against_reference(&coll, &plan, &config, &mgr);
        assert!(stats.buffer.evictions_temporary > 0, "{:?}", stats.buffer);
    }

    #[test]
    fn string_group_keys() {
        let coll = make_input(30_000, 300, 3);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![2], // varchar column, mix of inline + heap strings
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        check_against_reference(&coll, &plan, &small_config(4), &mgr);
    }

    #[test]
    fn multi_column_keys_with_any_value() {
        let coll = make_input(25_000, 100, 4);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0, 2],
            aggregates: vec![
                AggregateSpec::any_value(2),
                AggregateSpec::any_value(1),
                AggregateSpec::count_star(),
            ],
        };
        check_against_reference(&coll, &plan, &small_config(4), &mgr);
    }

    #[test]
    fn all_unique_groups() {
        // Worst case for pre-aggregation: no reduction at all.
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64]);
        let mut k = 0i64;
        for _ in 0..10 {
            let keys: Vec<i64> = (0..VECTOR_SIZE as i64).map(|i| k + i).collect();
            k += VECTOR_SIZE as i64;
            coll.push(DataChunk::new(vec![Vector::from_i64(keys)]))
                .unwrap();
        }
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star()],
        };
        let stats = check_against_reference(&coll, &plan, &small_config(4), &mgr);
        assert_eq!(stats.groups, 10 * VECTOR_SIZE);
    }

    #[test]
    fn all_same_group() {
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
        for _ in 0..5 {
            coll.push(DataChunk::new(vec![
                Vector::from_i64(vec![7; 1000]),
                Vector::from_i64((0..1000).collect()),
            ]))
            .unwrap();
        }
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        let stats = check_against_reference(&coll, &plan, &small_config(4), &mgr);
        assert_eq!(stats.groups, 1);
    }

    #[test]
    fn null_group_keys_form_one_group() {
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
        let mut chunk = DataChunk::empty(coll.types());
        for i in 0..100i64 {
            let key = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int64(i % 5)
            };
            chunk.push_row(&[key, Value::Int64(i)]).unwrap();
        }
        coll.push(chunk).unwrap();
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        check_against_reference(&coll, &plan, &small_config(2), &mgr);
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let coll = ChunkCollection::new(vec![LogicalType::Int64]);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star()],
        };
        let source = CollectionSource::new(&coll);
        let (out, stats) =
            hash_aggregate_collect(&mgr, &source, coll.types(), &plan, &small_config(4)).unwrap();
        assert_eq!(out.rows(), 0);
        assert_eq!(stats.groups, 0);
    }

    #[test]
    fn spills_under_tight_memory_and_stays_correct() {
        // High-cardinality aggregation with a limit far below the
        // intermediate size: the buffer manager must spill, and the result
        // must still be exact. This is the paper's headline behaviour.
        let coll = make_input(60_000, 60_000, 5);
        let approx = coll.approx_bytes();
        // Phase 1 needs threads x partitions x 2 pinned pages; with 4 KiB
        // pages, 4 threads and 32 partitions that is 1 MiB, below the
        // ~1.7 MiB limit — while the ~6 MiB of intermediates exceed it.
        let mgr = mgr_with(approx / 2, 4 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0, 2],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::any_value(2),
            ],
        };
        let config = AggregateConfig {
            threads: 4,
            radix_bits: Some(5), // over-partitioning keeps phase 2 in memory
            ht_capacity: 4 * VECTOR_SIZE,
            output_chunk_size: VECTOR_SIZE,
            reset_fill_percent: 66,
            ..Default::default()
        };
        let stats = check_against_reference(&coll, &plan, &config, &mgr);
        assert!(
            stats.buffer.evictions_temporary > 0,
            "expected spilling, got {:?}",
            stats.buffer
        );
        assert!(stats.buffer.temp_bytes_written > 0);
        assert!(stats.resets > 0, "small table must have reset");
        // Eager destroy: after the run, no temp data is left on disk.
        assert_eq!(mgr.stats().temp_bytes_on_disk, 0);
        assert_eq!(mgr.stats().temporary_resident, 0);
    }

    #[test]
    fn graceful_error_when_phase2_partition_cannot_fit() {
        // Pathological: 1 partition, tiny limit -> phase 2 must pin more
        // than fits. The operator reports OOM instead of corrupting.
        let coll = make_input(40_000, 40_000, 6);
        let mgr = mgr_with(320 << 10, 16 << 10); // 20 pages
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star()],
        };
        let config = AggregateConfig {
            threads: 2,
            radix_bits: Some(0), // no over-partitioning: provoke the failure
            ht_capacity: 4 * VECTOR_SIZE,
            output_chunk_size: VECTOR_SIZE,
            reset_fill_percent: 66,
            ..Default::default()
        };
        let source = CollectionSource::new(&coll);
        let err = hash_aggregate_collect(&mgr, &source, coll.types(), &plan, &config).unwrap_err();
        assert!(err.is_oom(), "expected OOM, got {err}");
    }

    #[test]
    fn output_schema_matches_plan() {
        let schema = vec![
            LogicalType::Int64,
            LogicalType::Varchar,
            LogicalType::Float64,
        ];
        let plan = HashAggregatePlan {
            group_cols: vec![1],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(2),
                AggregateSpec::any_value(0),
            ],
        };
        assert_eq!(
            output_schema(&plan, &schema).unwrap(),
            vec![
                LogicalType::Varchar,
                LogicalType::Int64,
                LogicalType::Float64,
                LogicalType::Int64
            ]
        );
    }

    #[test]
    fn rejects_string_min() {
        let schema = vec![LogicalType::Varchar];
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::min(0)],
        };
        assert!(matches!(
            output_schema(&plan, &schema),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_empty_group_by() {
        let schema = vec![LogicalType::Int64];
        let plan = HashAggregatePlan {
            group_cols: vec![],
            aggregates: vec![AggregateSpec::count_star()],
        };
        assert!(output_schema(&plan, &schema).is_err());
    }

    #[test]
    fn pooled_context_matches_reference() {
        use rexa_exec::pool::WorkerPool;
        let coll = make_input(30_000, 800, 11);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        let ctx = ExecContext::with_pool(Arc::new(WorkerPool::new(4)));
        let source = CollectionSource::new(&coll);
        let out = Mutex::new(ChunkCollection::new(
            output_schema(&plan, coll.types()).unwrap(),
        ));
        let stats = hash_aggregate_streaming_ctx(
            &mgr,
            &source,
            coll.types(),
            &plan,
            &small_config(4),
            &ctx,
            &|chunk| out.lock().push(chunk),
        )
        .unwrap();
        let got = sorted_rows(out.into_inner().chunks());
        let source = CollectionSource::new(&coll);
        let want =
            reference_aggregate(&source, coll.types(), &plan.group_cols, &plan.aggregates).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.rows_in, 30_000);
    }

    #[test]
    fn cancelled_context_aborts_and_releases_everything() {
        let coll = make_input(40_000, 40_000, 12);
        let mgr = mgr_with(64 << 20, 4 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star()],
        };
        let ctx = ExecContext::new();
        ctx.cancel_token().cancel();
        let source = CollectionSource::new(&coll);
        let err = hash_aggregate_streaming_ctx(
            &mgr,
            &source,
            coll.types(),
            &plan,
            &small_config(4),
            &ctx,
            &|_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Cancelled));
        // Everything the run pinned or spilled must be gone.
        assert_eq!(mgr.stats().temporary_resident, 0);
        assert_eq!(mgr.stats().temp_bytes_on_disk, 0);
    }

    #[test]
    fn deterministic_results_across_runs() {
        let coll = make_input(30_000, 1_000, 7);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::sum(1), AggregateSpec::count_star()],
        };
        let run = |threads| {
            let source = CollectionSource::new(&coll);
            let (out, _) =
                hash_aggregate_collect(&mgr, &source, coll.types(), &plan, &small_config(threads))
                    .unwrap();
            sorted_rows(out.chunks())
        };
        let a = run(1);
        let b = run(4);
        let c = run(8);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    /// Exact (bitwise for floats) row equality. `Value`'s derived
    /// `PartialEq` rejects `NaN == NaN`, so NaN-bearing results compare via
    /// `total_cmp`, which is `Equal` iff the bits are.
    fn assert_rows_bits_equal(got: &[Vec<Value>], want: &[Vec<Value>]) {
        assert_eq!(got.len(), want.len(), "row count mismatch");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.len(), w.len());
            for (a, b) in g.iter().zip(w) {
                assert!(
                    a.total_cmp(b) == std::cmp::Ordering::Equal,
                    "value mismatch: {a:?} vs {b:?}\n got row {g:?}\nwant row {w:?}"
                );
            }
        }
    }

    #[test]
    fn negative_zero_float_key_joins_zero_group() {
        // -0.0 and 0.0 must form one group end to end — hashing, probe
        // compares, pending-entry compares, and the materialized key bytes
        // all normalize — and the surfaced key must be +0.0. NaN keys group
        // bitwise (both rows use the same NAN constant here).
        let mut coll = ChunkCollection::new(vec![LogicalType::Float64, LogicalType::Int64]);
        coll.push(DataChunk::new(vec![
            Vector::from_f64(vec![0.0, -0.0, 1.5, -0.0, 0.0, f64::NAN, f64::NAN]),
            Vector::from_i64(vec![0, 1, 2, 3, 4, 5, 6]),
        ]))
        .unwrap();
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        for mode in [KernelMode::Vectorized, KernelMode::Scalar] {
            let config = AggregateConfig {
                kernel_mode: mode,
                ..small_config(1)
            };
            let source = CollectionSource::new(&coll);
            let (out, stats) =
                hash_aggregate_collect(&mgr, &source, coll.types(), &plan, &config).unwrap();
            assert_eq!(stats.groups, 3, "{mode:?}: zeros one group, NaNs one group");
            let got = sorted_rows(out.chunks());
            let source = CollectionSource::new(&coll);
            let want =
                reference_aggregate(&source, coll.types(), &plan.group_cols, &plan.aggregates)
                    .unwrap();
            assert_rows_bits_equal(&got, &want);
            let zero = got
                .iter()
                .find(|r| matches!(r[0], Value::Float64(f) if f == 0.0))
                .unwrap();
            assert!(
                matches!(zero[0], Value::Float64(f) if f.to_bits() == 0),
                "{mode:?}: key must materialize as +0.0, got {:?}",
                zero[0]
            );
            assert_eq!(
                zero[1],
                Value::Int64(4),
                "{mode:?}: count of the zero group"
            );
            assert_eq!(zero[2], Value::Int64(8), "{mode:?}: sum of the zero group");
        }
    }

    #[test]
    fn adversarial_shared_salt_keys() {
        // 256 distinct i64 keys whose hashes all share one 16-bit salt:
        // every probe collision among them survives the salt filter, so
        // correctness rests entirely on the full key compares
        // (`rows_match_sel` in phase 1, `row_row_match_sel` in phase 2).
        // Filler keys keep the table filling up so probe chains are long.
        let target = hashing::salt(hashing::hash_u64(0));
        let mut colliders: Vec<i64> = vec![];
        let mut k = 0i64;
        while colliders.len() < 256 {
            if hashing::salt(hashing::hash_u64(k as u64)) == target {
                colliders.push(k);
            }
            k += 1;
        }
        let mut rng = StdRng::seed_from_u64(31);
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
        let mut filler = 1_000_000_000i64;
        for _ in 0..4 {
            // Half collider occurrences (duplicates within the chunk hit
            // the pending path), half fresh filler groups; shuffled so the
            // two interleave inside every selection vector.
            let mut keys: Vec<i64> = vec![];
            for _ in 0..4 {
                keys.extend_from_slice(&colliders);
            }
            while keys.len() < VECTOR_SIZE {
                keys.push(filler);
                filler += 1;
            }
            for i in (1..keys.len()).rev() {
                keys.swap(i, rng.gen_range(0..=i));
            }
            let vals: Vec<i64> = keys.iter().map(|v| v.wrapping_mul(7)).collect();
            coll.push(DataChunk::new(vec![
                Vector::from_i64(keys),
                Vector::from_i64(vals),
            ]))
            .unwrap();
        }
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::min(1),
            ],
        };
        for mode in [KernelMode::Vectorized, KernelMode::Scalar] {
            for threads in [1, 4] {
                let config = AggregateConfig {
                    kernel_mode: mode,
                    ..small_config(threads)
                };
                check_against_reference(&coll, &plan, &config, &mgr);
            }
        }
    }

    #[test]
    fn probe_wraps_past_table_end() {
        // 64 distinct keys whose initial slot lands in the last 4 entries
        // of the phase-1 table: their probe chains collide at the end of
        // the entry array and must wrap around to slot 0. Duplicates within
        // a chunk make pending entries wrap too.
        let cap = 4 * VECTOR_SIZE; // small_config's ht_capacity
        let mask = cap as u64 - 1;
        let mut keys: Vec<i64> = vec![];
        let mut k = 0i64;
        while keys.len() < 64 {
            if hashing::hash_u64(k as u64) & mask >= mask - 3 {
                keys.push(k);
            }
            k += 1;
        }
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
        for _ in 0..3 {
            let mut ks: Vec<i64> = vec![];
            while ks.len() + keys.len() <= VECTOR_SIZE {
                ks.extend_from_slice(&keys);
            }
            let vals: Vec<i64> = ks.iter().map(|v| v.wrapping_mul(13)).collect();
            coll.push(DataChunk::new(vec![
                Vector::from_i64(ks),
                Vector::from_i64(vals),
            ]))
            .unwrap();
        }
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::max(1),
            ],
        };
        for mode in [KernelMode::Vectorized, KernelMode::Scalar] {
            let config = AggregateConfig {
                kernel_mode: mode,
                ..small_config(1)
            };
            let stats = check_against_reference(&coll, &plan, &config, &mgr);
            assert_eq!(stats.groups, 64, "{mode:?}");
        }
    }

    #[test]
    fn chunk_lands_exactly_on_reset_boundary() {
        // reset_fill_percent: 50 with capacity 8192 puts the reset
        // threshold at exactly 4096 occupied slots — two full chunks of
        // unique keys. Every second chunk triggers a reset precisely at the
        // boundary; a final chunk repeating earlier keys must rediscover
        // them as fresh groups in the cleared table without double counting.
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
        let mut k = 0i64;
        for _ in 0..6 {
            let keys: Vec<i64> = (k..k + VECTOR_SIZE as i64).collect();
            k += VECTOR_SIZE as i64;
            let vals: Vec<i64> = keys.iter().map(|v| v * 3).collect();
            coll.push(DataChunk::new(vec![
                Vector::from_i64(keys),
                Vector::from_i64(vals),
            ]))
            .unwrap();
        }
        let keys: Vec<i64> = (0..VECTOR_SIZE as i64).collect();
        let vals: Vec<i64> = keys.iter().map(|v| v * 3).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_i64(keys),
            Vector::from_i64(vals),
        ]))
        .unwrap();
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        for mode in [KernelMode::Vectorized, KernelMode::Scalar] {
            let config = AggregateConfig {
                threads: 1,
                radix_bits: Some(3),
                ht_capacity: 4 * VECTOR_SIZE,
                output_chunk_size: 512,
                reset_fill_percent: 50,
                kernel_mode: mode,
                ..Default::default()
            };
            let stats = check_against_reference(&coll, &plan, &config, &mgr);
            assert!(
                stats.resets >= 2,
                "{mode:?}: expected resets, got {stats:?}"
            );
        }
    }

    #[test]
    fn profile_matches_ground_truth_under_memory_pressure() {
        // Same geometry as `spills_under_tight_memory_and_stays_correct`:
        // the QueryProfile in RunStats must agree with the independently
        // tracked RunStats fields and the buffer-manager deltas, and the
        // rendered report must carry the numbers through.
        let coll = make_input(60_000, 60_000, 5);
        let mgr = mgr_with(coll.approx_bytes() / 2, 4 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0, 2],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        let config = AggregateConfig {
            threads: 4,
            radix_bits: Some(5),
            ht_capacity: 4 * VECTOR_SIZE,
            output_chunk_size: VECTOR_SIZE,
            reset_fill_percent: 66,
            ..Default::default()
        };
        let source = CollectionSource::new(&coll);
        let (out, stats) =
            hash_aggregate_collect(&mgr, &source, coll.types(), &plan, &config).unwrap();
        let p = &stats.profile;
        assert_eq!(p.operator, "HASH_AGGREGATE (vectorized)");
        assert_eq!(p.threads, 4);
        assert_eq!(p.rows_in, stats.rows_in as u64);
        assert_eq!(p.rows_out, out.rows() as u64, "every group emitted once");
        assert_eq!(p.groups, stats.groups as u64);
        assert_eq!(p.ht_resets, stats.resets);
        assert_eq!(p.partitions, 32);
        assert!(
            p.partitions_external > 0,
            "tight memory must push partitions external: {p:?}"
        );
        assert!(p.partitions_external <= p.partitions);
        assert_eq!(p.spill_bytes_written, stats.buffer.temp_bytes_written);
        assert_eq!(p.spill_bytes_read, stats.buffer.temp_bytes_read);
        assert_eq!(
            p.evictions,
            stats.buffer.evictions_temporary + stats.buffer.evictions_persistent
        );
        assert!(p.spill_bytes_written > 0, "the run must have spilled");
        // Phase walls track the independently measured RunStats timings.
        let probe = &p.phases[Phase::Probe.index()];
        let merge = &p.phases[Phase::Merge.index()];
        assert_eq!(probe.wall, stats.phase1);
        assert_eq!(merge.wall, stats.phase2);
        assert!(probe.busy > Duration::ZERO, "workers recorded probe time");
        assert!(merge.busy > Duration::ZERO);
        assert!(
            probe.units > 0 && probe.units <= stats.rows_in as u64,
            "probe units are chunks: {}",
            probe.units
        );
        assert_eq!(merge.units, 32, "merge units are partition tasks");
        assert!(p.wall >= stats.phase1 + stats.phase2);
        // The rendered report carries the ground-truth numbers.
        let report = p.render();
        assert!(report.contains("HASH_AGGREGATE (vectorized)"), "{report}");
        assert!(
            report.contains(&format!("rows_in {}", stats.rows_in)),
            "{report}"
        );
        assert!(
            report.contains(&format!("groups {}", stats.groups)),
            "{report}"
        );
        assert!(
            report.contains(&format!(
                "spill_bytes_written {}",
                stats.buffer.temp_bytes_written
            )),
            "{report}"
        );
        assert!(
            report.contains(&format!("({} external)", p.partitions_external)),
            "{report}"
        );
    }

    #[test]
    fn async_io_with_readahead_is_correct_and_registers_hits() {
        // The spill-heavy geometry, but through a manager with background
        // I/O workers: eviction writes happen off the worker threads and
        // phase 2 prefetches upcoming partitions. Results must still match
        // the reference oracle exactly, read-ahead must convert at least one
        // synchronous reload into a background hit, and the overlap the
        // profile reports must be real (nonzero merge-phase overlap).
        let coll = make_input(60_000, 60_000, 9);
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(coll.approx_bytes() / 2)
                .page_size(4 << 10)
                .policy(EvictionPolicy::Mixed)
                .temp_dir(scratch_dir("agg_async").unwrap())
                .io_writers(2),
        )
        .unwrap();
        let plan = HashAggregatePlan {
            group_cols: vec![0, 2],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        let config = AggregateConfig {
            threads: 4,
            radix_bits: Some(5),
            ht_capacity: 4 * VECTOR_SIZE,
            readahead_depth: 2,
            ..Default::default()
        };
        let stats = check_against_reference(&coll, &plan, &config, &mgr);
        let p = &stats.profile;
        assert!(
            stats.buffer.temp_bytes_written > 0,
            "the run must have spilled: {:?}",
            stats.buffer
        );
        assert!(
            p.readahead_hits > 0,
            "phase-2 read-ahead produced no hits: {p:?}"
        );
        assert!(
            !p.phases[Phase::Merge.index()].overlap.is_zero(),
            "background reads during the merge must register as overlap"
        );
        // Everything the query touched is released again.
        let s = mgr.stats();
        assert_eq!(s.memory_used, 0, "accounting must return to zero: {s:?}");
        assert_eq!(s.temp_bytes_on_disk, 0);
    }

    #[test]
    fn profile_without_spilling_reports_zero_spill_io() {
        let coll = make_input(20_000, 500, 1);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::count_star(), AggregateSpec::sum(1)],
        };
        let stats = check_against_reference(&coll, &plan, &small_config(2), &mgr);
        let p = &stats.profile;
        assert_eq!(p.spill_bytes_written, 0);
        assert_eq!(p.partitions_external, 0);
        assert_eq!(p.rows_in, 20_000);
        assert_eq!(p.threads, 2);
    }

    #[test]
    fn scalar_and_vectorized_bit_identical_single_thread() {
        // Float aggregates are order-sensitive; at threads: 1 the
        // vectorized path must reproduce the scalar oracle bit for bit
        // (same probe order, same update order, same phase-2 combine
        // order), including NaN propagation and signed zeros.
        let mut rng = StdRng::seed_from_u64(99);
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Float64]);
        for _ in 0..8 {
            let keys: Vec<i64> = (0..VECTOR_SIZE).map(|_| rng.gen_range(0..200i64)).collect();
            let vals: Vec<f64> = keys
                .iter()
                .map(|&k| match k % 7 {
                    0 => f64::NAN,
                    1 => -0.0,
                    2 => k as f64 * 1e-3,
                    3 => -(k as f64) * 1e15,
                    _ => rng.gen::<f64>() * 100.0 - 50.0,
                })
                .collect();
            let mut validity = rexa_exec::Validity::all_valid(VECTOR_SIZE);
            for i in 0..VECTOR_SIZE {
                if rng.gen_bool(0.2) {
                    validity.set_invalid(i);
                }
            }
            coll.push(DataChunk::new(vec![
                Vector::from_i64(keys),
                Vector::from_f64_validity(vals, validity),
            ]))
            .unwrap();
        }
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::avg(1),
                AggregateSpec::min(1),
                AggregateSpec::max(1),
                AggregateSpec::var_samp(1),
                AggregateSpec::stddev_samp(1),
            ],
        };
        let run = |mode| {
            let config = AggregateConfig {
                kernel_mode: mode,
                ..small_config(1)
            };
            let source = CollectionSource::new(&coll);
            let (out, _) =
                hash_aggregate_collect(&mgr, &source, coll.types(), &plan, &config).unwrap();
            sorted_rows(out.chunks())
        };
        let scalar = run(KernelMode::Scalar);
        let vectorized = run(KernelMode::Vectorized);
        assert_rows_bits_equal(&vectorized, &scalar);
    }

    #[test]
    fn adaptive_picks_shared_on_low_cardinality() {
        // 256 groups over 150k rows: dense, cache-resident — the sampling
        // worker sees every condition for the shared table.
        let coll = make_input(150_000, 256, 11);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::sum(1), AggregateSpec::count_star()],
        };
        let config = AggregateConfig {
            threads: 4,
            radix_bits: Some(3),
            ..Default::default()
        };
        let mgr = mgr_with(64 << 20, 64 << 10);
        let stats = check_against_reference(&coll, &plan, &config, &mgr);
        assert_eq!(stats.profile.strategy, "shared");
    }

    #[test]
    fn adaptive_stays_thread_local_on_high_cardinality() {
        // ~50k groups: the sample is sparse (density check fails), so the
        // run must stay on the paper's thread-local path.
        let coll = make_input(60_000, 50_000, 7);
        let mgr = mgr_with(256 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::sum(1), AggregateSpec::count_star()],
        };
        let stats = check_against_reference(&coll, &plan, &small_config(4), &mgr);
        assert_eq!(stats.profile.strategy, "thread_local");
    }

    #[test]
    fn forced_shared_matches_reference_for_string_and_multi_column_keys() {
        // The shared index key-compares canonical rows lock-free; strings
        // (heap payloads) and multi-column keys are the risky shapes.
        let coll = make_input(50_000, 300, 3);
        let mgr = mgr_with(64 << 20, 64 << 10);
        for threads in [2, 4] {
            for group_cols in [vec![2], vec![0, 2]] {
                let plan = HashAggregatePlan {
                    group_cols,
                    aggregates: vec![
                        AggregateSpec::sum(1),
                        AggregateSpec::count_star(),
                        AggregateSpec::min(1),
                    ],
                };
                let config = AggregateConfig {
                    threads,
                    radix_bits: Some(3),
                    phase1_strategy: Phase1Strategy::Shared,
                    ..Default::default()
                };
                let stats = check_against_reference(&coll, &plan, &config, &mgr);
                assert_eq!(stats.profile.strategy, "shared");
            }
        }
    }

    #[test]
    fn forced_shared_overflow_falls_back_and_stays_correct() {
        // max_groups = ht_capacity = 8192 but the input has ~20k groups:
        // the index overflows mid-run, overflow rows append as singletons,
        // workers drop back to thread-local, and phase 2 merges it all.
        let coll = make_input(60_000, 20_000, 5);
        let mgr = mgr_with(256 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::sum(1), AggregateSpec::count_star()],
        };
        let config = AggregateConfig {
            phase1_strategy: Phase1Strategy::Shared,
            ..small_config(4)
        };
        let stats = check_against_reference(&coll, &plan, &config, &mgr);
        assert_eq!(stats.profile.strategy, "shared");
    }

    #[test]
    fn forced_shared_single_thread_runs_thread_local() {
        // The shared strategy needs concurrency to pay off and would break
        // the single-thread scalar/vectorized bit-identity contract, so a
        // forced `Shared` at threads=1 degrades to thread-local.
        let coll = make_input(20_000, 100, 9);
        let mgr = mgr_with(64 << 20, 64 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::sum(1), AggregateSpec::count_star()],
        };
        let config = AggregateConfig {
            phase1_strategy: Phase1Strategy::Shared,
            ..small_config(1)
        };
        let stats = check_against_reference(&coll, &plan, &config, &mgr);
        assert_eq!(stats.profile.strategy, "thread_local");
    }

    #[test]
    fn adaptive_shared_handles_spilling_config() {
        // Adaptive under a tight limit with tiny pages: whichever strategy
        // wins, spills and the per-partition handoff must stay correct.
        let coll = make_input(80_000, 512, 21);
        let mgr = mgr_with(1 << 20, 4 << 10);
        let plan = HashAggregatePlan {
            group_cols: vec![0],
            aggregates: vec![AggregateSpec::sum(1), AggregateSpec::count_star()],
        };
        let config = small_config(4);
        let stats = check_against_reference(&coll, &plan, &config, &mgr);
        assert!(!stats.profile.strategy.is_empty());
    }
}
