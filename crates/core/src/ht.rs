//! The salted hash-table entry array (paper Section V, "Salt" and
//! "Collision Resolution").
//!
//! The table is *one level of indirection*: an array of 64-bit entries whose
//! lower 48 bits point to a materialized row and whose upper 16 bits hold
//! the **salt** — the top 16 bits of the tuple's hash. A linear probe
//! compares the salt before following the pointer, so for uniform hashes all
//! but 1/65536 of non-matching collisions are rejected without touching the
//! row. Keeping the randomly-accessed area this small (8 bytes per group) is
//! what makes the fixed-size thread-local table cache-friendly.
//!
//! The entry array is a **non-paged allocation**: it cannot spill (rebuilding
//! it is cheaper than reloading it), but it is accounted against the memory
//! limit through the buffer manager and can push pages out.
//!
//! Entries equal to zero are empty (a row pointer is never null). During
//! phase-1 probing the operator temporarily stores *pending* entries for
//! groups discovered in the current input chunk but not yet materialized;
//! bit 47 marks those (user-space pointers on x86-64/aarch64 stay below
//! 2^47).

use rexa_buffer::BufferManager;
use rexa_exec::hashing::POINTER_BITS;
use rexa_exec::{ExecContext, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Mask of the pointer bits of an entry.
pub const PTR_MASK: u64 = (1 << POINTER_BITS) - 1;

/// Marks an entry as "pending": the group's row is being materialized from
/// the current chunk; the low bits hold its ordinal in the new-group list.
/// Bit 47 is safe: canonical user-space addresses stay below 2^47.
pub const PENDING_FLAG: u64 = 1 << 47;

/// Build an entry from a hash's salt and a row pointer.
#[inline]
pub fn make_entry(hash: u64, row: *const u8) -> u64 {
    let ptr = row as u64;
    debug_assert_eq!(ptr & !PTR_MASK, 0, "pointer exceeds 48 bits");
    debug_assert_eq!(ptr & PENDING_FLAG, 0, "pointer collides with pending flag");
    (hash & !PTR_MASK) | ptr
}

/// Build a pending entry for new-group ordinal `ord`.
#[inline]
pub fn make_pending(hash: u64, ord: usize) -> u64 {
    debug_assert!((ord as u64) < PENDING_FLAG);
    (hash & !PTR_MASK) | PENDING_FLAG | ord as u64
}

/// The salt of an entry or hash: its top 16 bits (as a full-width value so
/// it can be compared without shifting).
#[inline]
pub fn salt_bits(v: u64) -> u64 {
    v & !PTR_MASK
}

/// The row pointer of a non-pending entry.
#[inline]
pub fn entry_ptr(e: u64) -> *mut u8 {
    (e & PTR_MASK) as *mut u8
}

/// True if the entry is a pending marker.
#[inline]
pub fn is_pending(e: u64) -> bool {
    e & PENDING_FLAG != 0
}

/// The new-group ordinal of a pending entry.
#[inline]
pub fn pending_ord(e: u64) -> usize {
    (e & (PENDING_FLAG - 1)) as usize
}

/// Best-effort prefetch of the cache line at `p` into L1 (no-op off
/// x86_64). Probe and update loops issue these a fixed distance ahead so
/// their random row accesses overlap instead of serializing.
#[inline]
pub fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects and tolerates any address.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(p as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// A fixed-capacity, linear-probing entry array.
#[derive(Debug)]
pub struct SaltedHashTable {
    entries: Vec<u64>,
    mask: u64,
    count: usize,
    /// What accounts for the entry array: a fresh [`MemoryReservation`]
    /// (rexa_buffer) or a token carved from the query's admission grant.
    /// Either way, dropping it releases the bytes to the global accounting.
    _memory: Box<dyn std::any::Any + Send + Sync>,
}

impl SaltedHashTable {
    /// Allocate a table with `capacity` entries (rounded up to a power of
    /// two), accounted as a non-paged allocation.
    pub fn with_capacity(mgr: &BufferManager, capacity: usize) -> Result<Self> {
        Self::with_capacity_ctx(mgr, capacity, &ExecContext::new())
    }

    /// Like [`with_capacity`](Self::with_capacity), but draws the bytes from
    /// `ctx`'s memory grant when one is attached and has room — the grant
    /// was admitted against the memory limit already, so the array does not
    /// charge the manager a second time. Falls back to a fresh reservation.
    pub fn with_capacity_ctx(
        mgr: &BufferManager,
        capacity: usize,
        ctx: &ExecContext,
    ) -> Result<Self> {
        let capacity = capacity.next_power_of_two().max(64);
        let bytes = capacity * 8;
        let memory: Box<dyn std::any::Any + Send + Sync> = match ctx.carve(bytes) {
            Some(token) => token,
            None => Box::new(mgr.reserve(bytes)?),
        };
        Ok(SaltedHashTable {
            entries: vec![0u64; capacity],
            mask: capacity as u64 - 1,
            count: 0,
            _memory: memory,
        })
    }

    /// Number of entry slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of occupied slots.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Clear all entries — the hash-table *reset* (paper: "Only the array of
    /// 64-bit entries is reset while the tuples stay in place; therefore,
    /// resetting is an inexpensive operation").
    pub fn reset(&mut self) {
        self.entries.fill(0);
        self.count = 0;
    }

    /// First slot to probe for `hash`.
    #[inline]
    pub fn slot(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    /// Next slot in the linear probe sequence.
    #[inline]
    pub fn next_slot(&self, slot: usize) -> usize {
        (slot + 1) & self.mask as usize
    }

    /// Read the entry at `slot`.
    #[inline]
    pub fn entry(&self, slot: usize) -> u64 {
        // SAFETY: slot is always masked.
        unsafe { *self.entries.get_unchecked(slot) }
    }

    /// Prefetch the cache line holding `slot` into L1. Best-effort: a no-op
    /// on architectures without a stable prefetch intrinsic. The selection-
    /// vector probe issues these a fixed distance ahead so the random entry
    /// loads of a whole round overlap instead of serializing.
    #[inline]
    pub fn prefetch(&self, slot: usize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: slot is always masked; prefetch has no memory effects.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.entries.as_ptr().add(slot) as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = slot;
    }

    /// Write the entry at `slot`; `occupy` bumps the count (set it when the
    /// slot transitions empty → occupied).
    #[inline]
    pub fn set_entry(&mut self, slot: usize, e: u64, occupy: bool) {
        // SAFETY: slot is always masked.
        unsafe {
            *self.entries.get_unchecked_mut(slot) = e;
        }
        if occupy {
            self.count += 1;
        }
    }

    /// Occupancy as a fraction.
    pub fn fill_ratio(&self) -> f64 {
        self.count as f64 / self.capacity() as f64
    }
}

/// A fixed-capacity concurrent group *index* for the shared phase-1
/// strategy ("Global Hash Tables Strike Back!"): at low group counts one
/// table shared by all workers beats per-thread tables + radix partitions,
/// because the hot table stays L1/L2-resident and nothing is scattered.
///
/// The index maps a hash to a group **ordinal** (0-based, dense), not to an
/// aggregate row: each worker keeps its own ordinal → local-row mapping and
/// updates aggregate state thread-locally, so no atomic read-modify-write of
/// aggregate values is ever needed. Entries are `salt | (ordinal + 1)` (an
/// all-zero entry means empty); `row_ptrs[ordinal]` points at the canonical
/// key row, published *before* the entry so a lock-free probe that wins the
/// salt filter can always run the full key compare.
///
/// Concurrency contract: probes are lock-free (`entry` / `row_ptr`);
/// **insertions must be externally serialized** (the operator holds an
/// insert mutex that also guards the canonical key-row collection) and go
/// re-probe → [`alloc_ordinal`](Self::alloc_ordinal) →
/// [`publish`](Self::publish). Load factor is capped at 50% by construction
/// so probe chains always terminate.
pub struct SharedGroupIndex {
    entries: Box<[AtomicU64]>,
    mask: u64,
    /// Ordinal → canonical key-row pointer, stored as u64.
    row_ptrs: Box<[AtomicU64]>,
    count: AtomicUsize,
    overflowed: AtomicBool,
    /// Accounts entries + row_ptrs against the memory limit.
    _memory: Box<dyn std::any::Any + Send + Sync>,
}

impl SharedGroupIndex {
    /// Allocate an index for at most `max_groups` groups, accounted like a
    /// non-paged allocation (drawn from the context's grant when possible).
    pub fn with_capacity_ctx(
        mgr: &BufferManager,
        max_groups: usize,
        ctx: &ExecContext,
    ) -> Result<Self> {
        let max_groups = max_groups.max(64);
        let capacity = (max_groups * 2).next_power_of_two();
        let bytes = capacity * 8 + max_groups * 8;
        let memory: Box<dyn std::any::Any + Send + Sync> = match ctx.carve(bytes) {
            Some(token) => token,
            None => Box::new(mgr.reserve(bytes)?),
        };
        Ok(SharedGroupIndex {
            entries: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            mask: capacity as u64 - 1,
            row_ptrs: (0..max_groups).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicUsize::new(0),
            overflowed: AtomicBool::new(false),
            _memory: memory,
        })
    }

    /// Most groups the index can hold before overflowing.
    pub fn max_groups(&self) -> usize {
        self.row_ptrs.len()
    }

    /// Groups inserted so far.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// True once an insert was refused for lack of room. Overflowing is a
    /// misprediction, not an error: the operator appends overflow rows
    /// unaggregated and phase 2 merges them by key.
    pub fn overflowed(&self) -> bool {
        self.overflowed.load(Ordering::Relaxed)
    }

    /// First slot to probe for `hash`.
    #[inline]
    pub fn slot(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    /// Next slot in the linear probe sequence.
    #[inline]
    pub fn next_slot(&self, slot: usize) -> usize {
        (slot + 1) & self.mask as usize
    }

    /// Read the entry at `slot` (0 = empty). Acquire pairs with
    /// [`publish`](Self::publish)'s Release, so a non-empty entry implies
    /// the ordinal's key row is fully visible.
    #[inline]
    pub fn entry(&self, slot: usize) -> u64 {
        self.entries[slot].load(Ordering::Acquire)
    }

    /// The group ordinal of a non-empty entry.
    #[inline]
    pub fn entry_ordinal(e: u64) -> usize {
        (e & PTR_MASK) as usize - 1
    }

    /// The canonical key-row pointer of an inserted ordinal.
    #[inline]
    pub fn row_ptr(&self, ord: usize) -> *const u8 {
        self.row_ptrs[ord].load(Ordering::Relaxed) as *const u8
    }

    /// Serialized (insert-lock holder only): claim the next ordinal, or
    /// `None` — flagging overflow — when the index is full.
    pub fn alloc_ordinal(&self) -> Option<usize> {
        let n = self.count.load(Ordering::Relaxed);
        if n >= self.row_ptrs.len() {
            self.overflowed.store(true, Ordering::Relaxed);
            return None;
        }
        Some(n)
    }

    /// Serialized (insert-lock holder only): publish `ord`'s canonical key
    /// row and make the entry at `slot` visible to lock-free probes.
    pub fn publish(&self, slot: usize, hash: u64, ord: usize, row: *const u8) {
        debug_assert_eq!(self.entries[slot].load(Ordering::Relaxed), 0);
        self.row_ptrs[ord].store(row as u64, Ordering::Release);
        self.count.store(ord + 1, Ordering::Relaxed);
        self.entries[slot].store(salt_bits(hash) | (ord as u64 + 1), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexa_buffer::BufferManagerConfig;
    use rexa_exec::hashing::mix64;

    fn mgr() -> std::sync::Arc<BufferManager> {
        BufferManager::new(BufferManagerConfig::with_limit(1 << 20).page_size(1024)).unwrap()
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let m = mgr();
        let t = SaltedHashTable::with_capacity(&m, 100).unwrap();
        assert_eq!(t.capacity(), 128);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn reservation_accounts_against_limit() {
        let m = mgr();
        let before = m.memory_used();
        let t = SaltedHashTable::with_capacity(&m, 1024).unwrap();
        assert_eq!(m.memory_used() - before, 1024 * 8);
        drop(t);
        assert_eq!(m.memory_used(), before);
    }

    #[test]
    fn entry_round_trip() {
        let hash = mix64(42);
        let fake_row = 0x0000_7f12_3456_7890u64 as *const u8;
        let e = make_entry(hash, fake_row);
        assert!(!is_pending(e));
        assert_eq!(entry_ptr(e) as u64, fake_row as u64);
        assert_eq!(salt_bits(e), salt_bits(hash));
    }

    #[test]
    fn pending_round_trip() {
        let hash = mix64(7);
        let e = make_pending(hash, 1234);
        assert!(is_pending(e));
        assert_eq!(pending_ord(e), 1234);
        assert_eq!(salt_bits(e), salt_bits(hash));
    }

    #[test]
    fn reset_clears_but_keeps_capacity() {
        let m = mgr();
        let mut t = SaltedHashTable::with_capacity(&m, 64).unwrap();
        let slot = t.slot(mix64(9));
        t.set_entry(slot, make_pending(mix64(9), 0), true);
        assert_eq!(t.count(), 1);
        t.reset();
        assert_eq!(t.count(), 0);
        assert_eq!(t.entry(slot), 0);
        assert_eq!(t.capacity(), 64);
    }

    #[test]
    fn probe_sequence_wraps() {
        let m = mgr();
        let t = SaltedHashTable::with_capacity(&m, 64).unwrap();
        let last = t.capacity() - 1;
        assert_eq!(t.next_slot(last), 0);
    }

    #[test]
    fn shared_index_round_trip_and_overflow() {
        let m = mgr();
        let idx = SharedGroupIndex::with_capacity_ctx(&m, 64, &ExecContext::new()).unwrap();
        assert_eq!(idx.max_groups(), 64);
        let row = 0x0000_7abc_def0_1234u64 as *const u8;
        let hash = mix64(5);
        let slot = idx.slot(hash);
        assert_eq!(idx.entry(slot), 0);
        let ord = idx.alloc_ordinal().unwrap();
        assert_eq!(ord, 0);
        idx.publish(slot, hash, ord, row);
        let e = idx.entry(slot);
        assert_ne!(e, 0);
        assert_eq!(salt_bits(e), salt_bits(hash));
        assert_eq!(SharedGroupIndex::entry_ordinal(e), 0);
        assert_eq!(idx.row_ptr(0), row);
        assert_eq!(idx.count(), 1);
        // Fill to capacity: the 65th alloc refuses and flags overflow.
        for i in 1..64 {
            let h = mix64(1000 + i as u64);
            let mut s = idx.slot(h);
            while idx.entry(s) != 0 {
                s = idx.next_slot(s);
            }
            let o = idx.alloc_ordinal().unwrap();
            assert_eq!(o, i);
            idx.publish(s, h, o, row);
        }
        assert!(!idx.overflowed());
        assert!(idx.alloc_ordinal().is_none());
        assert!(idx.overflowed());
    }

    #[test]
    fn shared_index_accounts_against_limit() {
        let m = mgr();
        let before = m.memory_used();
        let idx = SharedGroupIndex::with_capacity_ctx(&m, 512, &ExecContext::new()).unwrap();
        // 1024 entries + 512 row pointers, 8 bytes each.
        assert_eq!(m.memory_used() - before, 1024 * 8 + 512 * 8);
        drop(idx);
        assert_eq!(m.memory_used(), before);
    }

    #[test]
    fn shared_index_concurrent_probes_see_published_rows() {
        // One serialized inserter, many lock-free probers: every non-empty
        // entry a prober observes must resolve to a non-null row pointer.
        let m = mgr();
        let idx = std::sync::Arc::new(
            SharedGroupIndex::with_capacity_ctx(&m, 1024, &ExecContext::new()).unwrap(),
        );
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let idx = std::sync::Arc::clone(&idx);
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..1024u64 {
                            let h = mix64(k);
                            let mut slot = idx.slot(h);
                            for _ in 0..16 {
                                let e = idx.entry(slot);
                                if e == 0 {
                                    break;
                                }
                                if salt_bits(e) == salt_bits(h) {
                                    let ord = SharedGroupIndex::entry_ordinal(e);
                                    assert!(!idx.row_ptr(ord).is_null());
                                    break;
                                }
                                slot = idx.next_slot(slot);
                            }
                        }
                    }
                });
            }
            for k in 0..1024u64 {
                let h = mix64(k);
                let mut slot = idx.slot(h);
                while idx.entry(slot) != 0 {
                    slot = idx.next_slot(slot);
                }
                let ord = idx.alloc_ordinal().unwrap();
                idx.publish(slot, h, ord, (0x1000 + k * 8) as *const u8);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(idx.count(), 1024);
    }

    #[test]
    fn oom_when_table_exceeds_limit() {
        let m = BufferManager::new(BufferManagerConfig::with_limit(1024).page_size(64)).unwrap();
        assert!(SaltedHashTable::with_capacity(&m, 1 << 20)
            .unwrap_err()
            .is_oom());
    }
}
