//! An external, partitioned **hash join** — the first item on the paper's
//! future-work list ("other blocking operators can benefit from the
//! techniques proposed in this paper, such as the join ...").
//!
//! The operator reuses the aggregation's entire substrate: both inputs are
//! materialized into radix-partitioned spillable collections (keys first,
//! hash column included) with pins released periodically, so the buffer
//! manager can spill either side when memory runs short — the operator never
//! writes to storage itself. Phase 2 processes one radix partition at a
//! time: pin the build partition, insert its rows into a salted pointer
//! table (duplicates occupy their own slots; a probe walks its cluster and
//! collects every match), then stream the probe partition against it,
//! gathering matched row pairs into output chunks. Pages are destroyed
//! eagerly as each partition finishes.
//!
//! Semantics: inner equi-join; rows with a NULL key are dropped on both
//! sides (SQL inner-join semantics). Output columns are the probe columns
//! followed by the build columns, in their original input order.

use crate::ht::{entry_ptr, make_entry, salt_bits, SaltedHashTable};
use parking_lot::Mutex;
use rexa_buffer::{BufferManager, BufferStats};
use rexa_exec::pipeline::{parallel_for, ChunkSource, LocalSink, ParallelSink, Pipeline};
use rexa_exec::{hashing, DataChunk, Error, LogicalType, Result, Vector, VECTOR_SIZE};
use rexa_layout::matcher::row_row_match_cross;
use rexa_layout::{gather_rows, PartitionedTupleData, TupleDataLayout};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The join: which columns to match on. Key lists must have equal length and
/// pairwise equal types.
#[derive(Debug, Clone)]
pub struct HashJoinPlan {
    /// Key columns of the build (usually smaller) input.
    pub build_keys: Vec<usize>,
    /// Key columns of the probe input.
    pub probe_keys: Vec<usize>,
}

/// Tuning knobs of the join.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Worker threads for all phases.
    pub threads: usize,
    /// Radix partition bits; `None` derives from the thread count.
    pub radix_bits: Option<u32>,
    /// Rows per output chunk.
    pub output_chunk_size: usize,
    /// Release materialization pins every N chunks per thread, bounding the
    /// pinned working set (the aggregation gets this for free from its
    /// hash-table resets).
    pub release_every: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            threads: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(16),
            radix_bits: None,
            output_chunk_size: VECTOR_SIZE,
            release_every: 32,
        }
    }
}

impl JoinConfig {
    fn effective_radix_bits(&self) -> u32 {
        self.radix_bits.unwrap_or_else(|| {
            let parts = (self.threads * 4).next_power_of_two();
            parts.trailing_zeros().clamp(3, 8)
        })
    }
}

/// What one join run did.
#[derive(Debug, Clone)]
pub struct JoinStats {
    /// Build rows materialized (after NULL-key filtering).
    pub build_rows: usize,
    /// Probe rows materialized (after NULL-key filtering).
    pub probe_rows: usize,
    /// Output rows produced.
    pub output_rows: usize,
    /// Radix partitions.
    pub partitions: usize,
    /// Wall time of the two materialization pipelines.
    pub materialize: Duration,
    /// Wall time of the partition-wise probe phase.
    pub probe_phase: Duration,
    /// Buffer-manager activity during the run (counters are deltas).
    pub buffer: BufferStats,
}

/// One side's resolved shape: layout (keys first) and the permutations
/// between input order and layout order.
struct Side {
    layout: Arc<TupleDataLayout>,
    /// `perm[j]` = input column index stored at layout column `j`.
    perm: Vec<usize>,
    /// `inv[i]` = layout column index holding input column `i`.
    inv: Vec<usize>,
    key_cols: usize,
}

fn bind_side(schema: &[LogicalType], keys: &[usize]) -> Result<Side> {
    if keys.is_empty() {
        return Err(Error::InvalidInput("join needs at least one key".into()));
    }
    for &k in keys {
        if k >= schema.len() {
            return Err(Error::InvalidInput(format!(
                "join key column {k} out of range ({} columns)",
                schema.len()
            )));
        }
    }
    let mut perm: Vec<usize> = keys.to_vec();
    perm.extend((0..schema.len()).filter(|c| !keys.contains(c)));
    let mut inv = vec![0usize; schema.len()];
    for (j, &i) in perm.iter().enumerate() {
        inv[i] = j;
    }
    let types: Vec<LogicalType> = perm.iter().map(|&c| schema[c]).collect();
    Ok(Side {
        layout: Arc::new(TupleDataLayout::new(types, vec![])),
        perm,
        inv,
        key_cols: keys.len(),
    })
}

/// Materialization sink: radix-partition one input into spillable pages.
struct MaterializeSink<'a> {
    side: &'a Side,
    mgr: &'a Arc<BufferManager>,
    radix_bits: u32,
    release_every: usize,
    shared: Mutex<PartitionedTupleData>,
    rows: AtomicUsize,
}

struct LocalMaterialize<'a> {
    sink: &'a MaterializeSink<'a>,
    data: PartitionedTupleData,
    chunks_since_release: usize,
    rows: usize,
    sel: Vec<u32>,
    hashes: Vec<u64>,
}

impl ParallelSink for MaterializeSink<'_> {
    fn local(&self) -> Result<Box<dyn LocalSink + '_>> {
        Ok(Box::new(LocalMaterialize {
            sink: self,
            data: PartitionedTupleData::new(self.mgr, &self.side.layout, self.radix_bits),
            chunks_since_release: 0,
            rows: 0,
            sel: Vec::new(),
            hashes: Vec::new(),
        }))
    }
}

impl LocalSink for LocalMaterialize<'_> {
    fn sink(&mut self, chunk: &DataChunk) -> Result<()> {
        let side = self.sink.side;
        let n = chunk.len();
        if n == 0 {
            return Ok(());
        }
        let views: Vec<&Vector> = side.perm.iter().map(|&c| chunk.column(c)).collect();
        // Hash the keys; drop rows with any NULL key (inner-join semantics).
        self.hashes.clear();
        self.hashes.resize(n, 0);
        for (ci, view) in views.iter().enumerate().take(side.key_cols) {
            hashing::hash_vector(view, &mut self.hashes, ci > 0);
        }
        self.sel.clear();
        'rows: for i in 0..n {
            for key_view in views.iter().take(side.key_cols) {
                if !key_view.validity().is_valid(i) {
                    continue 'rows;
                }
            }
            self.sel.push(i as u32);
        }
        self.rows += self.sel.len();
        self.data.append(&views, &self.hashes, &self.sel, None)?;
        self.chunks_since_release += 1;
        if self.chunks_since_release >= self.sink.release_every {
            // Bound the pinned working set; everything becomes spillable.
            self.data.release_pins();
            self.chunks_since_release = 0;
        }
        Ok(())
    }

    fn combine(self: Box<Self>) -> Result<()> {
        let mut data = self.data;
        data.release_pins();
        self.sink.shared.lock().combine(data);
        self.sink.rows.fetch_add(self.rows, Ordering::Relaxed);
        Ok(())
    }
}

/// Run the join, streaming output chunks (probe columns then build columns)
/// to `consumer`, which is called concurrently from partition tasks.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_streaming(
    mgr: &Arc<BufferManager>,
    build: &dyn ChunkSource,
    build_schema: &[LogicalType],
    probe: &dyn ChunkSource,
    probe_schema: &[LogicalType],
    plan: &HashJoinPlan,
    config: &JoinConfig,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
) -> Result<JoinStats> {
    if plan.build_keys.len() != plan.probe_keys.len() {
        return Err(Error::InvalidInput("key count mismatch".into()));
    }
    let build_side = bind_side(build_schema, &plan.build_keys)?;
    let probe_side = bind_side(probe_schema, &plan.probe_keys)?;
    for (b, p) in plan.build_keys.iter().zip(&plan.probe_keys) {
        if build_schema[*b] != probe_schema[*p] {
            return Err(Error::InvalidInput(format!(
                "key type mismatch: build col {b} is {}, probe col {p} is {}",
                build_schema[*b], probe_schema[*p]
            )));
        }
    }
    let radix_bits = config.effective_radix_bits();
    let stats_before = mgr.stats();

    // Materialize both sides into radix partitions.
    let t0 = Instant::now();
    let build_sink = MaterializeSink {
        side: &build_side,
        mgr,
        radix_bits,
        release_every: config.release_every,
        shared: Mutex::new(PartitionedTupleData::new(
            mgr,
            &build_side.layout,
            radix_bits,
        )),
        rows: AtomicUsize::new(0),
    };
    Pipeline::run(build, &build_sink, config.threads)?;
    let probe_sink = MaterializeSink {
        side: &probe_side,
        mgr,
        radix_bits,
        release_every: config.release_every,
        shared: Mutex::new(PartitionedTupleData::new(
            mgr,
            &probe_side.layout,
            radix_bits,
        )),
        rows: AtomicUsize::new(0),
    };
    Pipeline::run(probe, &probe_sink, config.threads)?;
    let materialize = t0.elapsed();

    // Partition-wise probe.
    let t1 = Instant::now();
    let build_shared = Mutex::new(build_sink.shared.into_inner());
    let probe_shared = Mutex::new(probe_sink.shared.into_inner());
    let output_rows = AtomicUsize::new(0);
    let partitions = 1usize << radix_bits;
    parallel_for(partitions, config.threads, &|p| {
        let build_part = build_shared.lock().take_partition(p);
        let probe_part = probe_shared.lock().take_partition(p);
        if build_part.rows() == 0 || probe_part.rows() == 0 {
            return Ok(()); // inner join: nothing can match
        }
        join_partition(
            mgr,
            config,
            &build_side,
            &probe_side,
            build_part,
            probe_part,
            consumer,
            &output_rows,
        )
    })?;
    let probe_phase = t1.elapsed();

    Ok(JoinStats {
        build_rows: build_sink.rows.load(Ordering::Relaxed),
        probe_rows: probe_sink.rows.load(Ordering::Relaxed),
        output_rows: output_rows.load(Ordering::Relaxed),
        partitions,
        materialize,
        probe_phase,
        buffer: mgr.stats().delta_since(&stats_before),
    })
}

#[allow(clippy::too_many_arguments)]
fn join_partition(
    mgr: &Arc<BufferManager>,
    config: &JoinConfig,
    build_side: &Side,
    probe_side: &Side,
    mut build_part: rexa_layout::TupleDataCollection,
    mut probe_part: rexa_layout::TupleDataCollection,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
    output_rows: &AtomicUsize,
) -> Result<()> {
    let build_pins = build_part.pin_all()?;
    let cap = (build_part.rows() * 2).next_power_of_two().max(1024);
    let mut ht = SaltedHashTable::with_capacity(mgr, cap)?;
    let mut ptrs = Vec::new();
    for c in 0..build_part.chunk_count() {
        ptrs.clear();
        build_part.chunk_row_ptrs(&build_pins, c, &mut ptrs);
        for &row in &ptrs {
            // SAFETY: the partition is pinned and recomputed.
            let h = unsafe { build_side.layout.read_hash(row) };
            let mut slot = ht.slot(h);
            // Duplicates keep their own slots: walk to the first empty one.
            while ht.entry(slot) != 0 {
                slot = ht.next_slot(slot);
            }
            ht.set_entry(slot, make_entry(h, row), true);
        }
    }

    let probe_pins = probe_part.pin_all()?;
    let mut out_probe: Vec<*mut u8> = Vec::with_capacity(config.output_chunk_size);
    let mut out_build: Vec<*mut u8> = Vec::with_capacity(config.output_chunk_size);
    let flush = |out_probe: &mut Vec<*mut u8>, out_build: &mut Vec<*mut u8>| -> Result<()> {
        if out_probe.is_empty() {
            return Ok(());
        }
        // SAFETY: all pointers live under the pins held by this function.
        let probe_chunk = unsafe { gather_rows(&probe_side.layout, out_probe) };
        let build_chunk = unsafe { gather_rows(&build_side.layout, out_build) };
        // Restore original column order: probe columns then build columns.
        let mut columns = Vec::with_capacity(probe_side.inv.len() + build_side.inv.len());
        for &j in &probe_side.inv {
            columns.push(probe_chunk.column(j).clone());
        }
        for &j in &build_side.inv {
            columns.push(build_chunk.column(j).clone());
        }
        output_rows.fetch_add(out_probe.len(), Ordering::Relaxed);
        out_probe.clear();
        out_build.clear();
        consumer(DataChunk::new(columns))
    };

    for c in 0..probe_part.chunk_count() {
        ptrs.clear();
        probe_part.chunk_row_ptrs(&probe_pins, c, &mut ptrs);
        for &row in &ptrs {
            // SAFETY: pinned and recomputed.
            let h = unsafe { probe_side.layout.read_hash(row) };
            let mut slot = ht.slot(h);
            loop {
                let e = ht.entry(slot);
                if e == 0 {
                    break;
                }
                if salt_bits(e) == salt_bits(h) {
                    let build_row = entry_ptr(e);
                    // SAFETY: both rows pinned; key types validated at bind.
                    let matches = unsafe {
                        row_row_match_cross(
                            &build_side.layout,
                            &probe_side.layout,
                            build_side.key_cols,
                            build_row,
                            row,
                        )
                    };
                    if matches {
                        out_probe.push(row);
                        out_build.push(build_row);
                        if out_probe.len() == config.output_chunk_size {
                            flush(&mut out_probe, &mut out_build)?;
                        }
                    }
                }
                slot = ht.next_slot(slot);
            }
        }
    }
    flush(&mut out_probe, &mut out_build)?;
    // Eager destroy: both partitions' pages are released now.
    drop(probe_pins);
    drop(build_pins);
    Ok(())
}

/// Run the join and collect the output in memory (tests, small results).
pub fn hash_join_collect(
    mgr: &Arc<BufferManager>,
    build: &dyn ChunkSource,
    build_schema: &[LogicalType],
    probe: &dyn ChunkSource,
    probe_schema: &[LogicalType],
    plan: &HashJoinPlan,
    config: &JoinConfig,
) -> Result<(rexa_exec::ChunkCollection, JoinStats)> {
    let mut output_types: Vec<LogicalType> = probe_schema.to_vec();
    output_types.extend_from_slice(build_schema);
    let out = Mutex::new(rexa_exec::ChunkCollection::new(output_types));
    let stats = hash_join_streaming(
        mgr,
        build,
        build_schema,
        probe,
        probe_schema,
        plan,
        config,
        &|chunk| out.lock().push(chunk),
    )?;
    Ok((out.into_inner(), stats))
}
