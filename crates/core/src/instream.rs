//! In-stream aggregation: the sorted-input fast path of the adaptive hybrid
//! hash/sort operator.
//!
//! When the grouping keys arrive sorted (or clustered), a hash table is pure
//! overhead: consecutive rows overwhelmingly belong to the same group. The
//! in-stream aggregator replaces the phase-1 probe with
//! compare-to-previous-key — detect the runs of adjacent equal keys in a
//! chunk ([`rexa_layout::matcher::adjacent_runs`], one type dispatch per key
//! column), materialize **one** row per new run into the radix partitions,
//! and accumulate every input row into its run's row with the same bind-time
//! monomorphized update kernels (`crate::kernel`) the hash path uses. No
//! probe, no salt comparisons, and — on the dominant single NULL-free `i64`
//! key shape — hashing only the run-*start* rows instead of every row.
//!
//! The path is correct on *any* input: keys that regress simply open a new
//! run, so a group split across runs (or workers, or memory epochs)
//! materializes several partial rows that phase 2 merges by key exactly like
//! the hash path's per-epoch duplicates. Worst case (fully random keys) it
//! appends one row per input row — which is why the operator only routes
//! inputs here when the sortedness detector (or an explicit
//! `SortedInput::Sorted` hint) says runs are long.

use crate::function::{update_state, BoundAggregate};
use crate::operator::KernelMode;
use rexa_exec::vector::VectorData;
use rexa_exec::{hashing, DataChunk, Result, Vector};
use rexa_layout::matcher::{adjacent_runs, rows_match};
use rexa_layout::{PartitionedTupleData, TupleDataLayout};
use std::sync::Arc;

/// Per-worker in-stream aggregation state. One open group (the row the
/// stream is currently accumulating into) plus reusable per-chunk scratch —
/// O(1) memory beyond the materialized groups themselves.
pub(crate) struct InStreamAgg {
    /// The open group's materialized row; null when no group is open.
    /// Dangles after a pin release — [`Self::on_release`] must clear it.
    open_row: *mut u8,
    /// Scratch: indices of the rows that start a run in the current chunk.
    run_starts: Vec<u32>,
    /// Scratch: the run starts that materialize a *new* group (excludes a
    /// first run continuing the open group across the chunk boundary).
    run_sel: Vec<u32>,
    /// Scratch: per-row accumulator target, consumed by the update kernels.
    row_ptrs: Vec<*mut u8>,
    /// Scratch: the rows materialized by this chunk's append.
    new_ptrs: Vec<*mut u8>,
    /// Rows materialized since the last pin release (the memory-epoch
    /// budget, compared against the hash path's reset threshold).
    appended: usize,
}

// SAFETY: the row pointers never outlive the worker's append pins, and only
// the owning worker dereferences them; the state moves onto its worker
// thread once and stays there.
unsafe impl Send for InStreamAgg {}

impl InStreamAgg {
    pub(crate) fn new() -> Self {
        InStreamAgg {
            open_row: std::ptr::null_mut(),
            run_starts: Vec::new(),
            run_sel: Vec::new(),
            row_ptrs: Vec::new(),
            new_ptrs: Vec::new(),
            appended: 0,
        }
    }

    /// Rows materialized in the current memory epoch.
    pub(crate) fn appended(&self) -> usize {
        self.appended
    }

    /// The owning worker released its append pins: the open row pointer is
    /// dead, and the next chunk starts a fresh epoch (and a fresh run).
    pub(crate) fn on_release(&mut self) {
        self.open_row = std::ptr::null_mut();
        self.appended = 0;
    }

    /// Consume one chunk: detect key runs, materialize one row per new run
    /// into `data`, and accumulate all `n` rows in input order.
    ///
    /// `group_views` are the key columns, `layout_views` the key plus
    /// payload columns in layout order; `hashes` is caller-owned scratch
    /// (filled here — only run-start rows need hashes, and only they are
    /// read by the partitioned append).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sink_chunk(
        &mut self,
        layout: &Arc<TupleDataLayout>,
        state_aggs: &[BoundAggregate],
        mode: KernelMode,
        chunk: &DataChunk,
        group_views: &[&Vector],
        layout_views: &[&Vector],
        hashes: &mut Vec<u64>,
        data: &mut PartitionedTupleData,
    ) -> Result<()> {
        let n = chunk.len();
        debug_assert!(n > 0);
        adjacent_runs(group_views, n, &mut self.run_starts);
        // Does the first run continue the group left open by the previous
        // chunk? (One batched row comparison per chunk.)
        // SAFETY: a non-null open row is on a page this worker still holds
        // append pins for.
        let continues = !self.open_row.is_null()
            && unsafe { rows_match(layout, group_views, 0, self.open_row) };
        self.run_sel.clear();
        self.run_sel.extend(
            self.run_starts
                .iter()
                .copied()
                .filter(|&r| !(r == 0 && continues)),
        );

        // Hash only the run-start rows (they are all the append reads). The
        // single NULL-free i64 key shape hashes them scalar — on clustered
        // input that is a small fraction of the chunk, and skipping the
        // full-chunk hash is a large part of the fast path's win. Other key
        // shapes fall back to whole-chunk hashing, still probe-free.
        hashes.clear();
        hashes.resize(n, 0);
        let mut hashed = false;
        if let [col] = group_views {
            if let VectorData::I64(keys) = col.data() {
                if col.validity().no_nulls() {
                    for &r in &self.run_sel {
                        hashes[r as usize] = hashing::hash_u64(keys[r as usize] as u64);
                    }
                    hashed = true;
                }
            }
        }
        if !hashed {
            for (ci, col) in group_views.iter().enumerate() {
                hashing::hash_vector(col, hashes, ci > 0);
            }
        }

        // Materialize one row per new run, radix-routed like the hash path
        // (all rows of a key share a hash, so split groups always meet
        // again in the same phase-2 partition).
        self.new_ptrs.clear();
        if !self.run_sel.is_empty() {
            data.append(
                layout_views,
                hashes,
                &self.run_sel,
                Some(&mut self.new_ptrs),
            )?;
            self.appended += self.run_sel.len();
        }

        // Point every input row at its run's accumulator row.
        if self.row_ptrs.len() < n {
            self.row_ptrs.resize(n, std::ptr::null_mut());
        }
        let mut new_i = 0usize;
        for (k, &start) in self.run_starts.iter().enumerate() {
            let end = self.run_starts.get(k + 1).map_or(n, |&next| next as usize);
            let target = if start == 0 && continues {
                self.open_row
            } else {
                let t = self.new_ptrs[new_i];
                new_i += 1;
                t
            };
            for p in &mut self.row_ptrs[start as usize..end] {
                *p = target;
            }
            self.open_row = target;
        }
        debug_assert_eq!(new_i, self.run_sel.len());

        // Accumulate in input order — the same per-row order as the hash
        // paths, so single-thread results stay bit-identical to the scalar
        // oracle.
        match mode {
            KernelMode::Scalar => {
                for (sidx, agg) in state_aggs.iter().enumerate() {
                    let arg = agg.spec.arg.map(|c| chunk.column(c));
                    let off = layout.aggr_offset(sidx);
                    for i in 0..n {
                        // SAFETY: every target row is on a page this worker
                        // holds append pins for; states are in-row.
                        unsafe { update_state(agg, self.row_ptrs[i].add(off), arg, i) };
                    }
                }
            }
            KernelMode::Vectorized => {
                for (sidx, agg) in state_aggs.iter().enumerate() {
                    let arg = agg.spec.arg.map(|c| chunk.column(c));
                    let off = layout.aggr_offset(sidx);
                    // SAFETY: as above.
                    unsafe { (agg.kernels.update)(&self.row_ptrs[..n], off, arg) };
                }
            }
        }
        Ok(())
    }
}
