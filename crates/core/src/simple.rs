//! A naive single-threaded reference aggregator over owned values.
//!
//! Deliberately simple (BTreeMap over `Vec<Value>` keys): the differential
//! oracle the property and integration tests compare the real operator
//! against. Not memory-accounted, not fast — correctness only.

use crate::function::{AggKind, AggregateSpec};
use rexa_exec::pipeline::ChunkSource;
use rexa_exec::{DataChunk, Error, LogicalType, Result, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A totally-ordered wrapper so `Vec<Value>` can key a BTreeMap.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyRow(pub Vec<Value>);

impl Eq for KeyRow {}
impl PartialOrd for KeyRow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyRow {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            let ord = a.total_cmp(b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

#[derive(Debug, Clone)]
pub(crate) enum RefState {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
    Any(Option<Value>),
    /// Exact two-pass variance for the oracle: keep all values.
    Spread {
        values: Vec<f64>,
        sample_stddev: bool,
    },
}

impl RefState {
    pub(crate) fn new(kind: AggKind, arg_type: Option<LogicalType>) -> RefState {
        match kind {
            AggKind::CountStar | AggKind::Count => RefState::Count(0),
            AggKind::Sum => match arg_type {
                Some(LogicalType::Float64) => RefState::SumF(0.0),
                _ => RefState::SumI(0),
            },
            AggKind::Min => RefState::Min(None),
            AggKind::Max => RefState::Max(None),
            AggKind::Avg => RefState::Avg { sum: 0.0, count: 0 },
            AggKind::AnyValue => RefState::Any(None),
            AggKind::VarSamp => RefState::Spread {
                values: Vec::new(),
                sample_stddev: false,
            },
            AggKind::StdDevSamp => RefState::Spread {
                values: Vec::new(),
                sample_stddev: true,
            },
        }
    }

    pub(crate) fn update(&mut self, kind: AggKind, v: Option<&Value>) {
        match self {
            RefState::Count(c) => {
                let counts = match kind {
                    AggKind::CountStar => true,
                    _ => v.is_some_and(|v| !v.is_null()),
                };
                if counts {
                    *c += 1;
                }
            }
            RefState::SumI(s) => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    *s = s.wrapping_add(match v {
                        Value::Int32(x) => *x as i64,
                        Value::Int64(x) => *x,
                        _ => unreachable!(),
                    });
                }
            }
            RefState::SumF(s) => {
                if let Some(Value::Float64(x)) = v.filter(|v| !v.is_null()) {
                    *s += x;
                }
            }
            RefState::Min(cur) | RefState::Max(cur) => {
                let is_min = matches!(self_kind(kind), AggKind::Min);
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let replace = match cur {
                        None => true,
                        Some(c) => {
                            let ord = v.total_cmp(c);
                            if is_min {
                                ord == Ordering::Less
                            } else {
                                ord == Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            RefState::Avg { sum, count } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    *sum += match v {
                        Value::Int32(x) => *x as f64,
                        Value::Int64(x) => *x as f64,
                        Value::Float64(x) => *x,
                        _ => unreachable!(),
                    };
                    *count += 1;
                }
            }
            RefState::Any(cur) => {
                if cur.is_none() {
                    *cur = Some(v.cloned().unwrap_or(Value::Null));
                }
            }
            RefState::Spread { values, .. } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    values.push(match v {
                        Value::Int32(x) => *x as f64,
                        Value::Int64(x) => *x as f64,
                        Value::Float64(x) => *x,
                        _ => unreachable!(),
                    });
                }
            }
        }
    }

    pub(crate) fn finalize(self) -> Value {
        match self {
            RefState::Count(c) => Value::Int64(c),
            RefState::SumI(s) => Value::Int64(s),
            RefState::SumF(s) => Value::Float64(s),
            RefState::Min(v) | RefState::Max(v) => v.unwrap_or(Value::Null),
            RefState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / count as f64)
                }
            }
            RefState::Any(v) => v.unwrap_or(Value::Null),
            RefState::Spread {
                values,
                sample_stddev,
            } => {
                if values.len() < 2 {
                    return Value::Null;
                }
                let n = values.len() as f64;
                let mean = values.iter().sum::<f64>() / n;
                let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
                Value::Float64(if sample_stddev { var.sqrt() } else { var })
            }
        }
    }
}

fn self_kind(kind: AggKind) -> AggKind {
    kind
}

/// Aggregate `source` with the reference implementation. Returns the result
/// rows sorted by group key: `(group values ++ aggregate values)`.
pub fn reference_aggregate(
    source: &dyn ChunkSource,
    input_schema: &[LogicalType],
    group_cols: &[usize],
    aggregates: &[AggregateSpec],
) -> Result<Vec<Vec<Value>>> {
    if group_cols.is_empty() {
        return Err(Error::Unsupported("ungrouped reference".into()));
    }
    let mut groups: BTreeMap<KeyRow, Vec<RefState>> = BTreeMap::new();
    let mut reader = source.reader();
    while let Some(chunk) = reader.next()? {
        for i in 0..chunk.len() {
            let key = KeyRow(
                group_cols
                    .iter()
                    .map(|&c| match chunk.column(c).value(i) {
                        // Same key normalization as the operator's hash and
                        // matchers: -0.0 and 0.0 form one group (total_cmp,
                        // which orders this BTreeMap, would split them).
                        Value::Float64(f) => {
                            Value::Float64(rexa_exec::hashing::normalize_f64_key(f))
                        }
                        v => v,
                    })
                    .collect(),
            );
            let states = groups.entry(key).or_insert_with(|| {
                aggregates
                    .iter()
                    .map(|a| RefState::new(a.kind, a.arg.map(|c| input_schema[c])))
                    .collect()
            });
            for (state, spec) in states.iter_mut().zip(aggregates) {
                let v = spec.arg.map(|c| chunk.column(c).value(i));
                state.update(spec.kind, v.as_ref());
            }
        }
    }
    Ok(groups
        .into_iter()
        .map(|(k, states)| {
            let mut row = k.0;
            row.extend(states.into_iter().map(RefState::finalize));
            row
        })
        .collect())
}

/// Normalize an aggregation result (a collected [`DataChunk`] stream) into
/// sorted rows comparable with [`reference_aggregate`]'s output.
pub fn sorted_rows(chunks: &[DataChunk]) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = chunks
        .iter()
        .flat_map(|c| (0..c.len()).map(move |i| c.row(i)))
        .collect();
    rows.sort_by_key(|a| KeyRow(a.clone()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexa_exec::pipeline::CollectionSource;
    use rexa_exec::{ChunkCollection, Vector};

    #[test]
    fn reference_groups_and_sums() {
        let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
        coll.push(DataChunk::new(vec![
            Vector::from_i64(vec![1, 2, 1, 2, 1]),
            Vector::from_i64(vec![10, 20, 30, 40, 50]),
        ]))
        .unwrap();
        let source = CollectionSource::new(&coll);
        let rows = reference_aggregate(
            &source,
            coll.types(),
            &[0],
            &[AggregateSpec::sum(1), AggregateSpec::count_star()],
        )
        .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(1), Value::Int64(90), Value::Int64(3)],
                vec![Value::Int64(2), Value::Int64(60), Value::Int64(2)],
            ]
        );
    }

    #[test]
    fn key_row_ordering_handles_nulls() {
        let a = KeyRow(vec![Value::Null]);
        let b = KeyRow(vec![Value::Int64(0)]);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }
}
