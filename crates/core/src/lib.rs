//! `rexa-core`: **robust external hash aggregation** — the paper's primary
//! contribution — plus the baseline algorithms its evaluation contrasts
//! against.
//!
//! The operator ([`hash_aggregate_streaming`]) integrates the unified buffer
//! manager (`rexa-buffer`) and the spillable page layout (`rexa-layout`)
//! into a two-phase, morsel-driven parallel aggregation that degrades
//! gracefully as intermediates exceed the memory limit: pages that do not
//! fit are spilled individually by the buffer manager; the operator itself
//! is RAM-oblivious in phase 1 and over-partitioned in phase 2.
//!
//! Beyond the paper's evaluation, the crate also implements two items from
//! its future-work list: [`ungrouped_aggregate`] (the low-cardinality path)
//! and an external partitioned [`hash join`](crate::join) built on the same
//! unified-memory + spillable-layout substrate.
//!
//! Baselines (module [`baselines`]):
//! * [`baselines::in_memory_aggregate`] — hash aggregation that simply
//!   aborts when the limit is hit (how Umbra behaves in the paper's
//!   evaluation, 'A' cells);
//! * [`baselines::sort_aggregate`] — the traditional external merge-sort
//!   aggregation, O(n log n) with heavy I/O (the far side of the
//!   performance cliff);
//! * [`baselines::switch_aggregate`] — in-memory first, restart with the
//!   external sort on OOM (HyPer-style, producing the cliff itself).

pub mod baselines;
pub mod function;
pub mod ht;
mod instream;
pub mod join;
pub mod kernel;
pub mod operator;
pub mod simple;
pub mod ungrouped;

pub use function::{AggKind, AggregateSpec, BoundAggregate};
pub use join::{hash_join_collect, hash_join_streaming, HashJoinPlan, JoinConfig, JoinStats};
pub use kernel::AggKernels;
pub use operator::{
    hash_aggregate_collect, hash_aggregate_streaming, hash_aggregate_streaming_ctx, output_schema,
    plan_row_width, AggregateConfig, HashAggregatePlan, KernelMode, Phase1Strategy, Phase2Strategy,
    RunStats, SortedInput,
};
pub use ungrouped::ungrouped_aggregate;
