//! Aggregate functions and their fixed-size states.
//!
//! States are opaque byte regions inside the row layout, zero-initialized by
//! page allocation. `ANY_VALUE` is special: it has no state at all — its
//! value is materialized as a write-once payload column next to the group
//! keys when the group is first created (a legal ANY_VALUE, and the reason
//! variable-size aggregate results can live inside the spillable layout —
//! see DESIGN.md).

use rexa_exec::vector::VectorData;
use rexa_exec::{Error, LogicalType, Result, Value, Vector};

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)`: number of rows.
    CountStar,
    /// `COUNT(col)`: number of non-NULL values.
    Count,
    /// `SUM(col)`: integer inputs sum to `Int64` (wrapping), floats to
    /// `Float64`.
    Sum,
    /// `MIN(col)` over fixed-width types.
    Min,
    /// `MAX(col)` over fixed-width types.
    Max,
    /// `AVG(col)`: `Float64`.
    Avg,
    /// `ANY_VALUE(col)`: an arbitrary input value of the group (rexa picks
    /// the first). Works for every type, including strings.
    AnyValue,
    /// `VAR_SAMP(col)`: sample variance, `Float64` (Welford's algorithm;
    /// NULL for fewer than two non-NULL inputs).
    VarSamp,
    /// `STDDEV_SAMP(col)`: sample standard deviation, `Float64`.
    StdDevSamp,
}

/// One aggregate in a query: a function and its argument column (an index
/// into the input schema), if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateSpec {
    /// The function.
    pub kind: AggKind,
    /// Input column index; `None` only for `COUNT(*)`.
    pub arg: Option<usize>,
}

impl AggregateSpec {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggregateSpec {
            kind: AggKind::CountStar,
            arg: None,
        }
    }
    /// `COUNT(col)`.
    pub fn count(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::Count,
            arg: Some(col),
        }
    }
    /// `SUM(col)`.
    pub fn sum(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::Sum,
            arg: Some(col),
        }
    }
    /// `MIN(col)`.
    pub fn min(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::Min,
            arg: Some(col),
        }
    }
    /// `MAX(col)`.
    pub fn max(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::Max,
            arg: Some(col),
        }
    }
    /// `AVG(col)`.
    pub fn avg(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::Avg,
            arg: Some(col),
        }
    }
    /// `ANY_VALUE(col)`.
    pub fn any_value(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::AnyValue,
            arg: Some(col),
        }
    }
    /// `VAR_SAMP(col)`.
    pub fn var_samp(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::VarSamp,
            arg: Some(col),
        }
    }
    /// `STDDEV_SAMP(col)`.
    pub fn stddev_samp(col: usize) -> Self {
        AggregateSpec {
            kind: AggKind::StdDevSamp,
            arg: Some(col),
        }
    }
}

/// A validated aggregate: spec plus resolved argument type, state size,
/// output type, and the monomorphized kernels of the vectorized hot path.
#[derive(Debug, Clone, Copy)]
pub struct BoundAggregate {
    /// The original spec.
    pub spec: AggregateSpec,
    /// The argument column's type (`None` for `COUNT(*)`).
    pub arg_type: Option<LogicalType>,
    /// Bytes of in-row state (0 for `ANY_VALUE`).
    pub state_size: usize,
    /// The result type.
    pub output_type: LogicalType,
    /// Selection-vector update/combine/finalize kernels, resolved once here
    /// at bind time (see [`crate::kernel`]). The per-row functions below
    /// remain the reference oracle.
    pub kernels: crate::kernel::AggKernels,
}

// Equality on the *binding* only: the kernels are a pure function of
// (spec, arg_type), and function-pointer addresses are not comparable
// across codegen units anyway.
impl PartialEq for BoundAggregate {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.arg_type == other.arg_type
            && self.state_size == other.state_size
            && self.output_type == other.output_type
    }
}

impl Eq for BoundAggregate {}

/// Validate an aggregate against the input schema.
pub fn bind_aggregate(spec: AggregateSpec, schema: &[LogicalType]) -> Result<BoundAggregate> {
    let arg_type = match spec.arg {
        None => {
            if spec.kind != AggKind::CountStar {
                return Err(Error::InvalidInput(format!(
                    "{:?} requires an argument column",
                    spec.kind
                )));
            }
            None
        }
        Some(c) => {
            if c >= schema.len() {
                return Err(Error::InvalidInput(format!(
                    "aggregate argument column {c} out of range ({} columns)",
                    schema.len()
                )));
            }
            Some(schema[c])
        }
    };
    let (state_size, output_type) = match (spec.kind, arg_type) {
        (AggKind::CountStar, _) | (AggKind::Count, _) => (8, LogicalType::Int64),
        (AggKind::Sum, Some(LogicalType::Int32 | LogicalType::Int64)) => (8, LogicalType::Int64),
        (AggKind::Sum, Some(LogicalType::Float64)) => (8, LogicalType::Float64),
        (AggKind::Sum, Some(t)) => {
            return Err(Error::InvalidInput(format!("SUM over {t} not supported")))
        }
        (AggKind::Avg, Some(LogicalType::Int32 | LogicalType::Int64 | LogicalType::Float64)) => {
            (16, LogicalType::Float64)
        }
        (AggKind::Avg, Some(t)) => {
            return Err(Error::InvalidInput(format!("AVG over {t} not supported")))
        }
        (AggKind::Min | AggKind::Max, Some(LogicalType::Varchar)) => {
            // Updating a string state in place would break the row<->heap
            // line-up metadata the pointer recomputation relies on.
            return Err(Error::Unsupported(
                "MIN/MAX over VARCHAR (use ANY_VALUE or fixed-width keys; see DESIGN.md)".into(),
            ));
        }
        (AggKind::Min | AggKind::Max, Some(t)) => (16, t),
        (
            AggKind::VarSamp | AggKind::StdDevSamp,
            Some(LogicalType::Int32 | LogicalType::Int64 | LogicalType::Float64),
        ) => (24, LogicalType::Float64),
        (AggKind::VarSamp | AggKind::StdDevSamp, Some(t)) => {
            return Err(Error::InvalidInput(format!(
                "VAR/STDDEV over {t} not supported"
            )))
        }
        (AggKind::AnyValue, Some(t)) => (0, t),
        (k, None) => {
            return Err(Error::InvalidInput(format!(
                "{k:?} requires an argument column"
            )))
        }
    };
    Ok(BoundAggregate {
        spec,
        arg_type,
        state_size,
        output_type,
        kernels: crate::kernel::resolve(spec.kind, arg_type, output_type),
    })
}

#[inline]
unsafe fn read_i64(p: *const u8) -> i64 {
    std::ptr::read_unaligned(p as *const i64)
}
#[inline]
unsafe fn write_i64(p: *mut u8, v: i64) {
    std::ptr::write_unaligned(p as *mut i64, v);
}
#[inline]
unsafe fn read_f64(p: *const u8) -> f64 {
    std::ptr::read_unaligned(p as *const f64)
}
#[inline]
unsafe fn write_f64(p: *mut u8, v: f64) {
    std::ptr::write_unaligned(p as *mut f64, v);
}

/// Numeric input widened to the state's domain.
#[inline]
fn numeric(col: &Vector, row: usize) -> f64 {
    match col.data() {
        VectorData::I32(v) => v[row] as f64,
        VectorData::I64(v) => v[row] as f64,
        VectorData::F64(v) => v[row],
        VectorData::Str(_) => unreachable!("bound aggregates reject strings"),
    }
}

#[inline]
fn integral(col: &Vector, row: usize) -> i64 {
    match col.data() {
        VectorData::I32(v) => v[row] as i64,
        VectorData::I64(v) => v[row],
        _ => unreachable!(),
    }
}

/// Min/Max state: `[u64 seen][8-byte value as i64 or f64 bits]`.
const MM_VALUE: usize = 8;

/// Fold input row `row` of `col` into the state at `state`.
///
/// # Safety
/// `state` must point to `state_size` writable bytes of the matching bound
/// aggregate's state.
pub unsafe fn update_state(agg: &BoundAggregate, state: *mut u8, col: Option<&Vector>, row: usize) {
    match agg.spec.kind {
        AggKind::CountStar => write_i64(state, read_i64(state) + 1),
        AggKind::Count => {
            let col = col.unwrap();
            if col.validity().is_valid(row) {
                write_i64(state, read_i64(state) + 1);
            }
        }
        AggKind::Sum => {
            let col = col.unwrap();
            if !col.validity().is_valid(row) {
                return;
            }
            match agg.output_type {
                LogicalType::Int64 => {
                    write_i64(state, read_i64(state).wrapping_add(integral(col, row)))
                }
                _ => write_f64(state, read_f64(state) + numeric(col, row)),
            }
        }
        AggKind::Avg => {
            let col = col.unwrap();
            if !col.validity().is_valid(row) {
                return;
            }
            write_f64(state, read_f64(state) + numeric(col, row));
            write_i64(state.add(8), read_i64(state.add(8)) + 1);
        }
        AggKind::Min | AggKind::Max => {
            let col = col.unwrap();
            if !col.validity().is_valid(row) {
                return;
            }
            let seen = read_i64(state) != 0;
            let want_min = agg.spec.kind == AggKind::Min;
            match agg.output_type {
                LogicalType::Float64 => {
                    let v = numeric(col, row);
                    let cur = read_f64(state.add(MM_VALUE));
                    if !seen
                        || (want_min && v.total_cmp(&cur).is_lt())
                        || (!want_min && v.total_cmp(&cur).is_gt())
                    {
                        write_f64(state.add(MM_VALUE), v);
                    }
                }
                _ => {
                    let v = match col.data() {
                        VectorData::I32(d) => d[row] as i64,
                        VectorData::I64(d) => d[row],
                        _ => unreachable!(),
                    };
                    let cur = read_i64(state.add(MM_VALUE));
                    if !seen || (want_min && v < cur) || (!want_min && v > cur) {
                        write_i64(state.add(MM_VALUE), v);
                    }
                }
            }
            write_i64(state, 1);
        }
        AggKind::VarSamp | AggKind::StdDevSamp => {
            // Welford: state = [count i64][mean f64][M2 f64].
            let col = col.unwrap();
            if !col.validity().is_valid(row) {
                return;
            }
            let x = numeric(col, row);
            let n = read_i64(state) + 1;
            let mean = read_f64(state.add(8));
            let m2 = read_f64(state.add(16));
            let delta = x - mean;
            let mean2 = mean + delta / n as f64;
            write_i64(state, n);
            write_f64(state.add(8), mean2);
            write_f64(state.add(16), m2 + delta * (x - mean2));
        }
        AggKind::AnyValue => unreachable!("ANY_VALUE has no state"),
    }
}

/// Merge `src` into `dst` (phase-2 duplicate-group combining).
///
/// # Safety
/// Both pointers must address valid states of this bound aggregate.
pub unsafe fn combine_state(agg: &BoundAggregate, src: *const u8, dst: *mut u8) {
    match agg.spec.kind {
        AggKind::CountStar | AggKind::Count => write_i64(dst, read_i64(dst) + read_i64(src)),
        AggKind::Sum => match agg.output_type {
            LogicalType::Int64 => write_i64(dst, read_i64(dst).wrapping_add(read_i64(src))),
            _ => write_f64(dst, read_f64(dst) + read_f64(src)),
        },
        AggKind::Avg => {
            write_f64(dst, read_f64(dst) + read_f64(src));
            write_i64(dst.add(8), read_i64(dst.add(8)) + read_i64(src.add(8)));
        }
        AggKind::Min | AggKind::Max => {
            if read_i64(src) == 0 {
                return; // src never saw a value
            }
            let dst_seen = read_i64(dst) != 0;
            let want_min = agg.spec.kind == AggKind::Min;
            match agg.output_type {
                LogicalType::Float64 => {
                    let sv = read_f64(src.add(MM_VALUE));
                    let dv = read_f64(dst.add(MM_VALUE));
                    if !dst_seen
                        || (want_min && sv.total_cmp(&dv).is_lt())
                        || (!want_min && sv.total_cmp(&dv).is_gt())
                    {
                        write_f64(dst.add(MM_VALUE), sv);
                    }
                }
                _ => {
                    let sv = read_i64(src.add(MM_VALUE));
                    let dv = read_i64(dst.add(MM_VALUE));
                    if !dst_seen || (want_min && sv < dv) || (!want_min && sv > dv) {
                        write_i64(dst.add(MM_VALUE), sv);
                    }
                }
            }
            write_i64(dst, 1);
        }
        AggKind::VarSamp | AggKind::StdDevSamp => {
            // Chan et al.: parallel combination of Welford states.
            let nb = read_i64(src);
            if nb == 0 {
                return;
            }
            let na = read_i64(dst);
            let (ma, m2a) = (read_f64(dst.add(8)), read_f64(dst.add(16)));
            let (mb, m2b) = (read_f64(src.add(8)), read_f64(src.add(16)));
            let n = na + nb;
            let delta = mb - ma;
            let mean = ma + delta * nb as f64 / n as f64;
            let m2 = m2a + m2b + delta * delta * na as f64 * nb as f64 / n as f64;
            write_i64(dst, n);
            write_f64(dst.add(8), mean);
            write_f64(dst.add(16), m2);
        }
        AggKind::AnyValue => unreachable!("ANY_VALUE has no state"),
    }
}

/// Produce the final value of a state.
///
/// # Safety
/// `state` must address a valid state of this bound aggregate.
pub unsafe fn finalize_state(agg: &BoundAggregate, state: *const u8) -> Value {
    match agg.spec.kind {
        AggKind::CountStar | AggKind::Count => Value::Int64(read_i64(state)),
        AggKind::Sum => match agg.output_type {
            LogicalType::Int64 => Value::Int64(read_i64(state)),
            _ => Value::Float64(read_f64(state)),
        },
        AggKind::Avg => {
            let count = read_i64(state.add(8));
            if count == 0 {
                Value::Null
            } else {
                Value::Float64(read_f64(state) / count as f64)
            }
        }
        AggKind::Min | AggKind::Max => {
            if read_i64(state) == 0 {
                return Value::Null;
            }
            match agg.output_type {
                LogicalType::Float64 => Value::Float64(read_f64(state.add(MM_VALUE))),
                LogicalType::Int32 => Value::Int32(read_i64(state.add(MM_VALUE)) as i32),
                LogicalType::Date => Value::Date(read_i64(state.add(MM_VALUE)) as i32),
                LogicalType::Int64 => Value::Int64(read_i64(state.add(MM_VALUE))),
                LogicalType::Varchar => unreachable!("rejected at bind time"),
            }
        }
        AggKind::VarSamp | AggKind::StdDevSamp => {
            let n = read_i64(state);
            if n < 2 {
                return Value::Null;
            }
            let var = read_f64(state.add(16)) / (n - 1) as f64;
            if agg.spec.kind == AggKind::VarSamp {
                Value::Float64(var)
            } else {
                Value::Float64(var.sqrt())
            }
        }
        AggKind::AnyValue => unreachable!("ANY_VALUE has no state"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_for(agg: &BoundAggregate) -> Vec<u8> {
        vec![0u8; agg.state_size.max(1)]
    }

    #[test]
    fn bind_rejects_bad_args() {
        let schema = [LogicalType::Int64, LogicalType::Varchar];
        assert!(bind_aggregate(AggregateSpec::sum(5), &schema).is_err());
        assert!(bind_aggregate(AggregateSpec::sum(1), &schema).is_err()); // string sum
        assert!(bind_aggregate(AggregateSpec::min(1), &schema).is_err()); // string min
        assert!(bind_aggregate(
            AggregateSpec {
                kind: AggKind::Sum,
                arg: None
            },
            &schema
        )
        .is_err());
        assert!(bind_aggregate(AggregateSpec::count_star(), &schema).is_ok());
        assert!(bind_aggregate(AggregateSpec::any_value(1), &schema).is_ok());
    }

    #[test]
    fn count_and_count_star() {
        let schema = [LogicalType::Int64];
        let star = bind_aggregate(AggregateSpec::count_star(), &schema).unwrap();
        let cnt = bind_aggregate(AggregateSpec::count(0), &schema).unwrap();
        let col = Vector::from_values(
            LogicalType::Int64,
            &[Value::Int64(1), Value::Null, Value::Int64(3)],
        )
        .unwrap();
        let mut s1 = state_for(&star);
        let mut s2 = state_for(&cnt);
        unsafe {
            for row in 0..3 {
                update_state(&star, s1.as_mut_ptr(), None, row);
                update_state(&cnt, s2.as_mut_ptr(), Some(&col), row);
            }
            assert_eq!(finalize_state(&star, s1.as_ptr()), Value::Int64(3));
            assert_eq!(finalize_state(&cnt, s2.as_ptr()), Value::Int64(2));
        }
    }

    #[test]
    fn sum_int_and_float() {
        let si = bind_aggregate(AggregateSpec::sum(0), &[LogicalType::Int32]).unwrap();
        assert_eq!(si.output_type, LogicalType::Int64);
        let ci = Vector::from_i32(vec![1, 2, 3]);
        let mut s = state_for(&si);
        unsafe {
            for row in 0..3 {
                update_state(&si, s.as_mut_ptr(), Some(&ci), row);
            }
            assert_eq!(finalize_state(&si, s.as_ptr()), Value::Int64(6));
        }

        let sf = bind_aggregate(AggregateSpec::sum(0), &[LogicalType::Float64]).unwrap();
        let cf = Vector::from_f64(vec![0.5, 1.5]);
        let mut s = state_for(&sf);
        unsafe {
            update_state(&sf, s.as_mut_ptr(), Some(&cf), 0);
            update_state(&sf, s.as_mut_ptr(), Some(&cf), 1);
            assert_eq!(finalize_state(&sf, s.as_ptr()), Value::Float64(2.0));
        }
    }

    #[test]
    fn min_max_with_nulls_and_negatives() {
        let schema = [LogicalType::Int64];
        let mn = bind_aggregate(AggregateSpec::min(0), &schema).unwrap();
        let mx = bind_aggregate(AggregateSpec::max(0), &schema).unwrap();
        let col = Vector::from_values(
            LogicalType::Int64,
            &[Value::Null, Value::Int64(-5), Value::Int64(2), Value::Null],
        )
        .unwrap();
        let mut smn = state_for(&mn);
        let mut smx = state_for(&mx);
        unsafe {
            for row in 0..4 {
                update_state(&mn, smn.as_mut_ptr(), Some(&col), row);
                update_state(&mx, smx.as_mut_ptr(), Some(&col), row);
            }
            assert_eq!(finalize_state(&mn, smn.as_ptr()), Value::Int64(-5));
            assert_eq!(finalize_state(&mx, smx.as_ptr()), Value::Int64(2));
        }
    }

    #[test]
    fn min_all_null_is_null() {
        let mn = bind_aggregate(AggregateSpec::min(0), &[LogicalType::Int64]).unwrap();
        let col = Vector::from_values(LogicalType::Int64, &[Value::Null]).unwrap();
        let mut s = state_for(&mn);
        unsafe {
            update_state(&mn, s.as_mut_ptr(), Some(&col), 0);
            assert_eq!(finalize_state(&mn, s.as_ptr()), Value::Null);
        }
    }

    #[test]
    fn min_zero_is_a_real_value() {
        // Regression guard: zeroed state must not make 0 look like "seen 0".
        let mn = bind_aggregate(AggregateSpec::min(0), &[LogicalType::Int64]).unwrap();
        let col = Vector::from_i64(vec![5]);
        let mut s = state_for(&mn);
        unsafe {
            update_state(&mn, s.as_mut_ptr(), Some(&col), 0);
            assert_eq!(finalize_state(&mn, s.as_ptr()), Value::Int64(5));
        }
    }

    #[test]
    fn avg_and_avg_of_nothing() {
        let avg = bind_aggregate(AggregateSpec::avg(0), &[LogicalType::Int32]).unwrap();
        let col = Vector::from_i32(vec![1, 2, 4]);
        let mut s = state_for(&avg);
        unsafe {
            for row in 0..3 {
                update_state(&avg, s.as_mut_ptr(), Some(&col), row);
            }
            assert_eq!(finalize_state(&avg, s.as_ptr()), Value::Float64(7.0 / 3.0));
        }
        let empty = state_for(&avg);
        unsafe {
            assert_eq!(finalize_state(&avg, empty.as_ptr()), Value::Null);
        }
    }

    #[test]
    fn combine_merges_partial_states() {
        let schema = [LogicalType::Int64];
        for (spec, expect) in [
            (AggregateSpec::sum(0), Value::Int64(10)),
            (AggregateSpec::min(0), Value::Int64(1)),
            (AggregateSpec::max(0), Value::Int64(4)),
            (AggregateSpec::count(0), Value::Int64(4)),
        ] {
            let agg = bind_aggregate(spec, &schema).unwrap();
            let col = Vector::from_i64(vec![1, 2, 3, 4]);
            let mut a = state_for(&agg);
            let mut b = state_for(&agg);
            unsafe {
                update_state(&agg, a.as_mut_ptr(), Some(&col), 0);
                update_state(&agg, a.as_mut_ptr(), Some(&col), 1);
                update_state(&agg, b.as_mut_ptr(), Some(&col), 2);
                update_state(&agg, b.as_mut_ptr(), Some(&col), 3);
                combine_state(&agg, b.as_ptr(), a.as_mut_ptr());
                assert_eq!(finalize_state(&agg, a.as_ptr()), expect, "{spec:?}");
            }
        }
    }

    #[test]
    fn combine_min_with_empty_src() {
        let agg = bind_aggregate(AggregateSpec::min(0), &[LogicalType::Int64]).unwrap();
        let col = Vector::from_i64(vec![3]);
        let mut a = state_for(&agg);
        let b = state_for(&agg); // never updated
        unsafe {
            update_state(&agg, a.as_mut_ptr(), Some(&col), 0);
            combine_state(&agg, b.as_ptr(), a.as_mut_ptr());
            assert_eq!(finalize_state(&agg, a.as_ptr()), Value::Int64(3));
            // And the reverse: empty dst adopts src.
            let mut c = state_for(&agg);
            combine_state(&agg, a.as_ptr(), c.as_mut_ptr());
            assert_eq!(finalize_state(&agg, c.as_ptr()), Value::Int64(3));
        }
    }

    #[test]
    fn min_max_date_output_type() {
        let agg = bind_aggregate(AggregateSpec::max(0), &[LogicalType::Date]).unwrap();
        assert_eq!(agg.output_type, LogicalType::Date);
        let col = Vector::from_dates(vec![100, 300, 200]);
        let mut s = state_for(&agg);
        unsafe {
            for row in 0..3 {
                update_state(&agg, s.as_mut_ptr(), Some(&col), row);
            }
            assert_eq!(finalize_state(&agg, s.as_ptr()), Value::Date(300));
        }
    }

    #[test]
    fn float_min_handles_nan_total_order() {
        let agg = bind_aggregate(AggregateSpec::min(0), &[LogicalType::Float64]).unwrap();
        let col = Vector::from_f64(vec![f64::NAN, 1.0]);
        let mut s = state_for(&agg);
        unsafe {
            update_state(&agg, s.as_mut_ptr(), Some(&col), 0);
            update_state(&agg, s.as_mut_ptr(), Some(&col), 1);
            assert_eq!(finalize_state(&agg, s.as_ptr()), Value::Float64(1.0));
        }
    }
}

#[cfg(test)]
mod variance_tests {
    use super::*;

    fn state_for(agg: &BoundAggregate) -> Vec<u8> {
        vec![0u8; agg.state_size.max(1)]
    }

    #[test]
    fn variance_matches_two_pass() {
        let agg = bind_aggregate(AggregateSpec::var_samp(0), &[LogicalType::Float64]).unwrap();
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let col = Vector::from_f64(vals.to_vec());
        let mut s = state_for(&agg);
        unsafe {
            for i in 0..vals.len() {
                update_state(&agg, s.as_mut_ptr(), Some(&col), i);
            }
            let Value::Float64(v) = finalize_state(&agg, s.as_ptr()) else {
                panic!()
            };
            // Two-pass sample variance of this classic dataset is 32/7.
            assert!((v - 32.0 / 7.0).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn stddev_combine_equals_single_pass() {
        let agg = bind_aggregate(AggregateSpec::stddev_samp(0), &[LogicalType::Int64]).unwrap();
        let vals: Vec<i64> = (0..1000).map(|i| (i * i) % 97).collect();
        let col = Vector::from_i64(vals.clone());
        // Single state over everything.
        let mut whole = state_for(&agg);
        // Two partial states combined.
        let mut a = state_for(&agg);
        let mut b = state_for(&agg);
        unsafe {
            for i in 0..vals.len() {
                update_state(&agg, whole.as_mut_ptr(), Some(&col), i);
                if i < 400 {
                    update_state(&agg, a.as_mut_ptr(), Some(&col), i);
                } else {
                    update_state(&agg, b.as_mut_ptr(), Some(&col), i);
                }
            }
            combine_state(&agg, b.as_ptr(), a.as_mut_ptr());
            let Value::Float64(x) = finalize_state(&agg, whole.as_ptr()) else {
                panic!()
            };
            let Value::Float64(y) = finalize_state(&agg, a.as_ptr()) else {
                panic!()
            };
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn variance_of_one_value_is_null() {
        let agg = bind_aggregate(AggregateSpec::var_samp(0), &[LogicalType::Int64]).unwrap();
        let col = Vector::from_i64(vec![42]);
        let mut s = state_for(&agg);
        unsafe {
            update_state(&agg, s.as_mut_ptr(), Some(&col), 0);
            assert_eq!(finalize_state(&agg, s.as_ptr()), Value::Null);
        }
    }

    #[test]
    fn variance_rejects_strings_and_dates() {
        assert!(bind_aggregate(AggregateSpec::var_samp(0), &[LogicalType::Varchar]).is_err());
        assert!(bind_aggregate(AggregateSpec::stddev_samp(0), &[LogicalType::Date]).is_err());
    }

    #[test]
    fn combine_with_empty_side_is_identity() {
        let agg = bind_aggregate(AggregateSpec::var_samp(0), &[LogicalType::Int64]).unwrap();
        let col = Vector::from_i64(vec![1, 2, 3]);
        let mut a = state_for(&agg);
        let b = state_for(&agg); // empty
        unsafe {
            for i in 0..3 {
                update_state(&agg, a.as_mut_ptr(), Some(&col), i);
            }
            let before = finalize_state(&agg, a.as_ptr());
            combine_state(&agg, b.as_ptr(), a.as_mut_ptr());
            assert_eq!(finalize_state(&agg, a.as_ptr()), before);
            // Empty dst adopting src also works.
            let mut c = state_for(&agg);
            combine_state(&agg, a.as_ptr(), c.as_mut_ptr());
            assert_eq!(finalize_state(&agg, c.as_ptr()), before);
        }
    }
}
