//! Baseline aggregation strategies (reproducing the comparison systems'
//! failure modes — see DESIGN.md, substitutions table).

pub mod inmemory;
pub(crate) mod keyser;
pub mod sortagg;
pub mod switch;

pub use inmemory::in_memory_aggregate;
pub use sortagg::sort_aggregate;
pub use switch::switch_aggregate;

#[cfg(test)]
mod tests {
    use super::switch::{CollectionScan, SwitchOutcome};
    use super::*;
    use crate::function::AggregateSpec;
    use crate::simple::{reference_aggregate, sorted_rows};
    use parking_lot::Mutex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rexa_buffer::{BufferManager, BufferManagerConfig};
    use rexa_exec::pipeline::{CancelToken, CollectionSource};
    use rexa_exec::{ChunkCollection, DataChunk, LogicalType, Vector, VECTOR_SIZE};
    use rexa_storage::scratch_dir;
    use std::sync::Arc;

    fn mgr_with(limit: usize) -> Arc<BufferManager> {
        BufferManager::new(
            BufferManagerConfig::with_limit(limit)
                .page_size(4 << 10)
                .temp_dir(scratch_dir("baseline").unwrap()),
        )
        .unwrap()
    }

    fn make_input(rows: usize, groups: usize, seed: u64) -> ChunkCollection {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coll = ChunkCollection::new(vec![
            LogicalType::Int64,
            LogicalType::Int64,
            LogicalType::Varchar,
        ]);
        let mut remaining = rows;
        while remaining > 0 {
            let n = remaining.min(VECTOR_SIZE);
            remaining -= n;
            let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..groups) as i64).collect();
            let vals: Vec<i64> = keys.iter().map(|k| k + 3).collect();
            let strs: Vec<String> = keys.iter().map(|k| format!("group-{k}")).collect();
            coll.push(DataChunk::new(vec![
                Vector::from_i64(keys),
                Vector::from_i64(vals),
                Vector::from_strs(strs),
            ]))
            .unwrap();
        }
        coll
    }

    fn plan() -> (Vec<usize>, Vec<AggregateSpec>) {
        (
            vec![0],
            vec![
                AggregateSpec::count_star(),
                AggregateSpec::sum(1),
                AggregateSpec::any_value(2),
                AggregateSpec::min(1),
            ],
        )
    }

    fn want(coll: &ChunkCollection) -> Vec<Vec<rexa_exec::Value>> {
        let (g, a) = plan();
        let source = CollectionSource::new(coll);
        reference_aggregate(&source, coll.types(), &g, &a).unwrap()
    }

    #[test]
    fn inmemory_matches_reference() {
        let coll = make_input(20_000, 700, 11);
        let mgr = mgr_with(256 << 20);
        let (g, a) = plan();
        let out = Mutex::new(Vec::new());
        let source = CollectionSource::new(&coll);
        let groups = in_memory_aggregate(
            &mgr,
            &source,
            coll.types(),
            &g,
            &a,
            4,
            &CancelToken::new(),
            &|c| {
                out.lock().push(c);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(groups, 700);
        assert_eq!(sorted_rows(&out.lock()), want(&coll));
    }

    #[test]
    fn inmemory_aborts_when_over_limit() {
        let coll = make_input(50_000, 50_000, 12);
        let mgr = mgr_with(1 << 20); // 1 MiB: nowhere near enough
        let (g, a) = plan();
        let source = CollectionSource::new(&coll);
        let err = in_memory_aggregate(
            &mgr,
            &source,
            coll.types(),
            &g,
            &a,
            4,
            &CancelToken::new(),
            &|_| Ok(()),
        )
        .unwrap_err();
        assert!(err.is_oom(), "expected abort, got {err}");
        // Reservations must be released after the failed run.
        drop(source);
        assert_eq!(mgr.stats().non_paged, 0);
    }

    #[test]
    fn sortagg_matches_reference_in_memory_run() {
        let coll = make_input(10_000, 300, 13);
        let mgr = mgr_with(256 << 20);
        let (g, a) = plan();
        let out = Mutex::new(Vec::new());
        let source = CollectionSource::new(&coll);
        let stats = sort_aggregate(
            &mgr,
            &source,
            coll.types(),
            &g,
            &a,
            &CancelToken::new(),
            &|c| {
                out.lock().push(c);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(stats.groups, 300);
        assert_eq!(stats.runs, 0, "should have fit in one in-memory run");
        assert_eq!(sorted_rows(&out.lock()), want(&coll));
    }

    #[test]
    fn sortagg_spills_runs_and_matches_reference() {
        let coll = make_input(40_000, 35_000, 14);
        let mgr = mgr_with(2 << 20); // force multiple runs
        let (g, a) = plan();
        let out = Mutex::new(Vec::new());
        let source = CollectionSource::new(&coll);
        let stats = sort_aggregate(
            &mgr,
            &source,
            coll.types(),
            &g,
            &a,
            &CancelToken::new(),
            &|c| {
                out.lock().push(c);
                Ok(())
            },
        )
        .unwrap();
        assert!(
            stats.runs >= 2,
            "expected external runs, got {}",
            stats.runs
        );
        assert!(stats.spill_bytes > 0);
        assert_eq!(sorted_rows(&out.lock()), want(&coll));
    }

    #[test]
    fn switch_stays_in_memory_when_it_fits() {
        let coll = make_input(10_000, 200, 15);
        let mgr = mgr_with(256 << 20);
        let (g, a) = plan();
        let out = Mutex::new(Vec::new());
        let outcome = switch_aggregate(
            &mgr,
            &CollectionScan(&coll),
            coll.types(),
            &g,
            &a,
            4,
            &CancelToken::new(),
            &|c| {
                out.lock().push(c);
                Ok(())
            },
        )
        .unwrap();
        assert!(!outcome.switched());
        assert_eq!(outcome.groups(), 200);
        assert_eq!(sorted_rows(&out.lock()), want(&coll));
    }

    #[test]
    fn switch_falls_off_the_cliff_when_it_does_not_fit() {
        let coll = make_input(40_000, 38_000, 16);
        let mgr = mgr_with(2 << 20);
        let (g, a) = plan();
        let out = Mutex::new(Vec::new());
        let outcome = switch_aggregate(
            &mgr,
            &CollectionScan(&coll),
            coll.types(),
            &g,
            &a,
            4,
            &CancelToken::new(),
            &|c| {
                out.lock().push(c);
                Ok(())
            },
        )
        .unwrap();
        assert!(outcome.switched(), "expected the cliff");
        assert_eq!(sorted_rows(&out.lock()), want(&coll));
        match outcome {
            SwitchOutcome::SwitchedToExternal { stats } => assert!(stats.runs >= 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cancellation_stops_baselines() {
        let coll = make_input(5_000, 100, 17);
        let mgr = mgr_with(256 << 20);
        let (g, a) = plan();
        let cancel = CancelToken::new();
        cancel.cancel();
        let source = CollectionSource::new(&coll);
        let err =
            sort_aggregate(&mgr, &source, coll.types(), &g, &a, &cancel, &|_| Ok(())).unwrap_err();
        assert!(matches!(err, rexa_exec::Error::Cancelled));
        let source = CollectionSource::new(&coll);
        let err = in_memory_aggregate(&mgr, &source, coll.types(), &g, &a, 2, &cancel, &|_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, rexa_exec::Error::Cancelled));
    }
}
