//! Baseline 3: **switch-on-overflow** — run the fast in-memory algorithm,
//! and if it aborts with out-of-memory, *restart* the whole query with the
//! external sort algorithm.
//!
//! This is the strategy the paper attributes to systems like HyPer: it works,
//! but the moment the input crosses the memory limit the runtime jumps by the
//! full cost of a wasted first attempt plus the slower external algorithm —
//! the performance cliff of Figure 1. Adding one row to a table can trigger
//! it.

use crate::baselines::inmemory::in_memory_aggregate;
use crate::baselines::sortagg::{sort_aggregate, SortAggStats};
use crate::function::AggregateSpec;
use rexa_buffer::BufferManager;
use rexa_exec::pipeline::{CancelToken, ChunkSource};
use rexa_exec::{DataChunk, LogicalType, Result};
use std::sync::Arc;

/// A source that can be scanned multiple times — required by the restart.
pub trait Scannable: Sync {
    /// A fresh scan.
    fn scan_source(&self) -> Box<dyn ChunkSource + '_>;
}

/// Wraps a [`rexa_exec::ChunkCollection`] as a rescannable source.
pub struct CollectionScan<'a>(pub &'a rexa_exec::ChunkCollection);

impl Scannable for CollectionScan<'_> {
    fn scan_source(&self) -> Box<dyn ChunkSource + '_> {
        Box::new(rexa_exec::pipeline::CollectionSource::new(self.0))
    }
}

/// Wraps a persistent [`rexa_buffer::Table`] as a rescannable source.
pub struct TableScan<'a> {
    /// The table.
    pub table: &'a rexa_buffer::Table,
    /// The buffer manager to pin pages through.
    pub mgr: Arc<BufferManager>,
}

impl Scannable for TableScan<'_> {
    fn scan_source(&self) -> Box<dyn ChunkSource + '_> {
        Box::new(self.table.scan(&self.mgr))
    }
}

/// What the switch baseline ended up doing.
#[derive(Debug, Clone, Copy)]
pub enum SwitchOutcome {
    /// The in-memory attempt succeeded.
    InMemory {
        /// Groups produced.
        groups: usize,
    },
    /// The in-memory attempt hit the limit; the query was restarted with the
    /// external sort algorithm.
    SwitchedToExternal {
        /// Stats of the external run.
        stats: SortAggStats,
    },
}

impl SwitchOutcome {
    /// Groups produced, whichever path ran.
    pub fn groups(&self) -> usize {
        match self {
            SwitchOutcome::InMemory { groups } => *groups,
            SwitchOutcome::SwitchedToExternal { stats } => stats.groups,
        }
    }

    /// True if the cliff was hit.
    pub fn switched(&self) -> bool {
        matches!(self, SwitchOutcome::SwitchedToExternal { .. })
    }
}

/// Run the switch baseline. (The in-memory attempt emits output only after
/// it has consumed all input, so an abort never leaves partial output with
/// the consumer.)
#[allow(clippy::too_many_arguments)]
pub fn switch_aggregate(
    mgr: &Arc<BufferManager>,
    input: &dyn Scannable,
    input_schema: &[LogicalType],
    group_cols: &[usize],
    aggregates: &[AggregateSpec],
    threads: usize,
    cancel: &CancelToken,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
) -> Result<SwitchOutcome> {
    let source = input.scan_source();
    match in_memory_aggregate(
        mgr,
        source.as_ref(),
        input_schema,
        group_cols,
        aggregates,
        threads,
        cancel,
        consumer,
    ) {
        Ok(groups) => Ok(SwitchOutcome::InMemory { groups }),
        Err(e) if e.is_oom() => {
            // The cliff: restart from scratch with the external algorithm.
            let source = input.scan_source();
            let stats = sort_aggregate(
                mgr,
                source.as_ref(),
                input_schema,
                group_cols,
                aggregates,
                cancel,
                consumer,
            )?;
            Ok(SwitchOutcome::SwitchedToExternal { stats })
        }
        Err(e) => Err(e),
    }
}
