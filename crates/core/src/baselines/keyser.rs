//! Typed byte serialization of group keys and argument values, shared by the
//! baseline aggregators. Equal values always serialize to equal bytes
//! (floats are normalized so `-0.0 == 0.0`; NULL has its own tag), so byte
//! equality is group equality and byte-sorted runs cluster equal groups.

use rexa_exec::vector::VectorData;
use rexa_exec::{Error, LogicalType, Result, Value, Vector};

/// Append the encoding of `col[row]` to `out`.
pub(crate) fn serialize_value(col: &Vector, row: usize, out: &mut Vec<u8>) {
    if !col.validity().is_valid(row) {
        out.push(0);
        return;
    }
    out.push(1);
    match col.data() {
        VectorData::I32(v) => out.extend_from_slice(&v[row].to_le_bytes()),
        VectorData::I64(v) => out.extend_from_slice(&v[row].to_le_bytes()),
        VectorData::F64(v) => {
            let x = if v[row] == 0.0 { 0.0 } else { v[row] };
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        VectorData::Str(v) => {
            let s = v.get(row).as_bytes();
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        }
    }
}

/// Append the encodings of one row of several columns.
pub(crate) fn serialize_row(cols: &[&Vector], row: usize, out: &mut Vec<u8>) {
    for col in cols {
        serialize_value(col, row, out);
    }
}

/// Decode one value of type `ty` at `pos`, advancing it.
pub(crate) fn decode_value(bytes: &[u8], pos: &mut usize, ty: LogicalType) -> Result<Value> {
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| Error::Internal("truncated key".into()))?;
    *pos += 1;
    if tag == 0 {
        return Ok(Value::Null);
    }
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let end = *pos + n;
        let s = bytes
            .get(*pos..end)
            .ok_or_else(|| Error::Internal("truncated key".into()))?;
        *pos = end;
        Ok(s)
    };
    Ok(match ty {
        LogicalType::Int32 => Value::Int32(i32::from_le_bytes(take(pos, 4)?.try_into().unwrap())),
        LogicalType::Date => Value::Date(i32::from_le_bytes(take(pos, 4)?.try_into().unwrap())),
        LogicalType::Int64 => Value::Int64(i64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
        LogicalType::Float64 => Value::Float64(f64::from_bits(u64::from_le_bytes(
            take(pos, 8)?.try_into().unwrap(),
        ))),
        LogicalType::Varchar => {
            let len = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
            let s = take(pos, len)?;
            Value::Varchar(
                std::str::from_utf8(s)
                    .map_err(|_| Error::Internal("invalid UTF-8 in key".into()))?
                    .to_string(),
            )
        }
    })
}

/// Decode a whole row of `types` at `pos`.
pub(crate) fn decode_row(
    bytes: &[u8],
    pos: &mut usize,
    types: &[LogicalType],
) -> Result<Vec<Value>> {
    types.iter().map(|&t| decode_value(bytes, pos, t)).collect()
}

/// A fast, non-cryptographic hasher for byte keys (FxHash-style folding).
#[derive(Default, Clone)]
pub(crate) struct ByteHasher(u64);

impl std::hash::Hasher for ByteHasher {
    fn finish(&self) -> u64 {
        rexa_exec::hashing::mix64(self.0)
    }
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut lane = [0u8; 8];
            lane[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0.rotate_left(5) ^ u64::from_le_bytes(lane))
                .wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }
}

/// BuildHasher for [`ByteHasher`].
#[derive(Default, Clone)]
pub(crate) struct ByteHashBuilder;

impl std::hash::BuildHasher for ByteHashBuilder {
    type Hasher = ByteHasher;
    fn build_hasher(&self) -> ByteHasher {
        ByteHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let cols = [
            Vector::from_i32(vec![-7]),
            Vector::from_dates(vec![123]),
            Vector::from_i64(vec![1 << 40]),
            Vector::from_f64(vec![2.5]),
            Vector::from_strs(["hello world, a longer string"]),
        ];
        let types = [
            LogicalType::Int32,
            LogicalType::Date,
            LogicalType::Int64,
            LogicalType::Float64,
            LogicalType::Varchar,
        ];
        let refs: Vec<&Vector> = cols.iter().collect();
        let mut bytes = Vec::new();
        serialize_row(&refs, 0, &mut bytes);
        let mut pos = 0;
        let row = decode_row(&bytes, &mut pos, &types).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(
            row,
            vec![
                Value::Int32(-7),
                Value::Date(123),
                Value::Int64(1 << 40),
                Value::Float64(2.5),
                Value::Varchar("hello world, a longer string".into()),
            ]
        );
    }

    #[test]
    fn null_round_trip() {
        let col = Vector::from_values(LogicalType::Varchar, &[Value::Null]).unwrap();
        let mut bytes = Vec::new();
        serialize_value(&col, 0, &mut bytes);
        assert_eq!(bytes, vec![0]);
        let mut pos = 0;
        assert_eq!(
            decode_value(&bytes, &mut pos, LogicalType::Varchar).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn negative_zero_normalized() {
        let a = Vector::from_f64(vec![0.0]);
        let b = Vector::from_f64(vec![-0.0]);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        serialize_value(&a, 0, &mut ba);
        serialize_value(&b, 0, &mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn truncated_input_is_error_not_panic() {
        let mut pos = 0;
        assert!(decode_value(&[1, 0], &mut pos, LogicalType::Int64).is_err());
        let mut pos = 0;
        assert!(decode_value(&[], &mut pos, LogicalType::Int32).is_err());
    }
}
