//! Baseline 1: pure in-memory hash aggregation that **aborts** when the
//! memory limit is exceeded.
//!
//! This is the behaviour the paper's evaluation observes from Umbra on the
//! wide groupings at SF ≥ 32 ('A' cells in Tables II/III) and from
//! ClickHouse at SF 128: excellent while everything fits, a hard error the
//! moment it does not. Memory is accounted against the shared buffer
//! manager via non-paged reservations, so running this baseline also
//! pressures cached pages — but its own state cannot spill.

use crate::baselines::keyser::{decode_row, serialize_row, ByteHashBuilder};
use crate::function::{
    bind_aggregate, finalize_state, update_state, AggKind, AggregateSpec, BoundAggregate,
};
use parking_lot::Mutex;
use rexa_buffer::BufferManager;
use rexa_exec::pipeline::{CancelToken, ChunkSource, LocalSink, ParallelSink, Pipeline};
use rexa_exec::{DataChunk, Error, LogicalType, Result, Value, Vector};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-group state: fixed aggregate states plus owned ANY_VALUE slots.
struct GroupEntry {
    states: Box<[u8]>,
    any: Box<[Option<Value>]>,
}

/// Approximate bytes one map entry costs (key + entry + map overhead).
fn entry_cost(key_len: usize, states: usize, any: &[Option<Value>]) -> usize {
    let any_bytes: usize = any
        .iter()
        .map(|v| match v {
            Some(Value::Varchar(s)) => 32 + s.len(),
            _ => 24,
        })
        .sum();
    key_len + states + any_bytes + 64
}

struct Bound {
    group_cols: Vec<usize>,
    aggs: Vec<BoundAggregate>,
    state_offsets: Vec<usize>,
    states_size: usize,
    any_count: usize,
    output_types: Vec<LogicalType>,
    group_types: Vec<LogicalType>,
}

fn bind(
    schema: &[LogicalType],
    group_cols: &[usize],
    aggregates: &[AggregateSpec],
) -> Result<Bound> {
    if group_cols.is_empty() {
        return Err(Error::Unsupported("ungrouped aggregation".into()));
    }
    let mut aggs = Vec::new();
    let mut state_offsets = Vec::new();
    let mut states_size = 0usize;
    let mut any_count = 0usize;
    let group_types: Vec<LogicalType> = group_cols.iter().map(|&c| schema[c]).collect();
    let mut output_types = group_types.clone();
    for spec in aggregates {
        let b = bind_aggregate(*spec, schema)?;
        output_types.push(b.output_type);
        if b.spec.kind == AggKind::AnyValue {
            any_count += 1;
        }
        state_offsets.push(states_size);
        states_size += b.state_size;
        aggs.push(b);
    }
    Ok(Bound {
        group_cols: group_cols.to_vec(),
        aggs,
        state_offsets,
        states_size,
        any_count,
        output_types,
        group_types,
    })
}

type GroupMap = HashMap<Box<[u8]>, GroupEntry, ByteHashBuilder>;

struct MergedState {
    map: GroupMap,
    /// Reservation covering the merged map's bytes; released when the sink
    /// (and with it the map) is dropped after emitting.
    reservation: Option<rexa_buffer::MemoryReservation>,
    bytes: usize,
}

struct InMemSink<'a> {
    bound: &'a Bound,
    mgr: &'a Arc<BufferManager>,
    cancel: &'a CancelToken,
    merged: Mutex<MergedState>,
}

struct InMemLocal<'a> {
    sink: &'a InMemSink<'a>,
    map: GroupMap,
    reservation: rexa_buffer::MemoryReservation,
    bytes: usize,
    key_scratch: Vec<u8>,
}

/// Reservation is re-synced to actual usage every this many new bytes.
const RESERVE_STEP: usize = 1 << 20;

impl ParallelSink for InMemSink<'_> {
    fn local(&self) -> Result<Box<dyn LocalSink + '_>> {
        Ok(Box::new(InMemLocal {
            sink: self,
            map: GroupMap::default(),
            reservation: self.mgr.reserve(0)?,
            bytes: 0,
            key_scratch: Vec::new(),
        }))
    }
}

impl InMemLocal<'_> {
    fn grow(&mut self, added: usize) -> Result<()> {
        self.bytes += added;
        if self.bytes > self.reservation.size() {
            // Reserve in steps; failure here is the abort the paper's 'A'
            // cells correspond to.
            self.reservation
                .resize(self.bytes.next_multiple_of(RESERVE_STEP))?;
        }
        Ok(())
    }
}

impl LocalSink for InMemLocal<'_> {
    fn sink(&mut self, chunk: &DataChunk) -> Result<()> {
        self.sink.cancel.check()?;
        let bound = self.sink.bound;
        let group_views: Vec<&Vector> = bound.group_cols.iter().map(|&c| chunk.column(c)).collect();
        for i in 0..chunk.len() {
            self.key_scratch.clear();
            serialize_row(&group_views, i, &mut self.key_scratch);
            let mut added = 0usize;
            let entry = match self.map.get_mut(self.key_scratch.as_slice()) {
                Some(e) => e,
                None => {
                    let key: Box<[u8]> = self.key_scratch.as_slice().into();
                    let e = GroupEntry {
                        states: vec![0u8; bound.states_size].into_boxed_slice(),
                        any: vec![None; bound.any_count].into_boxed_slice(),
                    };
                    added = entry_cost(key.len(), bound.states_size, &e.any);
                    self.map.entry(key).or_insert(e)
                }
            };
            let mut any_idx = 0usize;
            for (k, agg) in bound.aggs.iter().enumerate() {
                if agg.spec.kind == AggKind::AnyValue {
                    let slot = &mut entry.any[any_idx];
                    any_idx += 1;
                    if slot.is_none() {
                        let v = chunk.column(agg.spec.arg.unwrap()).value(i);
                        if let Value::Varchar(s) = &v {
                            added += 32 + s.len();
                        }
                        *slot = Some(v);
                    }
                } else {
                    let arg = agg.spec.arg.map(|c| chunk.column(c));
                    // SAFETY: states are sized by bind; offsets in range.
                    unsafe {
                        update_state(
                            agg,
                            entry.states.as_mut_ptr().add(bound.state_offsets[k]),
                            arg,
                            i,
                        )
                    };
                }
            }
            if added > 0 {
                self.grow(added)?;
            }
        }
        Ok(())
    }

    fn combine(self: Box<Self>) -> Result<()> {
        // Merge the thread-local map into the shared one. The merged map
        // needs its own reservation; local reservations release on drop.
        let bound = self.sink.bound;
        let mut merged = self.sink.merged.lock();
        if merged.reservation.is_none() {
            merged.reservation = Some(self.sink.mgr.reserve(0)?);
        }
        for (key, entry) in self.map {
            match merged.map.get_mut(&key) {
                None => {
                    merged.bytes += entry_cost(key.len(), bound.states_size, &entry.any);
                    if merged.bytes > merged.reservation.as_ref().unwrap().size() {
                        let target = merged.bytes.next_multiple_of(RESERVE_STEP);
                        merged.reservation.as_mut().unwrap().resize(target)?;
                    }
                    merged.map.insert(key, entry);
                }
                Some(existing) => {
                    for (k, agg) in bound.aggs.iter().enumerate() {
                        if agg.spec.kind == AggKind::AnyValue {
                            continue; // keep the existing ANY_VALUE
                        }
                        let off = bound.state_offsets[k];
                        // SAFETY: both states valid for this aggregate.
                        unsafe {
                            crate::function::combine_state(
                                agg,
                                entry.states.as_ptr().add(off),
                                existing.states.as_mut_ptr().add(off),
                            )
                        };
                    }
                }
            }
        }
        Ok(())
    }
}

/// Run the in-memory baseline. Fails with [`Error::OutOfMemory`] if the
/// groups do not fit in the memory limit — this baseline cannot spill.
#[allow(clippy::too_many_arguments)] // mirrors switch_aggregate's signature
pub fn in_memory_aggregate(
    mgr: &Arc<BufferManager>,
    source: &dyn ChunkSource,
    input_schema: &[LogicalType],
    group_cols: &[usize],
    aggregates: &[AggregateSpec],
    threads: usize,
    cancel: &CancelToken,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
) -> Result<usize> {
    let bound = bind(input_schema, group_cols, aggregates)?;
    let sink = InMemSink {
        bound: &bound,
        mgr,
        cancel,
        merged: Mutex::new(MergedState {
            map: GroupMap::default(),
            reservation: None,
            bytes: 0,
        }),
    };
    Pipeline::run(source, &sink, threads)?;

    // Emit.
    let merged = sink.merged.into_inner();
    let groups = merged.map.len();
    let mut out = DataChunk::empty(&bound.output_types);
    for (key, entry) in &merged.map {
        cancel.check()?;
        let mut pos = 0usize;
        let mut row = decode_row(key, &mut pos, &bound.group_types)?;
        let mut any_idx = 0usize;
        for (k, agg) in bound.aggs.iter().enumerate() {
            if agg.spec.kind == AggKind::AnyValue {
                row.push(entry.any[any_idx].clone().unwrap_or(Value::Null));
                any_idx += 1;
            } else {
                // SAFETY: state sized and initialized by this module.
                row.push(unsafe {
                    finalize_state(agg, entry.states.as_ptr().add(bound.state_offsets[k]))
                });
            }
        }
        out.push_row(&row)?;
        if out.len() == rexa_exec::VECTOR_SIZE {
            consumer(std::mem::replace(
                &mut out,
                DataChunk::empty(&bound.output_types),
            ))?;
        }
    }
    if !out.is_empty() {
        consumer(out)?;
    }
    Ok(groups)
}
