//! Baseline 2: traditional **external merge-sort aggregation** — the far
//! side of the performance cliff.
//!
//! Every input row is serialized to a record, records are sorted into runs
//! (each run bounded by half the memory limit), runs are written to disk,
//! and a streaming k-way merge aggregates adjacent equal keys. O(n log n)
//! comparisons plus a full write+read of the input through storage: this is
//! the algorithm class traditional systems fall back to, and the reason
//! switching algorithms at the memory limit produces the "orders of
//! magnitude slower" jump the paper's Figure 1 illustrates.

use crate::baselines::keyser::{decode_row, serialize_row, serialize_value};
use crate::function::{bind_aggregate, AggKind, AggregateSpec, BoundAggregate};
use crate::simple::RefState;
use rexa_buffer::BufferManager;
use rexa_exec::pipeline::{CancelToken, ChunkSource};
use rexa_exec::{DataChunk, Error, LogicalType, Result, Vector, VECTOR_SIZE};
use std::cmp::Ordering;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// A serialized input row: key bytes then argument-value bytes.
#[derive(Debug)]
struct Record {
    key_len: u32,
    bytes: Vec<u8>,
}

impl Record {
    fn key(&self) -> &[u8] {
        &self.bytes[..self.key_len as usize]
    }
    fn args(&self) -> &[u8] {
        &self.bytes[self.key_len as usize..]
    }
}

struct RunWriter {
    file: BufWriter<File>,
    bytes: u64,
}

fn write_record(w: &mut RunWriter, rec: &Record) -> Result<()> {
    w.file.write_all(&(rec.bytes.len() as u32).to_le_bytes())?;
    w.file.write_all(&rec.key_len.to_le_bytes())?;
    w.file.write_all(&rec.bytes)?;
    w.bytes += 8 + rec.bytes.len() as u64;
    Ok(())
}

struct RunReader {
    file: BufReader<File>,
    current: Option<Record>,
}

impl RunReader {
    fn advance(&mut self) -> Result<()> {
        let mut len4 = [0u8; 4];
        match self.file.read_exact(&mut len4) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                self.current = None;
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        let total = u32::from_le_bytes(len4) as usize;
        let mut key4 = [0u8; 4];
        self.file.read_exact(&mut key4)?;
        let mut bytes = vec![0u8; total];
        self.file.read_exact(&mut bytes)?;
        self.current = Some(Record {
            key_len: u32::from_le_bytes(key4),
            bytes,
        });
        Ok(())
    }
}

/// The one sort used everywhere a run is ordered (run generation and the
/// single-run in-memory path): unstable by serialized key bytes. Keeping it
/// a single kernel keeps the baseline honest — every path pays exactly this
/// comparator, once per run.
fn sort_run(records: &mut [Record]) {
    records.sort_unstable_by(|a, b| a.key().cmp(b.key()));
}

/// Restore the min-heap property at `i` for a heap of reader indices,
/// ordered by each reader's *current* record key (peek-based: no key is
/// copied out of the readers; ties break on reader index so the merge is
/// deterministic).
fn sift_down_readers(heap: &mut [usize], mut i: usize, readers: &[RunReader]) {
    let key = |idx: usize| -> &[u8] {
        readers[idx]
            .current
            .as_ref()
            .expect("heaped readers have a record")
            .key()
    };
    let before = |a: usize, b: usize| match key(a).cmp(key(b)) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a < b,
    };
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut best = i;
        if l < heap.len() && before(heap[l], heap[best]) {
            best = l;
        }
        if r < heap.len() && before(heap[r], heap[best]) {
            best = r;
        }
        if best == i {
            return;
        }
        heap.swap(i, best);
        i = best;
    }
}

/// Statistics of one external-sort run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortAggStats {
    /// Input rows processed.
    pub rows_in: usize,
    /// Output groups.
    pub groups: usize,
    /// Sorted runs written to disk (0 = everything fit in one in-memory run).
    pub runs: usize,
    /// Bytes written to run files.
    pub spill_bytes: u64,
}

/// Run the external merge-sort aggregation baseline.
pub fn sort_aggregate(
    mgr: &Arc<BufferManager>,
    source: &dyn ChunkSource,
    input_schema: &[LogicalType],
    group_cols: &[usize],
    aggregates: &[AggregateSpec],
    cancel: &CancelToken,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
) -> Result<SortAggStats> {
    if group_cols.is_empty() {
        return Err(Error::Unsupported("ungrouped aggregation".into()));
    }
    let aggs: Vec<BoundAggregate> = aggregates
        .iter()
        .map(|s| bind_aggregate(*s, input_schema))
        .collect::<Result<_>>()?;
    let group_types: Vec<LogicalType> = group_cols.iter().map(|&c| input_schema[c]).collect();
    let mut output_types = group_types.clone();
    output_types.extend(aggs.iter().map(|a| a.output_type));

    let run_dir = rexa_storage::scratch_dir("sortagg")?;
    let budget = (mgr.memory_limit() / 2).max(1 << 20);
    let mut stats = SortAggStats::default();

    // ---- run generation ---------------------------------------------------
    let mut buffer: Vec<Record> = Vec::new();
    let mut buffered_bytes = 0usize;
    let mut reservation = mgr.reserve(0)?;
    let mut run_paths: Vec<PathBuf> = Vec::new();

    let flush_run = |buffer: &mut Vec<Record>,
                     run_paths: &mut Vec<PathBuf>,
                     stats: &mut SortAggStats|
     -> Result<()> {
        if buffer.is_empty() {
            return Ok(());
        }
        sort_run(buffer);
        let path = run_dir.join(format!("run-{}.bin", run_paths.len()));
        let mut w = RunWriter {
            file: BufWriter::new(File::create(&path)?),
            bytes: 0,
        };
        for rec in buffer.drain(..) {
            write_record(&mut w, &rec)?;
        }
        w.file.flush()?;
        stats.spill_bytes += w.bytes;
        run_paths.push(path);
        stats.runs += 1;
        Ok(())
    };

    {
        let mut reader = source.reader();
        while let Some(chunk) = reader.next()? {
            cancel.check()?;
            let group_views: Vec<&Vector> = group_cols.iter().map(|&c| chunk.column(c)).collect();
            for i in 0..chunk.len() {
                let mut bytes = Vec::new();
                serialize_row(&group_views, i, &mut bytes);
                let key_len = bytes.len() as u32;
                for agg in &aggs {
                    if let Some(c) = agg.spec.arg {
                        serialize_value(chunk.column(c), i, &mut bytes);
                    }
                }
                buffered_bytes += bytes.len() + 48;
                buffer.push(Record { key_len, bytes });
                stats.rows_in += 1;
            }
            if buffered_bytes > reservation.size() {
                match reservation.resize(buffered_bytes.next_multiple_of(1 << 20)) {
                    Ok(()) => {}
                    Err(e) if e.is_oom() => {
                        // Memory pressure: flush the current run early.
                        flush_run(&mut buffer, &mut run_paths, &mut stats)?;
                        buffered_bytes = 0;
                        reservation.resize(0)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            if buffered_bytes > budget {
                flush_run(&mut buffer, &mut run_paths, &mut stats)?;
                buffered_bytes = 0;
                reservation.resize(0)?;
            }
        }
    }

    // ---- merge + streaming aggregation ------------------------------------
    let mut out = DataChunk::empty(&output_types);
    let emit_group = |key: &[u8],
                      states: Vec<RefState>,
                      out: &mut DataChunk,
                      stats: &mut SortAggStats|
     -> Result<()> {
        let mut pos = 0usize;
        let mut row = decode_row(key, &mut pos, &group_types)?;
        row.extend(states.into_iter().map(RefState::finalize));
        out.push_row(&row)?;
        stats.groups += 1;
        if out.len() == VECTOR_SIZE {
            consumer(std::mem::replace(out, DataChunk::empty(&output_types)))?;
        }
        Ok(())
    };

    let new_states = |aggs: &[BoundAggregate]| -> Vec<RefState> {
        aggs.iter()
            .map(|a| RefState::new(a.spec.kind, a.arg_type))
            .collect()
    };

    let update_states =
        |states: &mut [RefState], aggs: &[BoundAggregate], args: &[u8]| -> Result<()> {
            let mut pos = 0usize;
            for (state, agg) in states.iter_mut().zip(aggs) {
                match agg.spec.kind {
                    AggKind::CountStar => state.update(AggKind::CountStar, None),
                    _ => {
                        let ty = agg.arg_type.expect("non-count-star has an arg");
                        let v = crate::baselines::keyser::decode_value(args, &mut pos, ty)?;
                        state.update(agg.spec.kind, Some(&v));
                    }
                }
            }
            Ok(())
        };

    if run_paths.is_empty() {
        // Everything fit in one buffered run: sort + aggregate in memory
        // (still the O(n log n) algorithm, just without the I/O).
        sort_run(&mut buffer);
        let mut cur_key: Option<Vec<u8>> = None;
        let mut states = new_states(&aggs);
        for rec in &buffer {
            cancel.check()?;
            if cur_key.as_deref() != Some(rec.key()) {
                if let Some(k) = cur_key.take() {
                    emit_group(
                        &k,
                        std::mem::replace(&mut states, new_states(&aggs)),
                        &mut out,
                        &mut stats,
                    )?;
                }
                cur_key = Some(rec.key().to_vec());
            }
            update_states(&mut states, &aggs, rec.args())?;
        }
        if let Some(k) = cur_key {
            emit_group(&k, states, &mut out, &mut stats)?;
        }
    } else {
        // Flush the tail as a final run and k-way merge.
        flush_run(&mut buffer, &mut run_paths, &mut stats)?;
        reservation.resize(0)?;
        let mut readers: Vec<RunReader> = run_paths
            .iter()
            .map(|p| -> Result<RunReader> {
                let mut r = RunReader {
                    file: BufReader::new(File::open(p)?),
                    current: None,
                };
                r.advance()?;
                Ok(r)
            })
            .collect::<Result<_>>()?;
        // Peek-based merge: the heap holds reader indices and compares the
        // readers' current records in place — no per-record key copies.
        let mut heap: Vec<usize> = (0..readers.len())
            .filter(|&i| readers[i].current.is_some())
            .collect();
        for i in (0..heap.len() / 2).rev() {
            sift_down_readers(&mut heap, i, &readers);
        }
        let mut cur_key: Option<Vec<u8>> = None;
        let mut states = new_states(&aggs);
        let mut processed = 0u64;
        while !heap.is_empty() {
            processed += 1;
            if processed.is_multiple_of(4096) {
                cancel.check()?;
            }
            let top = heap[0];
            let reader = &mut readers[top];
            let rec = reader.current.take().expect("heap entry has a record");
            if cur_key.as_deref() != Some(rec.key()) {
                if let Some(k) = cur_key.take() {
                    emit_group(
                        &k,
                        std::mem::replace(&mut states, new_states(&aggs)),
                        &mut out,
                        &mut stats,
                    )?;
                }
                cur_key = Some(rec.key().to_vec());
            }
            update_states(&mut states, &aggs, rec.args())?;
            reader.advance()?;
            if readers[top].current.is_none() {
                let last = heap.len() - 1;
                heap.swap(0, last);
                heap.pop();
            }
            if !heap.is_empty() {
                sift_down_readers(&mut heap, 0, &readers);
            }
        }
        if let Some(k) = cur_key {
            emit_group(&k, states, &mut out, &mut stats)?;
        }
    }
    if !out.is_empty() {
        consumer(out)?;
    }
    let _ = std::fs::remove_dir_all(&run_dir);
    Ok(stats)
}
