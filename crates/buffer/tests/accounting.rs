//! Property test: under arbitrary sequences of buffer-manager operations
//! (allocate, pin, unpin, destroy, reserve, resize, limit changes), the
//! accounting invariants hold:
//!
//! * `memory_used` never exceeds the limit after a successful operation,
//! * gauges decompose: used = persistent + temporary + non-paged,
//! * pinned pages are never evicted (their contents survive),
//! * after dropping everything, used == 0 and the temp file is empty.

use proptest::prelude::*;
use rexa_buffer::{
    BlockHandle, BufferManager, BufferManagerConfig, EvictionPolicy, MemoryReservation, PinGuard,
};
use rexa_storage::scratch_dir;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    AllocPage,
    AllocVariable(usize),
    Pin(usize),
    Unpin(usize),
    Destroy(usize),
    Reserve(usize),
    ResizeReservation(usize, usize),
    DropReservation(usize),
    SetLimit(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::AllocPage),
        1 => (1usize..5).prop_map(|p| Op::AllocVariable(p * 1500)),
        4 => any::<prop::sample::Index>().prop_map(|i| Op::Pin(i.index(64))),
        4 => any::<prop::sample::Index>().prop_map(|i| Op::Unpin(i.index(64))),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Destroy(i.index(64))),
        1 => (0usize..8).prop_map(|p| Op::Reserve(p * 1024)),
        1 => (any::<prop::sample::Index>(), 0usize..8)
            .prop_map(|(i, p)| Op::ResizeReservation(i.index(8), p * 1024)),
        1 => any::<prop::sample::Index>().prop_map(|i| Op::DropReservation(i.index(8))),
        1 => (4usize..64).prop_map(|p| Op::SetLimit(p * 1024)),
    ]
}

const PAGE: usize = 1024;

struct Tracked {
    handle: Arc<BlockHandle>,
    pin: Option<PinGuard>,
    fill: u8,
}

fn check_invariants(mgr: &BufferManager) {
    let s = mgr.stats();
    assert_eq!(
        s.memory_used,
        s.persistent_resident + s.temporary_resident + s.non_paged,
        "gauge decomposition: {s:?}"
    );
}

fn small_mgr(limit_pages: usize) -> Arc<BufferManager> {
    BufferManager::new(
        BufferManagerConfig::with_limit(limit_pages * PAGE)
            .page_size(PAGE)
            .policy(EvictionPolicy::Mixed)
            .temp_dir(scratch_dir("acct-reg").unwrap()),
    )
    .unwrap()
}

/// Regression: lowering the limit below current usage must not panic or
/// underflow, must evict what is evictable, and must not let new
/// reservations succeed against headroom that no longer exists.
#[test]
fn lowering_limit_below_usage_is_safe() {
    let mgr = small_mgr(16);

    // 4 pages pinned (unreclaimable), 8 pages unpinned (evictable), plus a
    // 2-page reservation: 14 pages in use against a 16-page limit.
    let pinned: Vec<_> = (0..4).map(|_| mgr.allocate_page().unwrap()).collect();
    let unpinned: Vec<_> = (0..8)
        .map(|_| {
            let (handle, pin) = mgr.allocate_page().unwrap();
            drop(pin);
            handle
        })
        .collect();
    let reservation = mgr.reserve(2 * PAGE).unwrap();
    assert_eq!(mgr.memory_used(), 14 * PAGE);

    // Lower the limit to 3 pages — below even the unreclaimable part.
    mgr.set_memory_limit(3 * PAGE);

    // The unpinned pages were evicted right away; the pins and the
    // reservation keep their 6 pages, still above the new limit.
    assert_eq!(mgr.memory_used(), 6 * PAGE);
    let s = mgr.stats();
    assert_eq!(
        s.memory_used,
        s.persistent_resident + s.temporary_resident + s.non_paged
    );

    // No new reservation may be admitted while usage exceeds the limit.
    assert!(mgr.reserve(PAGE).unwrap_err().is_oom());

    // Releasing the old holders brings usage back under the limit and
    // reservations work again.
    drop(reservation);
    drop(pinned);
    assert_eq!(mgr.memory_used(), 0);
    let r = mgr.reserve(2 * PAGE).unwrap();
    assert_eq!(mgr.memory_used(), 2 * PAGE);
    drop(r);

    // The evicted pages are still intact (spilled, not lost).
    for handle in &unpinned {
        mgr.pin(handle).unwrap();
    }
}

/// Regression: a reservation so large that `used + size` would wrap must
/// fail with OOM, not wrap around and succeed.
#[test]
fn absurd_reservation_size_fails_cleanly() {
    let mgr = small_mgr(8);
    let _held = mgr.reserve(2 * PAGE).unwrap();
    let err = mgr.reserve(usize::MAX - PAGE).unwrap_err();
    assert!(err.is_oom(), "expected OOM, got {err}");
    // Accounting is untouched by the failed attempt.
    assert_eq!(mgr.memory_used(), 2 * PAGE);
    let s = mgr.stats();
    assert_eq!(
        s.memory_used,
        s.persistent_resident + s.temporary_resident + s.non_paged
    );
}

/// Lowering the limit with only unpinned pages resident brings usage under
/// the new limit immediately, without waiting for the next reservation.
#[test]
fn lowering_limit_evicts_promptly() {
    let mgr = small_mgr(12);
    let handles: Vec<_> = (0..10)
        .map(|_| {
            let (handle, pin) = mgr.allocate_page().unwrap();
            drop(pin);
            handle
        })
        .collect();
    assert_eq!(mgr.memory_used(), 10 * PAGE);
    mgr.set_memory_limit(4 * PAGE);
    assert!(mgr.memory_used() <= 4 * PAGE);
    drop(handles);
}

/// Regression: `stats()` must be an internally consistent snapshot even while
/// other threads allocate, pin-load, evict, and resize reservations. Before
/// the single-lock accounting, the gauges were independent atomics updated
/// one after another and a concurrent reader could observe `memory_used`
/// off from the category sum by a page.
#[test]
fn every_snapshot_is_internally_consistent_under_load() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let mgr = small_mgr(8);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Mutators: page churn (temporary bytes), repin-after-spill (load
        // path), and non-paged reservations growing and shrinking. All three
        // categories move concurrently.
        for t in 0..3u32 {
            let mgr = Arc::clone(&mgr);
            let stop = &stop;
            s.spawn(move || {
                let mut handles = Vec::new();
                let mut round = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    if let Ok((h, p)) = mgr.allocate_page() {
                        drop(p);
                        handles.push(h);
                    }
                    if handles.len() > 6 {
                        handles.drain(0..3);
                    }
                    if round % 3 == t % 3 {
                        if let Some(h) = handles.first() {
                            let _ = mgr.pin(h);
                        }
                    }
                    if round.is_multiple_of(4) {
                        if let Ok(mut r) = mgr.reserve(PAGE / 2) {
                            let _ = r.resize(PAGE);
                        }
                    }
                }
            });
        }

        // Observers: hammer stats() and assert the invariant on every
        // single snapshot.
        let mut observers = Vec::new();
        for _ in 0..2 {
            let mgr = Arc::clone(&mgr);
            let stop = &stop;
            observers.push(s.spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let st = mgr.stats();
                    assert_eq!(
                        st.memory_used,
                        st.persistent_resident + st.temporary_resident + st.non_paged,
                        "inconsistent snapshot: {st:?}"
                    );
                    assert!(st.memory_used <= st.memory_limit, "over limit: {st:?}");
                    snapshots += 1;
                }
                snapshots
            }));
        }

        std::thread::sleep(std::time::Duration::from_millis(500));
        stop.store(true, Ordering::Relaxed);
        for obs in observers {
            let seen = obs.join().unwrap();
            assert!(seen > 100, "observer starved: only {seen} snapshots");
        }
    });

    let st = mgr.stats();
    assert_eq!(st.memory_used, 0, "leak: {st:?}");
}

/// With background I/O workers, eviction writes are in flight on scheduler
/// threads while queries keep allocating — and a victim's bytes stay in the
/// accounting until its write durably completes. Every snapshot taken during
/// that window must still decompose exactly (`used == persistent +
/// temporary + non_paged`), and after draining, everything returns to zero.
#[test]
fn every_snapshot_is_consistent_with_writes_in_flight() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let mgr = BufferManager::new(
        BufferManagerConfig::with_limit(8 * PAGE)
            .page_size(PAGE)
            .policy(EvictionPolicy::Mixed)
            .temp_dir(scratch_dir("acct-async").unwrap())
            .io_writers(2),
    )
    .unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Mutators: churn pages through the tight pool so background spills
        // are continuously in flight, re-pin spilled pages (foreground
        // loads), and issue advisory prefetches (background loads).
        for t in 0..3u32 {
            let mgr = Arc::clone(&mgr);
            let stop = &stop;
            s.spawn(move || {
                let mut handles = Vec::new();
                let mut round = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    if let Ok((h, p)) = mgr.allocate_page() {
                        p.write_at(0, &[t as u8 + 1; PAGE]);
                        drop(p);
                        handles.push(h);
                    }
                    if handles.len() > 6 {
                        handles.drain(0..3);
                    }
                    if round % 3 == t % 3 {
                        if let Some(h) = handles.first() {
                            let _ = mgr.pin(h);
                        }
                    }
                    if round % 5 == t % 5 {
                        if let Some(h) = handles.last() {
                            mgr.prefetch(h);
                        }
                    }
                }
            });
        }

        // Observers: the invariant must hold on every single snapshot,
        // including those taken mid-background-write.
        let mut observers = Vec::new();
        for _ in 0..2 {
            let mgr = Arc::clone(&mgr);
            let stop = &stop;
            observers.push(s.spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let st = mgr.stats();
                    assert_eq!(
                        st.memory_used,
                        st.persistent_resident + st.temporary_resident + st.non_paged,
                        "inconsistent snapshot with writes in flight: {st:?}"
                    );
                    assert!(st.memory_used <= st.memory_limit, "over limit: {st:?}");
                    snapshots += 1;
                }
                snapshots
            }));
        }

        std::thread::sleep(std::time::Duration::from_millis(500));
        stop.store(true, Ordering::Relaxed);
        for obs in observers {
            let seen = obs.join().unwrap();
            assert!(seen > 100, "observer starved: only {seen} snapshots");
        }
    });

    // The churn must actually have used the background path.
    let st = mgr.stats();
    assert!(
        st.evictions_temporary > 0 && st.bg_write_nanos > 0,
        "background spill path never exercised: {st:?}"
    );
    // After the last handle drops and in-flight I/O drains, nothing leaks.
    mgr.drain_io().unwrap();
    let st = mgr.stats();
    assert_eq!(st.memory_used, 0, "leak: {st:?}");
    assert_eq!(st.temp_bytes_on_disk, 0, "leaked spill space: {st:?}");
}

/// A one-page pool forces every allocation through the evict-and-reuse path,
/// which hands the victim's bytes to the new owner by a category transfer in
/// one critical section; a reader racing that handoff must still see a
/// consistent sum.
#[test]
fn snapshot_consistent_across_eviction_reuse_handoff() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let mgr = small_mgr(1);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..2 {
            let mgr = Arc::clone(&mgr);
            let stop = &stop;
            s.spawn(move || {
                let mut last = None;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok((h, p)) = mgr.allocate_page() {
                        drop(p);
                        last = Some(h);
                    }
                }
                drop(last);
            });
        }
        let mgr2 = Arc::clone(&mgr);
        let stopr = &stop;
        let obs = s.spawn(move || {
            while !stopr.load(Ordering::Relaxed) {
                let st = mgr2.stats();
                assert_eq!(
                    st.memory_used,
                    st.persistent_resident + st.temporary_resident + st.non_paged,
                    "inconsistent snapshot during reuse handoff: {st:?}"
                );
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        obs.join().unwrap();
    });
    assert!(mgr.stats().buffer_reuses > 0, "reuse path never exercised");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_op_sequences_preserve_invariants(
        ops in prop::collection::vec(op_strategy(), 1..120),
        limit_pages in 4usize..32,
    ) {
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(limit_pages * PAGE)
                .page_size(PAGE)
                .policy(EvictionPolicy::Mixed)
                .temp_dir(scratch_dir("acct").unwrap()),
        ).unwrap();
        let mut blocks: Vec<Tracked> = Vec::new();
        let mut reservations: Vec<MemoryReservation> = Vec::new();
        let mut next_fill = 1u8;

        for op in ops {
            match op {
                Op::AllocPage => {
                    if let Ok((handle, pin)) = mgr.allocate_page() {
                        pin.write_at(0, &[next_fill; PAGE]);
                        blocks.push(Tracked { handle, pin: Some(pin), fill: next_fill });
                        next_fill = next_fill.wrapping_add(1).max(1);
                    }
                }
                Op::AllocVariable(size) => {
                    if let Ok((handle, pin)) = mgr.allocate_variable(size) {
                        pin.write_at(0, &vec![next_fill; size]);
                        blocks.push(Tracked { handle, pin: Some(pin), fill: next_fill });
                        next_fill = next_fill.wrapping_add(1).max(1);
                    }
                }
                Op::Pin(i) => {
                    if let Some(t) = blocks.get_mut(i) {
                        if t.pin.is_none() {
                            if let Ok(pin) = mgr.pin(&t.handle) {
                                // Contents must have survived any spill.
                                let mut b = [0u8; 8];
                                pin.read_at(0, &mut b);
                                prop_assert!(b.iter().all(|&x| x == t.fill),
                                    "content lost for fill {}", t.fill);
                                t.pin = Some(pin);
                            }
                        }
                    }
                }
                Op::Unpin(i) => {
                    if let Some(t) = blocks.get_mut(i) {
                        t.pin = None;
                    }
                }
                Op::Destroy(i) => {
                    if i < blocks.len() {
                        blocks.swap_remove(i);
                    }
                }
                Op::Reserve(size) => {
                    if let Ok(r) = mgr.reserve(size) {
                        reservations.push(r);
                    }
                }
                Op::ResizeReservation(i, size) => {
                    if let Some(r) = reservations.get_mut(i) {
                        let _ = r.resize(size);
                    }
                }
                Op::DropReservation(i) => {
                    if i < reservations.len() {
                        reservations.swap_remove(i);
                    }
                }
                Op::SetLimit(bytes) => mgr.set_memory_limit(bytes),
            }
            check_invariants(&mgr);
        }

        // Every surviving block must still hold its contents.
        // (Raise the limit so pins cannot fail for lack of room —
        // everything unpinned is evictable.)
        mgr.set_memory_limit(usize::MAX);
        for t in &mut blocks {
            if t.pin.is_none() {
                let pin = mgr.pin(&t.handle).unwrap();
                let mut b = [0u8; 8];
                pin.read_at(0, &mut b);
                prop_assert!(b.iter().all(|&x| x == t.fill));
                t.pin = Some(pin);
            }
        }

        drop(blocks);
        drop(reservations);
        let s = mgr.stats();
        prop_assert_eq!(s.memory_used, 0, "leaked accounting: {:?}", s);
        prop_assert_eq!(s.temp_bytes_on_disk, 0, "leaked spill space: {:?}", s);
    }
}
