//! Eviction queues and policies (paper Sections III and VII).
//!
//! Blocks whose last pin is released join an eviction queue with a sequence
//! number. Re-pinning bumps the block's sequence, turning any queued entry
//! stale; stale entries are skipped on pop. This approximates LRU without a
//! global lock, like DuckDB's "lock-free concurrent priority queue with an
//! LRU policy".

use crate::handle::BlockHandle;
use crossbeam::queue::SegQueue;
use std::sync::Weak;

/// Which pages to evict first when memory runs out.
///
/// The paper's Section VII experiment (Figure 4) compares the three and finds
/// the winner workload-dependent: `PersistentFirst` wins single-connection
/// (persistent eviction is free), `TemporaryFirst` wins multi-connection
/// (keeping the scanned base table cached avoids thrashing), and `Mixed` is
/// the compromise DuckDB ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// One queue for all pages; no distinction by kind (DuckDB's default).
    #[default]
    Mixed,
    /// Evict temporary pages before any persistent page.
    TemporaryFirst,
    /// Evict persistent pages before any temporary page.
    PersistentFirst,
}

/// An entry in an eviction queue: a weak block reference plus the sequence
/// number at enqueue time.
pub(crate) struct QueueEntry {
    pub(crate) block: Weak<BlockHandle>,
    pub(crate) seq: u64,
}

/// Queue insertions between purges of dead/stale entries. Without purging,
/// a workload that allocates and destroys pages without ever hitting the
/// memory limit (so eviction never pops) grows the queue without bound.
const PURGE_INTERVAL: usize = 1 << 16;

/// The eviction structure: one or two LRU queues depending on policy.
pub(crate) struct EvictionQueues {
    policy: EvictionPolicy,
    /// `queues[0]` = persistent, `queues[1]` = temporary under the split
    /// policies; `Mixed` uses only `queues[0]`.
    queues: [SegQueue<QueueEntry>; 2],
    /// Pushes since the last purge.
    since_purge: std::sync::atomic::AtomicUsize,
}

impl EvictionQueues {
    pub(crate) fn new(policy: EvictionPolicy) -> Self {
        EvictionQueues {
            policy,
            queues: [SegQueue::new(), SegQueue::new()],
            since_purge: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    pub(crate) fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Enqueue a block that just became unpinned.
    pub(crate) fn push(&self, entry: QueueEntry, temporary: bool) {
        let qi = match self.policy {
            EvictionPolicy::Mixed => 0,
            _ => usize::from(temporary),
        };
        self.queues[qi].push(entry);
        if self
            .since_purge
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            >= PURGE_INTERVAL
        {
            self.since_purge
                .store(0, std::sync::atomic::Ordering::Relaxed);
            self.purge();
        }
    }

    /// Drop entries for destroyed or re-pinned blocks (their eviction would
    /// be skipped anyway). Bounded: one pass over the current queue length.
    pub(crate) fn purge(&self) {
        for q in &self.queues {
            for _ in 0..q.len() {
                let Some(entry) = q.pop() else { break };
                let keep = entry
                    .block
                    .upgrade()
                    .is_some_and(|b| b.seq.load(std::sync::atomic::Ordering::Acquire) == entry.seq);
                if keep {
                    q.push(entry);
                }
            }
        }
    }

    /// Pop the next eviction candidate, honoring the policy's queue order.
    pub(crate) fn pop(&self) -> Option<QueueEntry> {
        match self.policy {
            EvictionPolicy::Mixed => self.queues[0].pop(),
            EvictionPolicy::TemporaryFirst => self.queues[1].pop().or_else(|| self.queues[0].pop()),
            EvictionPolicy::PersistentFirst => {
                self.queues[0].pop().or_else(|| self.queues[1].pop())
            }
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EvictionPolicy::Mixed => "Mixed",
            EvictionPolicy::TemporaryFirst => "TemporaryFirst",
            EvictionPolicy::PersistentFirst => "PersistentFirst",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> QueueEntry {
        QueueEntry {
            block: Weak::new(),
            seq,
        }
    }

    #[test]
    fn mixed_is_fifo_across_kinds() {
        let q = EvictionQueues::new(EvictionPolicy::Mixed);
        q.push(entry(1), false);
        q.push(entry(2), true);
        q.push(entry(3), false);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn temporary_first_orders_by_kind() {
        let q = EvictionQueues::new(EvictionPolicy::TemporaryFirst);
        q.push(entry(1), false);
        q.push(entry(2), true);
        q.push(entry(3), false);
        q.push(entry(4), true);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn persistent_first_orders_by_kind() {
        let q = EvictionQueues::new(EvictionPolicy::PersistentFirst);
        q.push(entry(1), true);
        q.push(entry(2), false);
        q.push(entry(3), true);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn purge_drops_dead_and_stale_entries() {
        let q = EvictionQueues::new(EvictionPolicy::Mixed);
        for i in 0..100 {
            q.push(entry(i), false); // dead weak refs
        }
        q.purge();
        assert!(q.pop().is_none(), "all entries were dead");
    }

    #[test]
    fn push_churn_stays_bounded() {
        // Regression: a workload that allocates and destroys pages without
        // memory pressure must not grow the queue without bound (this once
        // got the allocation micro-benchmark OOM-killed).
        let q = EvictionQueues::new(EvictionPolicy::Mixed);
        for i in 0..(super::PURGE_INTERVAL * 3) {
            q.push(entry(i as u64), false);
        }
        let remaining = std::iter::from_fn(|| q.pop()).count();
        assert!(
            remaining <= super::PURGE_INTERVAL + 1,
            "queue grew unboundedly: {remaining}"
        );
    }

    #[test]
    fn policy_display() {
        assert_eq!(EvictionPolicy::Mixed.to_string(), "Mixed");
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Mixed);
    }
}
