//! A persistent table: serialized column-major chunks on database pages.
//!
//! This is the substrate the benchmark scans sit on. Chunks are serialized
//! into fixed-size pages of the database file; scanning pins pages through
//! the buffer manager, so repeated scans keep the base table cached in
//! memory — until intermediates push it out, which is the persistent/
//! temporary interplay the paper's Figure 4 visualizes.
//!
//! Unlike the temporary-data page layout of `rexa-layout`, persistent pages
//! *are* (de)serialized: they are written once at load time and the cost is
//! off the query path. (DuckDB additionally compresses them; we do not —
//! orthogonal to the paper's contributions, see DESIGN.md.)

use crate::handle::BlockHandle;
use crate::manager::BufferManager;
use rexa_exec::pipeline::{CancelToken, ChunkReader, ChunkSource};
use rexa_exec::{DataChunk, Error, LogicalType, Result, Validity, Vector};
use rexa_storage::DatabaseFile;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Blocks claimed per scan morsel.
const BLOCKS_PER_MORSEL: usize = 4;

// ---- chunk (de)serialization ------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(Error::Internal("truncated page".into()));
    }
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

fn serialize_validity(out: &mut Vec<u8>, v: &Validity) {
    if v.no_nulls() {
        out.push(0);
        return;
    }
    out.push(1);
    let mut byte = 0u8;
    for i in 0..v.len() {
        if v.is_valid(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !v.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Serialize one chunk (without a length prefix).
fn serialize_chunk(chunk: &DataChunk, out: &mut Vec<u8>) {
    put_u32(out, chunk.len() as u32);
    for col in chunk.columns() {
        serialize_validity(out, col.validity());
        match col.logical_type() {
            LogicalType::Int32 | LogicalType::Date => {
                for &v in col.i32s() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            LogicalType::Int64 => {
                for &v in col.i64s() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            LogicalType::Float64 => {
                for &v in col.f64s() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            LogicalType::Varchar => {
                let mut total = 0u32;
                let lens: Vec<u32> = (0..col.len())
                    .map(|i| {
                        let l = col.str_at(i).len() as u32;
                        total += l;
                        l
                    })
                    .collect();
                put_u32(out, total);
                for l in lens {
                    put_u32(out, l);
                }
                for i in 0..col.len() {
                    out.extend_from_slice(col.str_at(i).as_bytes());
                }
            }
        }
    }
}

fn deserialize_validity(bytes: &[u8], pos: &mut usize, rows: usize) -> Result<Option<Vec<bool>>> {
    if *pos >= bytes.len() {
        return Err(Error::Internal("truncated page".into()));
    }
    let has_nulls = bytes[*pos] == 1;
    *pos += 1;
    if !has_nulls {
        return Ok(None);
    }
    let nbytes = rows.div_ceil(8);
    if *pos + nbytes > bytes.len() {
        return Err(Error::Internal("truncated validity".into()));
    }
    let valid = (0..rows)
        .map(|i| (bytes[*pos + i / 8] >> (i % 8)) & 1 == 1)
        .collect();
    *pos += nbytes;
    Ok(Some(valid))
}

/// Deserialize one chunk at `pos`, advancing it.
fn deserialize_chunk(bytes: &[u8], pos: &mut usize, schema: &[LogicalType]) -> Result<DataChunk> {
    let rows = get_u32(bytes, pos)? as usize;
    let mut columns = Vec::with_capacity(schema.len());
    for &ty in schema {
        let nulls = deserialize_validity(bytes, pos, rows)?;
        let mut col = match ty {
            LogicalType::Int32 | LogicalType::Date => {
                let mut vals = Vec::with_capacity(rows);
                for _ in 0..rows {
                    vals.push(get_u32(bytes, pos)? as i32);
                }
                if ty == LogicalType::Date {
                    Vector::from_dates(vals)
                } else {
                    Vector::from_i32(vals)
                }
            }
            LogicalType::Int64 => {
                let mut vals = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let lo = get_u32(bytes, pos)? as u64;
                    let hi = get_u32(bytes, pos)? as u64;
                    vals.push((lo | (hi << 32)) as i64);
                }
                Vector::from_i64(vals)
            }
            LogicalType::Float64 => {
                let mut vals = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let lo = get_u32(bytes, pos)? as u64;
                    let hi = get_u32(bytes, pos)? as u64;
                    vals.push(f64::from_bits(lo | (hi << 32)));
                }
                Vector::from_f64(vals)
            }
            LogicalType::Varchar => {
                let total = get_u32(bytes, pos)? as usize;
                let mut lens = Vec::with_capacity(rows);
                for _ in 0..rows {
                    lens.push(get_u32(bytes, pos)? as usize);
                }
                if *pos + total > bytes.len() {
                    return Err(Error::Internal("truncated string data".into()));
                }
                let mut strs = Vec::with_capacity(rows);
                let mut off = *pos;
                for l in lens {
                    strs.push(
                        std::str::from_utf8(&bytes[off..off + l])
                            .map_err(|_| Error::Internal("invalid UTF-8 on page".into()))?,
                    );
                    off += l;
                }
                *pos += total;
                Vector::from_strs(strs)
            }
        };
        if let Some(valid) = nulls {
            for (i, ok) in valid.iter().enumerate() {
                if !ok {
                    col.validity_mut().set_invalid(i);
                }
            }
        }
        columns.push(col);
    }
    Ok(DataChunk::new(columns))
}

// ---- the table ---------------------------------------------------------

/// A persistent, paged, immutable table.
#[derive(Debug)]
pub struct Table {
    schema: Vec<LogicalType>,
    blocks: Vec<Arc<BlockHandle>>,
    rows: usize,
}

/// Builds a [`Table`] by streaming chunks into database pages.
pub struct TableBuilder {
    mgr: Arc<BufferManager>,
    db: Arc<DatabaseFile>,
    schema: Vec<LogicalType>,
    blocks: Vec<Arc<BlockHandle>>,
    /// Serialized chunks (each length-prefixed) pending in the current page.
    pending: Vec<u8>,
    pending_chunks: u32,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(mgr: Arc<BufferManager>, db: Arc<DatabaseFile>, schema: Vec<LogicalType>) -> Self {
        TableBuilder {
            mgr,
            db,
            schema,
            blocks: Vec::new(),
            pending: Vec::new(),
            pending_chunks: 0,
            rows: 0,
        }
    }

    fn page_capacity(&self) -> usize {
        self.db.page_size() - 4 // block header: u32 chunk count
    }

    /// Append one chunk; splits it if it does not fit on a page.
    pub fn append(&mut self, chunk: &DataChunk) -> Result<()> {
        if chunk.types() != self.schema {
            return Err(Error::InvalidInput("chunk schema mismatch".into()));
        }
        if chunk.is_empty() {
            return Ok(());
        }
        let mut ser = Vec::new();
        serialize_chunk(chunk, &mut ser);
        let entry = 4 + ser.len(); // u32 length prefix
        if self.pending.len() + entry > self.page_capacity() {
            if entry > self.page_capacity() {
                // Chunk alone exceeds a page: split in half and recurse.
                if chunk.len() == 1 {
                    return Err(Error::Unsupported(
                        "a single row exceeds the page size".into(),
                    ));
                }
                let half = chunk.len() / 2;
                self.append(&chunk.slice(0, half))?;
                return self.append(&chunk.slice(half, chunk.len() - half));
            }
            self.flush_page()?;
        }
        put_u32(&mut self.pending, ser.len() as u32);
        self.pending.extend_from_slice(&ser);
        self.pending_chunks += 1;
        self.rows += chunk.len();
        Ok(())
    }

    fn flush_page(&mut self) -> Result<()> {
        if self.pending_chunks == 0 {
            return Ok(());
        }
        let mut page = vec![0u8; self.db.page_size()];
        page[0..4].copy_from_slice(&self.pending_chunks.to_le_bytes());
        page[4..4 + self.pending.len()].copy_from_slice(&self.pending);
        let id = self.db.append_block(&page)?;
        self.blocks.push(self.mgr.register_persistent(&self.db, id));
        self.pending.clear();
        self.pending_chunks = 0;
        Ok(())
    }

    /// Finish building: flush the last page and return the table.
    pub fn finish(mut self) -> Result<Table> {
        self.flush_page()?;
        Ok(Table {
            schema: self.schema,
            blocks: self.blocks,
            rows: self.rows,
        })
    }
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &[LogicalType] {
        &self.schema
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of pages.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// A morsel-driven parallel scan source over this table.
    pub fn scan<'a>(&'a self, mgr: &Arc<BufferManager>) -> TableSource<'a> {
        TableSource {
            table: self,
            mgr: Arc::clone(mgr),
            cursor: AtomicUsize::new(0),
            cancel: None,
        }
    }

    /// A scan that aborts with [`rexa_exec::Error::Cancelled`] when `cancel`
    /// fires (used by the benchmark harness to impose query timeouts).
    pub fn scan_with_cancel<'a>(
        &'a self,
        mgr: &Arc<BufferManager>,
        cancel: CancelToken,
    ) -> TableSource<'a> {
        TableSource {
            table: self,
            mgr: Arc::clone(mgr),
            cursor: AtomicUsize::new(0),
            cancel: Some(cancel),
        }
    }
}

/// A [`ChunkSource`] scanning a persistent [`Table`] through the buffer
/// manager: each morsel pins a few pages, deserializes their chunks, and
/// unpins (leaving the pages cached and evictable).
pub struct TableSource<'a> {
    table: &'a Table,
    mgr: Arc<BufferManager>,
    cursor: AtomicUsize,
    cancel: Option<CancelToken>,
}

struct TableReader<'a> {
    source: &'a TableSource<'a>,
    /// Chunks deserialized from the current morsel, not yet handed out.
    ready: VecDeque<DataChunk>,
    /// The chunk most recently lent out by [`ChunkReader::next`].
    current: Option<DataChunk>,
}

impl ChunkReader for TableReader<'_> {
    fn next(&mut self) -> Result<Option<&DataChunk>> {
        loop {
            if let Some(chunk) = self.ready.pop_front() {
                self.current = Some(chunk);
                return Ok(self.current.as_ref());
            }
            if let Some(cancel) = &self.source.cancel {
                cancel.check()?;
            }
            let n = self.source.table.blocks.len();
            let start = self
                .source
                .cursor
                .fetch_add(BLOCKS_PER_MORSEL, Ordering::Relaxed);
            if start >= n {
                return Ok(None);
            }
            let end = (start + BLOCKS_PER_MORSEL).min(n);
            for handle in &self.source.table.blocks[start..end] {
                let pin = self.source.mgr.pin(handle)?;
                // SAFETY: persistent pages are immutable once written.
                let bytes = unsafe { pin.slice() };
                let mut pos = 0usize;
                let chunks = get_u32(bytes, &mut pos)?;
                for _ in 0..chunks {
                    let len = get_u32(bytes, &mut pos)? as usize;
                    let end_pos = pos + len;
                    let chunk = deserialize_chunk(bytes, &mut pos, &self.source.table.schema)?;
                    debug_assert_eq!(pos, end_pos, "chunk length prefix mismatch");
                    pos = end_pos;
                    self.ready.push_back(chunk);
                }
                // `pin` drops here: the page stays cached until evicted.
            }
        }
    }
}

impl ChunkSource for TableSource<'_> {
    fn reader(&self) -> Box<dyn ChunkReader + '_> {
        Box::new(TableReader {
            source: self,
            ready: VecDeque::new(),
            current: None,
        })
    }

    fn total_rows(&self) -> Option<usize> {
        Some(self.table.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::BufferManagerConfig;
    use parking_lot::Mutex;
    use rexa_exec::pipeline::Pipeline;
    use rexa_exec::{pipeline::LocalSink, pipeline::ParallelSink, Value};
    use rexa_storage::scratch_dir;

    fn setup(page_size: usize, limit: usize) -> (Arc<BufferManager>, Arc<DatabaseFile>) {
        let dir = scratch_dir("table").unwrap();
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(limit)
                .page_size(page_size)
                .temp_dir(dir.join("tmp")),
        )
        .unwrap();
        let db = Arc::new(DatabaseFile::create(&dir.join("t.db"), page_size).unwrap());
        (mgr, db)
    }

    fn chunk(range: std::ops::Range<i64>) -> DataChunk {
        let vals: Vec<i64> = range.clone().collect();
        let strs: Vec<String> = range.map(|i| format!("row-{i}")).collect();
        DataChunk::new(vec![Vector::from_i64(vals), Vector::from_strs(strs)])
    }

    fn scan_all(table: &Table, mgr: &Arc<BufferManager>, threads: usize) -> Vec<(i64, String)> {
        struct Collect {
            rows: Mutex<Vec<(i64, String)>>,
        }
        struct LocalCollect<'a> {
            parent: &'a Collect,
            rows: Vec<(i64, String)>,
        }
        impl ParallelSink for Collect {
            fn local(&self) -> Result<Box<dyn LocalSink + '_>> {
                Ok(Box::new(LocalCollect {
                    parent: self,
                    rows: Vec::new(),
                }))
            }
        }
        impl LocalSink for LocalCollect<'_> {
            fn sink(&mut self, chunk: &DataChunk) -> Result<()> {
                for i in 0..chunk.len() {
                    self.rows
                        .push((chunk.column(0).i64s()[i], chunk.column(1).str_at(i).into()));
                }
                Ok(())
            }
            fn combine(self: Box<Self>) -> Result<()> {
                self.parent.rows.lock().extend(self.rows);
                Ok(())
            }
        }
        let sink = Collect {
            rows: Mutex::new(Vec::new()),
        };
        let source = table.scan(mgr);
        Pipeline::run(&source, &sink, threads).unwrap();
        let mut rows = sink.rows.into_inner();
        rows.sort();
        rows
    }

    #[test]
    fn build_and_scan_round_trip() {
        let (mgr, db) = setup(4096, 1 << 20);
        let schema = vec![LogicalType::Int64, LogicalType::Varchar];
        let mut b = TableBuilder::new(mgr.clone(), db, schema);
        for start in (0..1000).step_by(100) {
            b.append(&chunk(start..start + 100)).unwrap();
        }
        let table = b.finish().unwrap();
        assert_eq!(table.rows(), 1000);
        assert!(table.block_count() > 1, "should span multiple small pages");

        let rows = scan_all(&table, &mgr, 4);
        assert_eq!(rows.len(), 1000);
        for (i, (k, s)) in rows.iter().enumerate() {
            assert_eq!(*k, i as i64);
            assert_eq!(s, &format!("row-{i}"));
        }
    }

    #[test]
    fn oversized_chunk_is_split() {
        let (mgr, db) = setup(512, 1 << 20);
        let schema = vec![LogicalType::Int64, LogicalType::Varchar];
        let mut b = TableBuilder::new(mgr.clone(), db, schema);
        b.append(&chunk(0..200)).unwrap(); // far larger than one 512 B page
        let table = b.finish().unwrap();
        assert_eq!(table.rows(), 200);
        let rows = scan_all(&table, &mgr, 2);
        assert_eq!(rows.len(), 200);
        assert_eq!(rows[199].0, 199);
    }

    #[test]
    fn scan_under_tight_memory_evicts_persistent_pages_for_free() {
        // Limit fits only a couple of pages; scanning must still succeed by
        // evicting earlier pages (free: no temp I/O).
        let (mgr, db) = setup(1024, 4 * 1024);
        let schema = vec![LogicalType::Int64, LogicalType::Varchar];
        let mut b = TableBuilder::new(mgr.clone(), db, schema);
        for start in (0..2000).step_by(100) {
            b.append(&chunk(start..start + 100)).unwrap();
        }
        let table = b.finish().unwrap();
        assert!(table.block_count() > 10);

        let rows = scan_all(&table, &mgr, 4);
        assert_eq!(rows.len(), 2000);
        let stats = mgr.stats();
        assert!(stats.evictions_persistent > 0, "must have evicted");
        assert_eq!(stats.evictions_temporary, 0);
        assert_eq!(stats.temp_bytes_written, 0, "persistent eviction is free");
        assert!(stats.memory_used <= mgr.memory_limit());
    }

    #[test]
    fn repeated_scans_hit_cache_when_memory_allows() {
        let (mgr, db) = setup(4096, 1 << 22);
        let schema = vec![LogicalType::Int64, LogicalType::Varchar];
        let mut b = TableBuilder::new(mgr.clone(), db, schema);
        b.append(&chunk(0..500)).unwrap();
        let table = b.finish().unwrap();

        scan_all(&table, &mgr, 2);
        let resident_after_first = mgr.stats().persistent_resident;
        assert!(resident_after_first > 0, "pages stay cached");
        scan_all(&table, &mgr, 2);
        assert_eq!(mgr.stats().evictions_persistent, 0);
    }

    #[test]
    fn nulls_survive_round_trip() {
        let (mgr, db) = setup(4096, 1 << 20);
        let schema = vec![LogicalType::Int64];
        let mut b = TableBuilder::new(mgr.clone(), db, schema.clone());
        let mut c = DataChunk::empty(&schema);
        for i in 0..50 {
            let v = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int64(i)
            };
            c.push_row(&[v]).unwrap();
        }
        b.append(&c).unwrap();
        let table = b.finish().unwrap();

        let source = table.scan(&mgr);
        let mut reader = source.reader();
        let out = reader.next().unwrap().unwrap();
        assert_eq!(out.len(), 50);
        for i in 0..50 {
            let expect = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int64(i)
            };
            assert_eq!(out.column(0).value(i as usize), expect);
        }
        assert!(reader.next().unwrap().is_none());
    }

    #[test]
    fn empty_table_scan() {
        let (mgr, db) = setup(4096, 1 << 20);
        let b = TableBuilder::new(mgr.clone(), db, vec![LogicalType::Int32]);
        let table = b.finish().unwrap();
        assert_eq!(table.rows(), 0);
        let source = table.scan(&mgr);
        assert!(source.reader().next().unwrap().is_none());
    }
}
