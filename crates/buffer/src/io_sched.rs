//! Background I/O scheduler: spill writes and read-ahead off the compute
//! threads.
//!
//! The paper's premise is that an SSD only delivers its bandwidth at queue
//! depth: a single thread doing synchronous pwrite/pread per page leaves
//! most of the device idle. The scheduler decouples I/O submission from the
//! threads doing aggregation in both directions:
//!
//! * **Eviction spills become background writes.** The reservation path
//!   submits victim blocks to a small writer pool instead of writing
//!   inline. The victim's bytes stay accounted to its category until the
//!   write durably completes — memory accounting never runs ahead of the
//!   disk. Write failures are *deferred*: the block keeps its buffer, is
//!   re-enqueued for eviction, and the typed
//!   [`SpillFailed`](rexa_exec::Error::SpillFailed) surfaces on the next
//!   foreground reservation or at [`BufferManager::drain_io`], preserving
//!   the retry/backoff and non-poisoning semantics of the synchronous path.
//! * **Phase-2 read-ahead.** [`BufferManager::prefetch`] admits a spilled
//!   block's bytes (without evicting anything) and submits a background
//!   read that leaves the block loaded-but-unpinned, so the merge worker's
//!   `pin_all` is a residency hit instead of a serialized read.
//!
//! The in-flight write volume is bounded (`io_inflight_bytes`) so a burst
//! of evictions cannot queue an unbounded amount of memory that the
//! foreground believes is about to be freed.

use crate::handle::BlockHandle;
use crate::manager::BufferManager;
use parking_lot::{Condvar, Mutex};
use rexa_exec::{spawn_named, Error};
use rexa_obs::span::{self, cat as span_cat};
use rexa_obs::{Gauge, SpanBuffer};
use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// One unit of background I/O. Jobs hold a strong handle so the block
/// cannot be destroyed mid-I/O; the worker drops it *before* signalling
/// completion, so "drained" implies every destroy side-effect has run.
enum IoJob {
    /// Write an evicted victim's buffer to temp storage.
    SpillWrite(Arc<BlockHandle>),
    /// Load a spilled block back into loaded-but-unpinned residency.
    PrefetchRead(Arc<BlockHandle>),
}

struct SchedState {
    /// Pending read-ahead loads. Served before writes: a late read is a
    /// stalled merge worker, a late write only delays reclamation.
    reads: VecDeque<IoJob>,
    /// Pending spill writes.
    writes: VecDeque<IoJob>,
    /// Jobs popped by a worker but not yet completed.
    active: usize,
    /// Bytes of submitted-but-incomplete spill writes (the eviction path's
    /// admission bound; reads are bounded by admission-only reservations).
    inflight_write_bytes: usize,
    /// Deferred background-write failures, surfaced on the next foreground
    /// reservation or drain.
    errors: VecDeque<Error>,
    shutdown: bool,
}

struct SchedShared {
    state: Mutex<SchedState>,
    /// Wakes workers: a job was queued or shutdown was signalled.
    work_cv: Condvar,
    /// Wakes foreground waiters: a job completed.
    done_cv: Condvar,
    queue_depth: Gauge,
}

/// Handle to the writer/reader pool, owned by the [`BufferManager`].
pub(crate) struct IoScheduler {
    shared: Arc<SchedShared>,
    inflight_limit: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for IoScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.shared.state.lock();
        f.debug_struct("IoScheduler")
            .field("queued", &(s.reads.len() + s.writes.len()))
            .field("active", &s.active)
            .field("inflight_write_bytes", &s.inflight_write_bytes)
            .finish()
    }
}

impl IoScheduler {
    /// Spawn `writers` I/O worker threads. `mgr` must be the weak self
    /// reference of the owning manager (workers upgrade it per job, so the
    /// pool never keeps the manager alive).
    pub(crate) fn start(
        writers: usize,
        inflight_limit: usize,
        mgr: Weak<BufferManager>,
        queue_depth: Gauge,
    ) -> Self {
        let shared = Arc::new(SchedShared {
            state: Mutex::new(SchedState {
                reads: VecDeque::new(),
                writes: VecDeque::new(),
                active: 0,
                inflight_write_bytes: 0,
                errors: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            queue_depth,
        });
        let workers = (0..writers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let mgr = mgr.clone();
                spawn_named(format!("rexa-io-{i}"), move || {
                    worker_loop(&shared, &mgr, i)
                })
            })
            .collect();
        IoScheduler {
            shared,
            inflight_limit,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a victim for a background spill write if it fits under the
    /// in-flight byte bound. A single write is always admissible when
    /// nothing is in flight, so one oversized buffer cannot deadlock the
    /// reservation path.
    pub(crate) fn try_submit_write(&self, handle: Arc<BlockHandle>) -> bool {
        let bytes = handle.size();
        let mut s = self.shared.state.lock();
        if s.inflight_write_bytes > 0 && s.inflight_write_bytes + bytes > self.inflight_limit {
            return false;
        }
        s.inflight_write_bytes += bytes;
        s.writes.push_back(IoJob::SpillWrite(handle));
        self.shared.queue_depth.add(1);
        drop(s);
        self.shared.work_cv.notify_one();
        true
    }

    /// Submit a background read-ahead load. The caller has already admitted
    /// the block's bytes.
    pub(crate) fn submit_read(&self, handle: Arc<BlockHandle>) {
        let mut s = self.shared.state.lock();
        s.reads.push_back(IoJob::PrefetchRead(handle));
        self.shared.queue_depth.add(1);
        drop(s);
        self.shared.work_cv.notify_one();
    }

    /// Take the deferred errors, returning the first. All are drained so a
    /// single burst of background failures cannot poison follow-up queries
    /// one error at a time.
    pub(crate) fn take_error(&self) -> Option<Error> {
        let mut s = self.shared.state.lock();
        let first = s.errors.pop_front();
        s.errors.clear();
        first
    }

    /// True while any job is queued or running.
    pub(crate) fn has_pending(&self) -> bool {
        let s = self.shared.state.lock();
        !s.reads.is_empty() || !s.writes.is_empty() || s.active > 0
    }

    /// The configured in-flight write byte bound.
    pub(crate) fn inflight_limit(&self) -> usize {
        self.inflight_limit
    }

    /// Block until a completion (or deferred error) is observed, bounded by
    /// a short timeout so a missed wakeup degrades to a retry, not a hang.
    pub(crate) fn wait_event(&self) {
        let mut s = self.shared.state.lock();
        if (s.reads.is_empty() && s.writes.is_empty() && s.active == 0) || !s.errors.is_empty() {
            return;
        }
        self.shared
            .done_cv
            .wait_for(&mut s, Duration::from_millis(10));
    }

    /// Wait until every submitted job has completed.
    pub(crate) fn drain(&self) {
        let mut s = self.shared.state.lock();
        while !s.reads.is_empty() || !s.writes.is_empty() || s.active > 0 {
            self.shared
                .done_cv
                .wait_for(&mut s, Duration::from_millis(10));
        }
    }

    /// Signal shutdown and join the workers. Queued jobs are drained first;
    /// with the manager already unreachable they become no-ops.
    pub(crate) fn shutdown_and_join(&self) {
        self.shared.state.lock().shutdown = true;
        self.shared.work_cv.notify_all();
        for w in self.workers.lock().drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &SchedShared, mgr: &Weak<BufferManager>, idx: usize) {
    // Span-buffer cache for the query currently tracing this manager:
    // registered once per (collector, I/O thread) and reused for every job,
    // keyed by the collector's process-unique id. Untraced queries pay one
    // failed `Weak` upgrade per job.
    let mut sbuf: Option<(u64, Arc<SpanBuffer>)> = None;
    loop {
        let job = {
            let mut s = shared.state.lock();
            loop {
                if let Some(job) = s.reads.pop_front().or_else(|| s.writes.pop_front()) {
                    s.active += 1;
                    break job;
                }
                if s.shutdown {
                    return;
                }
                shared.work_cv.wait(&mut s);
            }
        };
        let write_bytes = match &job {
            IoJob::SpillWrite(h) => Some(h.size()),
            IoJob::PrefetchRead(_) => None,
        };
        // If the manager is gone (tear-down), the job is a no-op: the block
        // handles themselves are owned elsewhere and clean up on drop.
        let err = match (mgr.upgrade(), &job) {
            (None, _) => None,
            (Some(m), job_ref) => {
                let buf = m.span_collector().map(|sc| match &sbuf {
                    Some((id, b)) if *id == sc.id() => Arc::clone(b),
                    _ => {
                        let b = sc.track(format!("io {idx}"));
                        sbuf = Some((sc.id(), Arc::clone(&b)));
                        b
                    }
                });
                match job_ref {
                    IoJob::SpillWrite(h) => {
                        let t = buf.as_ref().map(|b| b.now_ns());
                        let r = m.bg_spill(h);
                        if let (Some(b), Some(t)) = (&buf, t) {
                            b.complete_async(
                                "spill_write",
                                span_cat::IO,
                                t,
                                span::arg1("bytes", h.size() as u64),
                            );
                        }
                        r
                    }
                    IoJob::PrefetchRead(h) => {
                        let t = buf.as_ref().map(|b| b.now_ns());
                        m.bg_prefetch(h);
                        if let (Some(b), Some(t)) = (&buf, t) {
                            b.complete_async(
                                "readahead",
                                span_cat::IO,
                                t,
                                span::arg1("bytes", h.size() as u64),
                            );
                        }
                        None
                    }
                }
            }
        };
        // Drop the strong handle before signalling: a foreground
        // drain-then-destroy must observe the destroy side-effects.
        drop(job);
        let mut s = shared.state.lock();
        s.active -= 1;
        if let Some(b) = write_bytes {
            s.inflight_write_bytes -= b;
        }
        if let Some(e) = err {
            s.errors.push_back(e);
        }
        shared.queue_depth.sub(1);
        drop(s);
        shared.done_cv.notify_all();
    }
}
