//! The unified buffer manager.

use crate::eviction::{EvictionPolicy, EvictionQueues, QueueEntry};
use crate::handle::{BlockHandle, BufferTag, DiskLocation, PinGuard, Residency};
use crate::io_sched::IoScheduler;
use crate::raw::RawBuffer;
use crate::stats::BufferStats;
use parking_lot::Mutex;
use rexa_exec::{Error, Result};
use rexa_obs::{Counter, EventTrace, MetricsRegistry, SpanCollector, TraceEventKind};
use rexa_storage::{BlockId, DatabaseFile, IoBackend, StdIo, TempFileManager, DEFAULT_PAGE_SIZE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Configuration of a [`BufferManager`].
#[derive(Debug, Clone)]
pub struct BufferManagerConfig {
    /// Total memory limit in bytes for resident pages plus non-paged
    /// reservations.
    pub memory_limit: usize,
    /// Page size for persistent and fixed-size temporary pages
    /// (default: 256 KiB, DuckDB's OLAP page size).
    pub page_size: usize,
    /// Eviction policy (default: `Mixed`).
    pub policy: EvictionPolicy,
    /// Directory for temporary spill files.
    pub temp_dir: PathBuf,
    /// The I/O backend temp spill files are written through (default:
    /// [`StdIo`]). Chaos tests install a
    /// [`FaultInjector`](rexa_storage::FaultInjector) here.
    pub io_backend: Arc<dyn IoBackend>,
    /// How many times a *transient* spill-write error (interrupted /
    /// would-block / timed-out) is retried with exponential backoff before
    /// the spill is abandoned with
    /// [`Error::SpillFailed`](rexa_exec::Error::SpillFailed). Fatal errors
    /// (`ENOSPC`, device errors) are never retried. Default: 3.
    pub spill_retries: u32,
    /// Backoff before the first spill retry; doubles per retry (capped at
    /// 8×). Default: 1 ms.
    pub spill_backoff: Duration,
    /// Metrics registry the manager's counters are registered on. `None`
    /// (the default) creates a fresh private registry; a query service
    /// shares one registry across managers and its own counters so a
    /// single Prometheus scrape sees everything.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Event trace for slow-path forensics (spills, evictions,
    /// retry/backoff, degradation decisions). `None` disables tracing.
    pub trace: Option<EventTrace>,
    /// Background I/O worker threads. `0` (the default) keeps every spill
    /// and reload synchronous on the evicting/pinning thread. A positive
    /// count turns eviction spills into background writes and enables
    /// [`BufferManager::prefetch`] read-ahead.
    pub io_writers: usize,
    /// Bound on bytes of spill writes submitted but not yet durably
    /// complete (their reservations are still accounted). `0` (the
    /// default) auto-sizes to `io_writers * 16 * page_size` — deep enough
    /// that submission pipelines instead of ping-ponging on the scheduler,
    /// shallow enough to bound the memory held hostage by queued writes.
    /// One write is always admissible, so an oversized buffer cannot stall
    /// eviction.
    pub io_inflight_bytes: usize,
    /// Open the slotted temp spill file with direct I/O (`O_DIRECT` on
    /// Linux; buffered fallback elsewhere and on filesystems that reject
    /// it): spill writes and reloads go straight to the device instead of
    /// through the page cache. Spilled pages are re-read at most once, so
    /// double-buffering them (pool + page cache) wastes memory the limit
    /// is supposed to cap; direct I/O also exposes the device's real
    /// latency — the cost the background writers (`io_writers`) and
    /// phase-2 read-ahead take off the compute threads. Requires a page
    /// size that is a multiple of 4 KiB. Default: off.
    pub temp_direct_io: bool,
}

impl BufferManagerConfig {
    /// A config with the given limit, default page size and policy, spilling
    /// into a fresh process-unique scratch directory.
    pub fn with_limit(memory_limit: usize) -> Self {
        BufferManagerConfig {
            memory_limit,
            page_size: DEFAULT_PAGE_SIZE,
            policy: EvictionPolicy::Mixed,
            temp_dir: rexa_storage::scratch_dir("spill").expect("cannot create temp dir"),
            io_backend: Arc::new(StdIo),
            spill_retries: 3,
            spill_backoff: Duration::from_millis(1),
            metrics: None,
            trace: None,
            io_writers: 0,
            io_inflight_bytes: 0,
            temp_direct_io: false,
        }
    }

    /// Builder-style override of the page size.
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Builder-style override of the eviction policy.
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style override of the temp directory.
    pub fn temp_dir(mut self, dir: PathBuf) -> Self {
        self.temp_dir = dir;
        self
    }

    /// Builder-style override of the I/O backend.
    pub fn io_backend(mut self, backend: Arc<dyn IoBackend>) -> Self {
        self.io_backend = backend;
        self
    }

    /// Builder-style override of the transient-spill retry budget.
    pub fn spill_retries(mut self, retries: u32) -> Self {
        self.spill_retries = retries;
        self
    }

    /// Builder-style override of the initial spill-retry backoff.
    pub fn spill_backoff(mut self, backoff: Duration) -> Self {
        self.spill_backoff = backoff;
        self
    }

    /// Builder-style: register the manager's counters on a shared registry.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Builder-style: record slow-path events (spill, eviction, retry,
    /// degradation) into `trace`.
    pub fn trace(mut self, trace: EventTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Builder-style override of the background I/O worker count.
    pub fn io_writers(mut self, writers: usize) -> Self {
        self.io_writers = writers;
        self
    }

    /// Builder-style override of the in-flight background-write byte bound.
    pub fn io_inflight_bytes(mut self, bytes: usize) -> Self {
        self.io_inflight_bytes = bytes;
        self
    }

    /// Builder-style: open the temp spill file with direct I/O (`O_DIRECT`).
    pub fn temp_direct_io(mut self, on: bool) -> Self {
        self.temp_direct_io = on;
        self
    }
}

/// The manager's monotone event counters, registry-backed: the registry is
/// the single source of truth, and [`BufferStats`] is a façade over it.
#[derive(Debug)]
struct Counters {
    evictions_persistent: Counter,
    evictions_temporary: Counter,
    buffer_reuses: Counter,
    allocations: Counter,
    spill_retries: Counter,
    spill_failures: Counter,
    readahead_hits: Counter,
    readahead_misses: Counter,
    bg_write_nanos: Counter,
    readahead_nanos: Counter,
}

impl Counters {
    fn register(reg: &MetricsRegistry) -> Self {
        Counters {
            evictions_persistent: reg.counter(
                "rexa_evictions_persistent_total",
                "Persistent pages evicted (free: the database file has them).",
            ),
            evictions_temporary: reg.counter(
                "rexa_evictions_temporary_total",
                "Temporary pages evicted (each one is a spill write).",
            ),
            buffer_reuses: reg.counter(
                "rexa_buffer_reuses_total",
                "Evicted buffers handed directly to a same-size allocation.",
            ),
            allocations: reg.counter(
                "rexa_allocations_total",
                "Temporary buffer allocations (fixed and variable size).",
            ),
            spill_retries: reg.counter(
                "rexa_spill_retries_total",
                "Transient spill-write errors retried with backoff.",
            ),
            spill_failures: reg.counter(
                "rexa_spill_failures_total",
                "Spills abandoned with a typed SpillFailed error.",
            ),
            readahead_hits: reg.counter(
                "rexa_readahead_hits_total",
                "Pins that found their block resident thanks to read-ahead.",
            ),
            readahead_misses: reg.counter(
                "rexa_readahead_misses_total",
                "Read-ahead attempts that did not help (no memory headroom, \
                 read failure, or the page was evicted again before use).",
            ),
            bg_write_nanos: reg.counter(
                "rexa_bg_write_nanos_total",
                "Nanoseconds spent in background spill writes (I/O overlapped \
                 with computation).",
            ),
            readahead_nanos: reg.counter(
                "rexa_readahead_nanos_total",
                "Nanoseconds spent in background read-ahead loads.",
            ),
        }
    }
}

/// Which part of the pool a byte is attributed to. The three categories
/// partition `used`: `used == persistent + temporary + non_paged` holds
/// whenever the accounting lock is free, which is what makes
/// [`BufferManager::stats`] internally consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemCat {
    Persistent,
    Temporary,
    NonPaged,
}

fn cat_of(tag: BufferTag) -> MemCat {
    if tag.is_temporary() {
        MemCat::Temporary
    } else {
        MemCat::Persistent
    }
}

/// What one pass of the asynchronous eviction path achieved.
enum EvictProgress {
    /// A persistent page was freed inline; memory was released.
    Freed,
    /// A victim was handed to the writer pool; memory frees on completion.
    Submitted,
    /// The in-flight write bound is full; wait for a completion.
    InflightFull,
    /// No evictable candidates remain.
    QueueEmpty,
}

/// All memory gauges behind one lock: admission, release, and
/// category-to-category transfer each happen in a single critical section,
/// so every observer sees `used` equal to the sum of the categories. The
/// lock is taken once per page-granular operation (allocate, pin-load,
/// evict, reservation resize) — never per row — so it is not a hot-path
/// cost.
#[derive(Debug, Default)]
struct Accounting {
    limit: usize,
    used: usize,
    persistent: usize,
    temporary: usize,
    non_paged: usize,
}

impl Accounting {
    fn slot(&mut self, cat: MemCat) -> &mut usize {
        match cat {
            MemCat::Persistent => &mut self.persistent,
            MemCat::Temporary => &mut self.temporary,
            MemCat::NonPaged => &mut self.non_paged,
        }
    }

    /// Admit `size` bytes into `cat` if they fit under the limit.
    /// `checked_add`: a pathological `size` must not wrap around and "fit"
    /// (release builds do not trap on overflow).
    fn admit(&mut self, size: usize, cat: MemCat) -> bool {
        if self.used.checked_add(size).is_some_and(|t| t <= self.limit) {
            self.used += size;
            *self.slot(cat) += size;
            true
        } else {
            false
        }
    }

    /// Release `size` bytes attributed to `cat`.
    fn release(&mut self, size: usize, cat: MemCat) {
        debug_assert!(self.used >= size, "memory accounting underflow");
        debug_assert!(*self.slot(cat) >= size, "category accounting underflow");
        self.used -= size;
        *self.slot(cat) -= size;
    }

    /// Move `size` bytes from one category to another; `used` is untouched
    /// (this is the buffer-reuse handoff: the evicted buffer's bytes become
    /// the new owner's bytes in one step).
    fn transfer(&mut self, size: usize, from: MemCat, to: MemCat) {
        debug_assert!(*self.slot(from) >= size, "transfer source underflow");
        *self.slot(from) -= size;
        *self.slot(to) += size;
    }
}

/// The unified buffer manager (paper Section III): a single memory pool and
/// eviction structure for persistent pages, temporary pages, and non-paged
/// reservations.
pub struct BufferManager {
    page_size: usize,
    accounting: Mutex<Accounting>,
    temp: TempFileManager,
    queues: EvictionQueues,
    counters: Counters,
    metrics: Arc<MetricsRegistry>,
    trace: Option<EventTrace>,
    spill_retries: u32,
    spill_backoff: Duration,
    /// Serializes eviction scans so concurrent reservations do not race each
    /// other through the queue and over-evict.
    evict_lock: Mutex<()>,
    /// Background spill-writer / read-ahead pool; `None` keeps all I/O
    /// synchronous (the default).
    io_sched: Option<IoScheduler>,
    /// Span sink for the query currently tracing this manager's background
    /// I/O. Weak so a finished query's collector (and its buffers) is
    /// released even if nobody detaches; the I/O workers upgrade per job.
    span_sink: Mutex<Weak<SpanCollector>>,
    weak_self: Weak<BufferManager>,
}

impl std::fmt::Debug for BufferManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferManager")
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferManager {
    /// Create a buffer manager.
    pub fn new(config: BufferManagerConfig) -> Result<Arc<Self>> {
        assert!(config.page_size >= 64, "page size too small");
        let metrics = config.metrics.unwrap_or_default();
        let temp = TempFileManager::with_backend_and_metrics(
            config.temp_dir,
            config.page_size,
            config.io_backend,
            &metrics,
        )?
        .with_direct_io(config.temp_direct_io);
        let counters = Counters::register(&metrics);
        Ok(Arc::new_cyclic(|weak| {
            let io_sched = (config.io_writers > 0).then(|| {
                let inflight = if config.io_inflight_bytes > 0 {
                    config.io_inflight_bytes
                } else {
                    config.io_writers * 16 * config.page_size
                };
                IoScheduler::start(
                    config.io_writers,
                    inflight,
                    weak.clone(),
                    metrics.gauge(
                        "rexa_io_queue_depth",
                        "Background I/O jobs queued or in flight.",
                    ),
                )
            });
            BufferManager {
                page_size: config.page_size,
                accounting: Mutex::new(Accounting {
                    limit: config.memory_limit,
                    ..Accounting::default()
                }),
                temp,
                queues: EvictionQueues::new(config.policy),
                counters,
                metrics,
                trace: config.trace,
                spill_retries: config.spill_retries,
                spill_backoff: config.spill_backoff,
                evict_lock: Mutex::new(()),
                io_sched,
                span_sink: Mutex::new(Weak::new()),
                weak_self: weak.clone(),
            }
        }))
    }

    /// The registry holding this manager's counters (and the temp-file
    /// I/O counters). Share it with a [`FaultInjector`](rexa_storage::FaultInjector)
    /// or a query service to get one scrapeable source of truth.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The attached event trace, if any.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref()
    }

    /// Attach a span collector for the duration of a traced query: the
    /// background I/O workers record spill writes and read-ahead loads as
    /// async spans into it. Only a [`Weak`] is kept — when the query's
    /// collector is dropped the sink expires on its own, so there is no
    /// mandatory detach step (and an untraced query pays one `Weak`
    /// upgrade-failure per background job at most).
    pub fn attach_spans(&self, spans: &Arc<SpanCollector>) {
        *self.span_sink.lock() = Arc::downgrade(spans);
    }

    /// The span collector of the query currently tracing this manager's
    /// background I/O, if one is attached and still alive.
    pub fn span_collector(&self) -> Option<Arc<SpanCollector>> {
        self.span_sink.lock().upgrade()
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The current memory limit.
    pub fn memory_limit(&self) -> usize {
        self.accounting.lock().limit
    }

    /// Change the memory limit at runtime.
    ///
    /// Lowering the limit below current usage is safe: unpinned pages are
    /// evicted best-effort right away, while pinned pages and outstanding
    /// [`MemoryReservation`]s keep their bytes (they were admitted under the
    /// old limit and cannot be reclaimed without corrupting their owners).
    /// Usage may therefore stay above the new limit until those are
    /// released; every *new* reservation is checked against the new limit
    /// and fails rather than succeeding spuriously.
    pub fn set_memory_limit(&self, limit: usize) {
        self.accounting.lock().limit = limit;
        let _guard = self.evict_lock.lock();
        while self.memory_used() > self.memory_limit() {
            match self.evict_one() {
                Ok(Some((buf, tag))) => {
                    let freed = buf.len();
                    drop(buf);
                    self.accounting.lock().release(freed, cat_of(tag));
                }
                // Nothing evictable, or a spill I/O error: stop. This path
                // is best-effort; the next reservation retries eviction and
                // is where failures are reported.
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Bytes currently counted against the limit.
    pub fn memory_used(&self) -> usize {
        self.accounting.lock().used
    }

    /// The active eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.queues.policy()
    }

    /// A snapshot of all counters and gauges. The memory gauges are read in
    /// one critical section of the accounting lock, so
    /// `memory_used == persistent_resident + temporary_resident + non_paged`
    /// holds in every snapshot, even under concurrent load (the counters
    /// are monotone registry metrics read individually — façade over the
    /// single source of truth).
    pub fn stats(&self) -> BufferStats {
        let (memory_used, memory_limit, persistent_resident, temporary_resident, non_paged) = {
            let a = self.accounting.lock();
            (a.used, a.limit, a.persistent, a.temporary, a.non_paged)
        };
        BufferStats {
            memory_used,
            memory_limit,
            persistent_resident,
            temporary_resident,
            non_paged,
            temp_bytes_on_disk: self.temp.bytes_on_disk(),
            temp_bytes_written: self.temp.bytes_written(),
            temp_bytes_read: self.temp.bytes_read(),
            evictions_persistent: self.counters.evictions_persistent.get(),
            evictions_temporary: self.counters.evictions_temporary.get(),
            buffer_reuses: self.counters.buffer_reuses.get(),
            allocations: self.counters.allocations.get(),
            spill_retries: self.counters.spill_retries.get(),
            spill_failures: self.counters.spill_failures.get(),
            readahead_hits: self.counters.readahead_hits.get(),
            readahead_misses: self.counters.readahead_misses.get(),
            bg_write_nanos: self.counters.bg_write_nanos.get(),
            readahead_nanos: self.counters.readahead_nanos.get(),
        }
    }

    /// Temp-file slots currently holding live spilled pages. Zero when
    /// nothing is spilled; the chaos tests assert this returns to its
    /// pre-query baseline after every fault-failed query.
    pub fn temp_slots_in_use(&self) -> u64 {
        self.temp.slots_in_use()
    }

    // ---- reservation & eviction ------------------------------------------

    /// Reserve `size` bytes against the limit, attributed to `cat`, evicting
    /// as needed. Returns a reusable evicted buffer of exactly `size` bytes
    /// if eviction produced one and `allow_reuse` is set; the returned
    /// buffer's bytes remain accounted, already re-attributed to `cat`
    /// (ownership of the reservation transfers with it).
    fn reserve_bytes(
        &self,
        size: usize,
        cat: MemCat,
        allow_reuse: bool,
    ) -> Result<Option<RawBuffer>> {
        if self.io_sched.is_some() {
            return self.reserve_bytes_async(size, cat);
        }
        loop {
            if self.accounting.lock().admit(size, cat) {
                return Ok(None);
            }
            // Over the limit: evict. Serialize evictors so two threads do
            // not both drain the queue for one reservation's worth of space.
            let _guard = self.evict_lock.lock();
            match self.evict_one()? {
                Some((buf, tag)) => {
                    if allow_reuse && buf.len() == size {
                        self.counters.buffer_reuses.incr();
                        // The victim's bytes become the caller's bytes in one
                        // critical section; `used` never dips or double-counts.
                        self.accounting.lock().transfer(size, cat_of(tag), cat);
                        return Ok(Some(buf));
                    }
                    let freed = buf.len();
                    drop(buf);
                    self.accounting.lock().release(freed, cat_of(tag));
                }
                None => {
                    // Nothing evictable — but concurrent releases may have
                    // freed room while we drained the queue (e.g. another
                    // query's partitions being destroyed). Only report OOM
                    // if the request still does not fit *now*.
                    let (limit, used_now) = {
                        let mut a = self.accounting.lock();
                        if a.admit(size, cat) {
                            return Ok(None);
                        }
                        (a.limit, a.used)
                    };
                    return Err(Error::OutOfMemory {
                        requested: size,
                        limit,
                        used: used_now,
                    });
                }
            }
        }
    }

    /// Release `size` reserved bytes attributed to `cat`.
    fn release_bytes(&self, size: usize, cat: MemCat) {
        self.accounting.lock().release(size, cat);
    }

    /// True for I/O errors worth retrying: the operation may succeed if
    /// simply re-issued (signal interruption, saturated device queue).
    /// `ENOSPC` and real device errors are fatal — retrying cannot help.
    fn is_transient(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        )
    }

    /// Run a spill write, retrying transient I/O errors up to the configured
    /// budget with exponential backoff. A fatal error — or a transient one
    /// that outlives the budget — is wrapped in the typed
    /// [`Error::SpillFailed`] so callers can tell "the disk rejected the
    /// spill" apart from plain read I/O failures.
    fn spill_with_retry<T>(&self, bytes: usize, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(Error::Io(e)) if retries < self.spill_retries && Self::is_transient(&e) => {
                    self.counters.spill_retries.incr();
                    let backoff = self.spill_backoff * (1u32 << retries.min(3));
                    if let Some(trace) = &self.trace {
                        trace.record(TraceEventKind::Retry {
                            attempt: retries + 1,
                        });
                        trace.record(TraceEventKind::Backoff {
                            micros: backoff.as_micros() as u64,
                        });
                    }
                    std::thread::sleep(backoff);
                    retries += 1;
                }
                Err(Error::Io(e)) => {
                    self.counters.spill_failures.incr();
                    if let Some(trace) = &self.trace {
                        trace.record(TraceEventKind::Degradation {
                            detail: format!(
                                "spill of {bytes} bytes abandoned after {retries} retries: {e}"
                            ),
                        });
                    }
                    return Err(Error::SpillFailed {
                        source: e,
                        bytes,
                        retries,
                    });
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Evict one block: pop queue entries until a valid, unpinned, loaded
    /// candidate is found; spill it if temporary; return its buffer and tag
    /// with the bytes still accounted to the victim's category — the caller
    /// must `transfer` (reuse) or `release` (free) them.
    /// `Ok(None)` means nothing is evictable.
    ///
    /// A failed spill degrades gracefully: the candidate stays loaded, is
    /// re-enqueued (so it becomes evictable again once the fault clears or
    /// disk space frees up), and the error propagates to whichever
    /// reservation needed the memory — that query fails; the manager and
    /// every other block stay consistent.
    fn evict_one(&self) -> Result<Option<(RawBuffer, BufferTag)>> {
        while let Some(QueueEntry { block, seq }) = self.queues.pop() {
            let Some(handle) = block.upgrade() else {
                continue; // block destroyed
            };
            if handle.seq.load(Ordering::Acquire) != seq {
                continue; // stale entry: block was re-pinned since enqueue
            }
            if handle.pins.load(Ordering::Acquire) != 0 {
                continue; // pinned; its next unpin re-enqueues it
            }
            let mut state = handle.state.lock();
            if handle.pins.load(Ordering::Acquire) != 0 {
                continue; // raced with a pin
            }
            let Residency::Loaded(_) = &*state else {
                continue; // already evicted
            };
            // Spill temporaries before releasing the buffer.
            let spilled = match handle.tag {
                BufferTag::Persistent => {
                    // Free: the page is already in the database file.
                    handle
                        .persistent_id()
                        .ok_or_else(|| Error::Internal("persistent block without id".into()))
                        .map(DiskLocation::Database)
                }
                BufferTag::TempFixed => {
                    let Residency::Loaded(buf) = &*state else {
                        unreachable!()
                    };
                    // SAFETY: unpinned and state-locked: no concurrent writer.
                    self.spill_with_retry(buf.len(), || {
                        self.temp.write_slot(unsafe { buf.slice() })
                    })
                    .map(DiskLocation::TempSlot)
                }
                BufferTag::TempVariable => {
                    let Residency::Loaded(buf) = &*state else {
                        unreachable!()
                    };
                    // SAFETY: as above.
                    self.spill_with_retry(buf.len(), || self.temp.write_var(unsafe { buf.slice() }))
                        .map(DiskLocation::TempVar)
                }
            };
            let loc = match spilled {
                Ok(loc) => {
                    let temporary = handle.tag.is_temporary();
                    let counter = if temporary {
                        &self.counters.evictions_temporary
                    } else {
                        &self.counters.evictions_persistent
                    };
                    counter.incr();
                    if let Some(trace) = &self.trace {
                        if temporary {
                            trace.record(TraceEventKind::Spill {
                                bytes: handle.size as u64,
                            });
                        }
                        trace.record(TraceEventKind::Eviction {
                            bytes: handle.size as u64,
                            temporary,
                        });
                    }
                    loc
                }
                Err(e) => {
                    // The block keeps its buffer; make it evictable again
                    // and report the failure to the starved reservation.
                    drop(state);
                    self.queue_for_eviction(&handle);
                    return Err(e);
                }
            };
            let old = std::mem::replace(&mut *state, Residency::OnDisk(loc));
            drop(state);
            let Residency::Loaded(buf) = old else {
                unreachable!()
            };
            return Ok(Some((buf, handle.tag)));
        }
        Ok(None)
    }

    // ---- background I/O ---------------------------------------------------

    /// The reservation loop when a background I/O scheduler is attached:
    /// instead of spilling victims inline, submit them to the writer pool
    /// and keep the pipeline full up to the in-flight byte bound. Victim
    /// bytes stay accounted until their write completes, so `used` never
    /// runs ahead of the disk. Deferred background-write errors surface
    /// here, on the next reservation after the failure.
    fn reserve_bytes_async(&self, size: usize, cat: MemCat) -> Result<Option<RawBuffer>> {
        let sched = self.io_sched.as_ref().expect("async reserve w/o scheduler");
        loop {
            if let Some(e) = sched.take_error() {
                return Err(e);
            }
            let (admitted, tight) = {
                let mut a = self.accounting.lock();
                let admitted = a.admit(size, cat);
                (admitted, a.used + sched.inflight_limit() > a.limit)
            };
            if admitted {
                if tight {
                    self.write_behind(sched);
                }
                return Ok(None);
            }
            let progress = {
                let _guard = self.evict_lock.lock();
                self.submit_one_eviction(sched)?
            };
            match progress {
                EvictProgress::Freed | EvictProgress::Submitted => continue,
                EvictProgress::InflightFull => sched.wait_event(),
                EvictProgress::QueueEmpty => {
                    if sched.has_pending() {
                        // All evictable blocks are already in flight: wait
                        // for a completion to free memory (or report an
                        // error) and re-check.
                        sched.wait_event();
                        continue;
                    }
                    if let Some(e) = sched.take_error() {
                        return Err(e);
                    }
                    let (limit, used_now) = {
                        let mut a = self.accounting.lock();
                        if a.admit(size, cat) {
                            return Ok(None);
                        }
                        (a.limit, a.used)
                    };
                    return Err(Error::OutOfMemory {
                        requested: size,
                        limit,
                        used: used_now,
                    });
                }
            }
        }
    }

    /// Proactive background cleaning ("write-behind"): once a reservation
    /// has been admitted but the remaining headroom is smaller than the
    /// scheduler's in-flight write bound, start submitting victims *now* so
    /// the next reservation finds freed bytes instead of paying a spill
    /// write on its critical path. Purely reactive submission degenerates
    /// to synchronous spilling with extra hops — the overlap comes from
    /// cleaning while the compute threads still have runway. Never blocks
    /// the caller: bails out if another thread is already evicting, and
    /// stops at the in-flight bound. Write failures are deferred exactly
    /// like reactive submissions.
    fn write_behind(&self, sched: &IoScheduler) {
        let Some(_guard) = self.evict_lock.try_lock() else {
            return;
        };
        loop {
            {
                let a = self.accounting.lock();
                if a.used + sched.inflight_limit() <= a.limit {
                    return;
                }
            }
            match self.submit_one_eviction(sched) {
                Ok(EvictProgress::Freed | EvictProgress::Submitted) => continue,
                Ok(EvictProgress::InflightFull | EvictProgress::QueueEmpty) | Err(_) => return,
            }
        }
    }

    /// Pop eviction candidates until one makes progress: persistent pages
    /// are freed inline (no I/O), temporary pages are submitted to the
    /// writer pool. Must be called under `evict_lock`.
    fn submit_one_eviction(&self, sched: &IoScheduler) -> Result<EvictProgress> {
        while let Some(QueueEntry { block, seq }) = self.queues.pop() {
            let Some(handle) = block.upgrade() else {
                continue;
            };
            if handle.seq.load(Ordering::Acquire) != seq {
                continue;
            }
            if handle.pins.load(Ordering::Acquire) != 0 {
                continue;
            }
            if handle.tag == BufferTag::Persistent {
                // Free: the database file already has the page. Same inline
                // transition as the synchronous path.
                let mut state = handle.state.lock();
                if handle.pins.load(Ordering::Acquire) != 0 {
                    continue;
                }
                let Residency::Loaded(_) = &*state else {
                    continue;
                };
                let id = handle
                    .persistent_id()
                    .ok_or_else(|| Error::Internal("persistent block without id".into()))?;
                let old =
                    std::mem::replace(&mut *state, Residency::OnDisk(DiskLocation::Database(id)));
                drop(state);
                self.counters.evictions_persistent.incr();
                if let Some(trace) = &self.trace {
                    trace.record(TraceEventKind::Eviction {
                        bytes: handle.size as u64,
                        temporary: false,
                    });
                }
                let Residency::Loaded(buf) = old else {
                    unreachable!()
                };
                let freed = buf.len();
                drop(buf);
                self.release_bytes(freed, MemCat::Persistent);
                return Ok(EvictProgress::Freed);
            }
            if !matches!(&*handle.state.lock(), Residency::Loaded(_)) {
                continue; // already spilled
            }
            if !sched.try_submit_write(Arc::clone(&handle)) {
                // In-flight bound reached: hand the candidate back and let
                // the caller wait for a completion instead of queueing more
                // memory than the bound allows.
                self.queue_for_eviction(&handle);
                return Ok(EvictProgress::InflightFull);
            }
            return Ok(EvictProgress::Submitted);
        }
        Ok(EvictProgress::QueueEmpty)
    }

    /// Background spill of one victim, run on an I/O worker thread. The
    /// state lock is held across the write (exactly like the synchronous
    /// path), so a concurrent pin blocks until the block's fate is decided.
    /// Returns the error to defer, if the write failed.
    pub(crate) fn bg_spill(&self, handle: &Arc<BlockHandle>) -> Option<Error> {
        let mut state = handle.state.lock();
        if handle.pins.load(Ordering::Acquire) != 0 {
            return None; // re-pinned since selection; its next unpin re-enqueues
        }
        let Residency::Loaded(buf) = &*state else {
            return None; // evicted by another path (e.g. set_memory_limit)
        };
        let t0 = std::time::Instant::now();
        let spilled = match handle.tag {
            BufferTag::Persistent => handle
                .persistent_id()
                .ok_or_else(|| Error::Internal("persistent block without id".into()))
                .map(DiskLocation::Database),
            BufferTag::TempFixed => {
                // SAFETY: unpinned and state-locked: no concurrent writer.
                self.spill_with_retry(buf.len(), || self.temp.write_slot(unsafe { buf.slice() }))
                    .map(DiskLocation::TempSlot)
            }
            BufferTag::TempVariable => {
                // SAFETY: as above.
                self.spill_with_retry(buf.len(), || self.temp.write_var(unsafe { buf.slice() }))
                    .map(DiskLocation::TempVar)
            }
        };
        self.counters
            .bg_write_nanos
            .add(t0.elapsed().as_nanos() as u64);
        match spilled {
            Ok(loc) => {
                let temporary = handle.tag.is_temporary();
                let counter = if temporary {
                    &self.counters.evictions_temporary
                } else {
                    &self.counters.evictions_persistent
                };
                counter.incr();
                if let Some(trace) = &self.trace {
                    if temporary {
                        trace.record(TraceEventKind::Spill {
                            bytes: handle.size as u64,
                        });
                    }
                    trace.record(TraceEventKind::Eviction {
                        bytes: handle.size as u64,
                        temporary,
                    });
                }
                let old = std::mem::replace(&mut *state, Residency::OnDisk(loc));
                drop(state);
                let Residency::Loaded(buf) = old else {
                    unreachable!()
                };
                let freed = buf.len();
                drop(buf);
                // Only now — the write is durably complete — does the
                // victim's reservation leave the accounting.
                self.release_bytes(freed, cat_of(handle.tag));
                None
            }
            Err(e) => {
                // The block keeps its buffer and becomes evictable again;
                // the typed error is deferred to the next foreground
                // reservation (or drain), preserving the synchronous path's
                // non-poisoning semantics.
                drop(state);
                self.queue_for_eviction(handle);
                if let Some(trace) = &self.trace {
                    trace.record(TraceEventKind::Degradation {
                        detail: format!("background spill failed; error deferred: {e}"),
                    });
                }
                Some(e)
            }
        }
    }

    /// Background read-ahead load of one spilled block, run on an I/O
    /// worker thread. The caller ([`BufferManager::prefetch`]) already
    /// admitted the bytes. Read failures are swallowed: read-ahead is
    /// advisory, and the foreground pin re-issues the read synchronously
    /// and surfaces the error itself.
    pub(crate) fn bg_prefetch(&self, handle: &Arc<BlockHandle>) {
        let cat = cat_of(handle.tag);
        let mut state = handle.state.lock();
        match &*state {
            Residency::OnDisk(loc) => {
                let buf = RawBuffer::alloc(handle.size);
                let t0 = std::time::Instant::now();
                // SAFETY: buffer not yet shared; exclusive during load.
                let dst = unsafe { buf.slice_mut() };
                let load = match loc {
                    DiskLocation::Database(id) => match handle.db.as_ref() {
                        Some((db, _)) => db.read_block(*id, dst),
                        None => Err(Error::Internal("persistent block without file".into())),
                    },
                    DiskLocation::TempSlot(slot) => self.temp.read_slot(*slot, dst),
                    DiskLocation::TempVar(var) => self.temp.read_var(*var, dst),
                };
                self.counters
                    .readahead_nanos
                    .add(t0.elapsed().as_nanos() as u64);
                match load {
                    Ok(()) => {
                        *state = Residency::Loaded(buf);
                        handle.prefetched.store(true, Ordering::Release);
                        drop(state);
                        // Loaded-but-unpinned: the block stays reclaimable
                        // if memory pressure returns before the pin.
                        self.queue_for_eviction(handle);
                    }
                    Err(_) => {
                        drop(buf);
                        drop(state);
                        self.release_bytes(handle.size, cat);
                        self.counters.readahead_misses.incr();
                    }
                }
            }
            _ => {
                // Loaded meanwhile (raced with a foreground pin): give the
                // reservation back; the resident copy is already paid for.
                drop(state);
                self.release_bytes(handle.size, cat);
            }
        }
    }

    /// Ask the I/O scheduler to load a spilled block back into
    /// loaded-but-unpinned residency in the background, so a later pin is a
    /// residency hit instead of a synchronous read.
    ///
    /// Read-ahead is strictly admission-bounded: it only proceeds when the
    /// block's bytes fit under the limit *without* evicting anything —
    /// prefetching must never steal working memory. Returns whether a load
    /// was submitted. No-op (false) without an I/O scheduler
    /// (`io_writers == 0`).
    pub fn prefetch(&self, handle: &Arc<BlockHandle>) -> bool {
        let Some(sched) = &self.io_sched else {
            return false;
        };
        if handle.pins.load(Ordering::Acquire) != 0 || handle.is_loaded() {
            return false;
        }
        let cat = cat_of(handle.tag);
        if !self.accounting.lock().admit(handle.size, cat) {
            self.counters.readahead_misses.incr();
            return false;
        }
        sched.submit_read(Arc::clone(handle));
        true
    }

    /// Wait for all background I/O to complete, then surface the first
    /// deferred background-write error, if any. Queries fence on this after
    /// their last buffer operation (on success *and* error paths) so a
    /// deferred `SpillFailed` is attributed to the query whose eviction
    /// triggered the write, and so final stats snapshots are quiescent.
    /// No-op without an I/O scheduler.
    pub fn drain_io(&self) -> Result<()> {
        let Some(sched) = &self.io_sched else {
            return Ok(());
        };
        sched.drain();
        match sched.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Called from `BlockHandle::drop` for a still-resident block.
    pub(crate) fn on_destroy_loaded(&self, tag: BufferTag, size: usize) {
        self.release_bytes(size, cat_of(tag));
    }

    /// Called from `BlockHandle::drop` for a spilled block: free disk space.
    pub(crate) fn on_destroy_spilled(&self, loc: &DiskLocation, size: usize) {
        match loc {
            DiskLocation::Database(_) => {} // persistent data stays
            DiskLocation::TempSlot(slot) => self.temp.free_slot(*slot),
            DiskLocation::TempVar(var) => {
                let _ = self.temp.free_var(*var, size);
            }
        }
    }

    /// Make an unpinned block evictable.
    pub(crate) fn queue_for_eviction(&self, handle: &Arc<BlockHandle>) {
        let seq = handle.seq.fetch_add(1, Ordering::AcqRel) + 1;
        self.queues.push(
            QueueEntry {
                block: Arc::downgrade(handle),
                seq,
            },
            handle.tag.is_temporary(),
        );
    }

    // ---- allocation -------------------------------------------------------

    fn self_arc(&self) -> Arc<BufferManager> {
        self.weak_self.upgrade().expect("manager alive")
    }

    fn allocate_temp(&self, size: usize, tag: BufferTag) -> Result<(Arc<BlockHandle>, PinGuard)> {
        let reused = self.reserve_bytes(size, cat_of(tag), true)?;
        let buf = reused.unwrap_or_else(|| RawBuffer::alloc(size));
        let ptr = buf.as_ptr();
        self.counters.allocations.incr();
        let handle = Arc::new(BlockHandle {
            tag,
            size,
            db: None,
            state: Mutex::new(Residency::Loaded(buf)),
            pins: AtomicUsize::new(1),
            seq: AtomicU64::new(0),
            prefetched: AtomicBool::new(false),
            mgr: self.weak_self.clone(),
        });
        let guard = PinGuard {
            handle: Arc::clone(&handle),
            ptr,
            len: size,
        };
        Ok((handle, guard))
    }

    /// Allocate a pinned, zeroed, page-size temporary buffer (the paper's
    /// "paged fixed-size allocation" — the workhorse for intermediates).
    pub fn allocate_page(&self) -> Result<(Arc<BlockHandle>, PinGuard)> {
        self.allocate_temp(self.page_size, BufferTag::TempFixed)
    }

    /// Allocate a pinned, zeroed temporary buffer of arbitrary size (the
    /// paper's "paged variable-size allocation" — used sparingly, e.g. for
    /// strings larger than a page).
    pub fn allocate_variable(&self, size: usize) -> Result<(Arc<BlockHandle>, PinGuard)> {
        self.allocate_temp(size, BufferTag::TempVariable)
    }

    /// Register a page of the database file with the pool. The page is not
    /// loaded until pinned.
    pub fn register_persistent(&self, db: &Arc<DatabaseFile>, id: BlockId) -> Arc<BlockHandle> {
        Arc::new(BlockHandle {
            tag: BufferTag::Persistent,
            size: db.page_size(),
            db: Some((Arc::clone(db), id)),
            state: Mutex::new(Residency::OnDisk(DiskLocation::Database(id))),
            pins: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            prefetched: AtomicBool::new(false),
            mgr: self.weak_self.clone(),
        })
    }

    /// Pin a block, loading it from the database file or temp storage if it
    /// is not resident. The returned guard keeps it resident.
    pub fn pin(&self, handle: &Arc<BlockHandle>) -> Result<PinGuard> {
        handle.pins.fetch_add(1, Ordering::AcqRel);
        // Invalidate any queued eviction entry.
        handle.seq.fetch_add(1, Ordering::AcqRel);
        match self.pin_inner(handle) {
            Ok(guard) => Ok(guard),
            Err(e) => {
                if handle.pins.fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.queue_for_eviction(handle);
                }
                Err(e)
            }
        }
    }

    /// Consume the handle's read-ahead marker, crediting a hit or a miss.
    /// Cheap no-op when no scheduler is attached (the flag is never set).
    fn note_readahead(&self, handle: &BlockHandle, hit: bool) {
        if self.io_sched.is_some() && handle.prefetched.swap(false, Ordering::AcqRel) {
            if hit {
                self.counters.readahead_hits.incr();
            } else {
                self.counters.readahead_misses.incr();
            }
        }
    }

    fn pin_inner(&self, handle: &Arc<BlockHandle>) -> Result<PinGuard> {
        // Fast path: already resident.
        {
            let state = handle.state.lock();
            if let Residency::Loaded(buf) = &*state {
                self.note_readahead(handle, true);
                return Ok(PinGuard {
                    handle: Arc::clone(handle),
                    ptr: buf.as_ptr(),
                    len: handle.size,
                });
            }
        }
        // Slow path: reserve memory *without* holding the state lock (the
        // reservation may need to evict other blocks), then load.
        let cat = cat_of(handle.tag);
        let reused = self.reserve_bytes(handle.size, cat, true)?;
        let mut state = handle.state.lock();
        match &*state {
            Residency::Loaded(buf) => {
                // Another thread loaded it while we reserved: give back.
                self.note_readahead(handle, true);
                let ptr = buf.as_ptr();
                match reused {
                    Some(buf) => {
                        let len = buf.len();
                        drop(buf);
                        self.release_bytes(len, cat);
                    }
                    None => self.release_bytes(handle.size, cat),
                }
                Ok(PinGuard {
                    handle: Arc::clone(handle),
                    ptr,
                    len: handle.size,
                })
            }
            Residency::OnDisk(loc) => {
                // Prefetched but evicted again before we got here: a miss.
                self.note_readahead(handle, false);
                let buf = reused.unwrap_or_else(|| RawBuffer::alloc(handle.size));
                // SAFETY: buffer not yet shared; exclusive during load.
                let dst = unsafe { buf.slice_mut() };
                let load = match loc {
                    DiskLocation::Database(id) => {
                        let (db, _) = handle
                            .db
                            .as_ref()
                            .expect("persistent block without database file");
                        db.read_block(*id, dst)
                    }
                    DiskLocation::TempSlot(slot) => self.temp.read_slot(*slot, dst),
                    DiskLocation::TempVar(var) => self.temp.read_var(*var, dst),
                };
                if let Err(e) = load {
                    // Leave the block on disk; release the reservation.
                    drop(buf);
                    self.release_bytes(handle.size, cat);
                    return Err(e);
                }
                let ptr = buf.as_ptr();
                *state = Residency::Loaded(buf);
                Ok(PinGuard {
                    handle: Arc::clone(handle),
                    ptr,
                    len: handle.size,
                })
            }
        }
    }

    /// A non-paged reservation: memory the caller allocates itself (e.g. a
    /// hash table's entry array) but that must count against the limit and
    /// may push pages out (Cooperative Memory Management's behaviour).
    pub fn reserve(&self, size: usize) -> Result<MemoryReservation> {
        self.reserve_bytes(size, MemCat::NonPaged, false)?;
        Ok(MemoryReservation {
            mgr: self.self_arc(),
            size,
        })
    }
}

impl Drop for BufferManager {
    fn drop(&mut self) {
        // Stop the I/O workers before the manager's fields go away. Jobs
        // still queued become no-ops (their weak manager reference no
        // longer upgrades), and the blocks they hold clean up on drop.
        if let Some(sched) = &self.io_sched {
            sched.shutdown_and_join();
        }
    }
}

/// A non-paged memory reservation; dropping releases the bytes. Supports
/// resizing for growable structures.
#[derive(Debug)]
pub struct MemoryReservation {
    mgr: Arc<BufferManager>,
    size: usize,
}

impl MemoryReservation {
    /// Currently reserved bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Grow or shrink the reservation. Growing may evict pages and can fail
    /// with [`Error::OutOfMemory`]; on failure the reservation is unchanged.
    pub fn resize(&mut self, new_size: usize) -> Result<()> {
        if new_size > self.size {
            self.mgr
                .reserve_bytes(new_size - self.size, MemCat::NonPaged, false)?;
        } else {
            self.mgr
                .release_bytes(self.size - new_size, MemCat::NonPaged);
        }
        self.size = new_size;
        Ok(())
    }

    /// Move `bytes` out of this reservation into a new one. This is a local
    /// transfer — global accounting is untouched, so it cannot fail for lack
    /// of memory and cannot race other reservations. Returns `None` when the
    /// reservation holds fewer than `bytes`.
    ///
    /// This is how an admission grant is *spent*: the query service reserves
    /// a query's footprint up front, and the operator carves its unspillable
    /// allocations out of the grant instead of charging the manager twice.
    pub fn split(&mut self, bytes: usize) -> Option<MemoryReservation> {
        if bytes > self.size {
            return None;
        }
        self.size -= bytes;
        Some(MemoryReservation {
            mgr: Arc::clone(&self.mgr),
            size: bytes,
        })
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.mgr.release_bytes(self.size, MemCat::NonPaged);
    }
}

/// A shareable admission grant over a [`MemoryReservation`].
///
/// Implements [`rexa_exec::MemoryGrant`], so an operator running with an
/// [`ExecContext`](rexa_exec::ExecContext) that carries the grant spends it
/// as it materialises the memory the footprint estimate promised, instead of
/// charging the manager twice (once for the reservation, once for the
/// allocation).
///
/// `spend` is the per-fragment hot path of a many-worker aggregation, and
/// each call used to lock the reservation and walk the manager's global
/// `Accounting` mutex. Spends are now *batched*: the slow path releases a
/// whole [`SPEND_BATCH`] chunk from the reservation in one accounting
/// transaction and parks the surplus in an atomic `prepaid` credit, so the
/// common spend is a single CAS that touches neither lock.
pub struct ReservationGrant {
    inner: Mutex<MemoryReservation>,
    /// Bytes already released to the global accounting but not yet consumed
    /// by `spend` calls. Invariant: a grant's promised bytes are
    /// `inner.size() + prepaid`; prepaid bytes need no release on drop
    /// because the accounting already saw them go.
    prepaid: AtomicUsize,
}

/// Granularity of batched grant spends: one accounting transaction buys this
/// many bytes of lock-free spending headroom.
const SPEND_BATCH: usize = 256 << 10;

impl ReservationGrant {
    /// Wrap a reservation for sharing across the query's worker threads.
    pub fn new(reservation: MemoryReservation) -> Self {
        ReservationGrant {
            inner: Mutex::new(reservation),
            prepaid: AtomicUsize::new(0),
        }
    }

    /// Bytes not yet carved out of the grant (including batched spend
    /// credit that has not been consumed yet).
    pub fn remaining(&self) -> usize {
        self.inner.lock().size() + self.prepaid.load(Ordering::Relaxed)
    }

    /// CAS-subtract up to `want` bytes from the prepaid credit; returns how
    /// many were actually taken.
    fn take_prepaid(&self, want: usize) -> usize {
        let mut cur = self.prepaid.load(Ordering::Relaxed);
        loop {
            let take = want.min(cur);
            if take == 0 {
                return 0;
            }
            match self.prepaid.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }
}

impl rexa_exec::MemoryGrant for ReservationGrant {
    fn take(&self, bytes: usize) -> Option<Box<dyn std::any::Any + Send + Sync>> {
        let mut r = self.inner.lock();
        if r.size() < bytes {
            // The reservation alone cannot cover the carve, but batched
            // spend credit might. Reclaiming it means re-reserving from the
            // accounting (the credit was already released), which can fail
            // under pressure — on failure the credit goes back untouched.
            let deficit = bytes - r.size();
            let reclaim = self.take_prepaid(deficit);
            let grown = r.size() + reclaim;
            if reclaim < deficit || r.resize(grown).is_err() {
                self.prepaid.fetch_add(reclaim, Ordering::Relaxed);
                return None;
            }
        }
        r.split(bytes)
            .map(|res| Box::new(res) as Box<dyn std::any::Any + Send + Sync>)
    }

    fn spend(&self, bytes: usize) -> usize {
        // Fast path: consume prepaid credit without touching any lock.
        let mut cur = self.prepaid.load(Ordering::Relaxed);
        while cur >= bytes {
            match self.prepaid.compare_exchange_weak(
                cur,
                cur - bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return bytes,
                Err(now) => cur = now,
            }
        }
        // Slow path: drain what credit there is, release the rest from the
        // reservation, and prepay a batch so the next spends stay lock-free.
        let from_prepaid = self.take_prepaid(bytes);
        let mut r = self.inner.lock();
        let need = bytes - from_prepaid;
        let direct = need.min(r.size());
        let batch = SPEND_BATCH.min(r.size() - direct);
        let shrunk = r.size() - direct - batch;
        // Shrinking cannot fail.
        let _ = r.resize(shrunk);
        if batch > 0 {
            self.prepaid.fetch_add(batch, Ordering::Relaxed);
        }
        from_prepaid + direct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexa_storage::scratch_dir;

    const PAGE: usize = 1024;

    fn mgr_with(limit_pages: usize, policy: EvictionPolicy) -> Arc<BufferManager> {
        BufferManager::new(
            BufferManagerConfig::with_limit(limit_pages * PAGE)
                .page_size(PAGE)
                .policy(policy)
                .temp_dir(scratch_dir("mgr").unwrap()),
        )
        .unwrap()
    }

    fn fill(pin: &PinGuard, byte: u8) {
        pin.write_at(0, &vec![byte; pin.len()]);
    }

    fn check(pin: &PinGuard, byte: u8) {
        let mut buf = vec![0u8; pin.len()];
        pin.read_at(0, &mut buf);
        assert!(buf.iter().all(|&b| b == byte), "page content mismatch");
    }

    #[test]
    fn allocate_within_limit() {
        let mgr = mgr_with(4, EvictionPolicy::Mixed);
        let (_h1, p1) = mgr.allocate_page().unwrap();
        let (_h2, p2) = mgr.allocate_page().unwrap();
        fill(&p1, 0xAA);
        fill(&p2, 0xBB);
        assert_eq!(mgr.memory_used(), 2 * PAGE);
        assert_eq!(mgr.stats().temporary_resident, 2 * PAGE);
        check(&p1, 0xAA);
        check(&p2, 0xBB);
    }

    #[test]
    fn pinned_pages_cannot_be_evicted_oom() {
        let mgr = mgr_with(2, EvictionPolicy::Mixed);
        let (_h1, _p1) = mgr.allocate_page().unwrap();
        let (_h2, _p2) = mgr.allocate_page().unwrap();
        // Both pages pinned: a third allocation must fail.
        let err = mgr.allocate_page().unwrap_err();
        assert!(err.is_oom(), "expected OOM, got {err}");
    }

    #[test]
    fn unpinned_temp_page_spills_and_reloads() {
        let mgr = mgr_with(2, EvictionPolicy::Mixed);
        let (h1, p1) = mgr.allocate_page().unwrap();
        fill(&p1, 0x11);
        drop(p1); // unpin -> evictable
        let (_h2, _p2) = mgr.allocate_page().unwrap();
        let (_h3, _p3) = mgr.allocate_page().unwrap(); // forces eviction of h1
        assert!(!h1.is_loaded(), "h1 should have been spilled");
        let stats = mgr.stats();
        assert_eq!(stats.evictions_temporary, 1);
        assert_eq!(stats.temp_bytes_written, PAGE as u64);
        assert_eq!(stats.temp_bytes_on_disk, PAGE as u64);

        drop(_p2); // make room (h2 becomes the eviction candidate)
        let p1b = mgr.pin(&h1).unwrap();
        check(&p1b, 0x11);
        let stats = mgr.stats();
        assert_eq!(stats.temp_bytes_read, PAGE as u64);
        // h1's slot was freed on load; h2 was evicted to make room.
        assert_eq!(stats.evictions_temporary, 2);
        assert_eq!(stats.temp_bytes_on_disk, PAGE as u64);
    }

    #[test]
    fn eviction_reuses_buffer_for_same_size_request() {
        let mgr = mgr_with(1, EvictionPolicy::Mixed);
        let (_h1, p1) = mgr.allocate_page().unwrap();
        drop(p1);
        let (_h2, _p2) = mgr.allocate_page().unwrap();
        assert_eq!(mgr.stats().buffer_reuses, 1);
        assert_eq!(mgr.memory_used(), PAGE);
    }

    #[test]
    fn variable_size_allocation_spills_to_own_file() {
        let mgr = mgr_with(8, EvictionPolicy::Mixed);
        let (hv, pv) = mgr.allocate_variable(3 * PAGE).unwrap();
        fill(&pv, 0x42);
        drop(pv);
        // Fill memory with pages to force the variable buffer out.
        let mut pins = Vec::new();
        for _ in 0..8 {
            pins.push(mgr.allocate_page().unwrap());
        }
        assert!(!hv.is_loaded());
        assert_eq!(mgr.stats().temp_bytes_written, 3 * PAGE as u64);
        pins.truncate(4);
        let pv2 = mgr.pin(&hv).unwrap();
        check(&pv2, 0x42);
    }

    #[test]
    fn destroy_loaded_releases_memory() {
        let mgr = mgr_with(4, EvictionPolicy::Mixed);
        let (h, p) = mgr.allocate_page().unwrap();
        drop(p);
        drop(h);
        assert_eq!(mgr.memory_used(), 0);
        assert_eq!(mgr.stats().temporary_resident, 0);
    }

    #[test]
    fn destroy_spilled_frees_disk() {
        let mgr = mgr_with(1, EvictionPolicy::Mixed);
        let (h1, p1) = mgr.allocate_page().unwrap();
        drop(p1);
        let (_h2, _p2) = mgr.allocate_page().unwrap(); // spill h1
        assert_eq!(mgr.stats().temp_bytes_on_disk, PAGE as u64);
        drop(h1); // destroy while spilled
        assert_eq!(mgr.stats().temp_bytes_on_disk, 0);
    }

    #[test]
    fn nonpaged_reservation_accounts_and_releases() {
        let mgr = mgr_with(4, EvictionPolicy::Mixed);
        let r = mgr.reserve(3 * PAGE).unwrap();
        assert_eq!(mgr.memory_used(), 3 * PAGE);
        assert_eq!(mgr.stats().non_paged, 3 * PAGE);
        // Only one page left; a second page allocation is fine,
        // a third must fail (nothing evictable).
        let (_h, _p) = mgr.allocate_page().unwrap();
        assert!(mgr.allocate_page().unwrap_err().is_oom());
        drop(r);
        assert_eq!(mgr.memory_used(), PAGE);
        assert_eq!(mgr.stats().non_paged, 0);
    }

    #[test]
    fn nonpaged_reservation_evicts_pages() {
        let mgr = mgr_with(2, EvictionPolicy::Mixed);
        let (h, p) = mgr.allocate_page().unwrap();
        fill(&p, 0x77);
        drop(p);
        // Reserving 2 pages' worth evicts the unpinned page.
        let _r = mgr.reserve(2 * PAGE).unwrap();
        assert!(!h.is_loaded());
        {
            // Pinning it back now fails: limit fully reserved.
            assert!(mgr.pin(&h).unwrap_err().is_oom());
        };
    }

    #[test]
    fn reservation_resize() {
        let mgr = mgr_with(4, EvictionPolicy::Mixed);
        let mut r = mgr.reserve(PAGE).unwrap();
        r.resize(3 * PAGE).unwrap();
        assert_eq!(mgr.memory_used(), 3 * PAGE);
        r.resize(PAGE).unwrap();
        assert_eq!(mgr.memory_used(), PAGE);
        assert!(r.resize(100 * PAGE).is_err());
        assert_eq!(r.size(), PAGE, "failed resize leaves size unchanged");
        assert_eq!(mgr.memory_used(), PAGE);
    }

    #[test]
    fn oversized_request_errors_after_full_eviction() {
        let mgr = mgr_with(2, EvictionPolicy::Mixed);
        let (_h, p) = mgr.allocate_page().unwrap();
        drop(p);
        let err = mgr.reserve(10 * PAGE).unwrap_err();
        assert!(err.is_oom());
        // The unpinned page was evicted in the attempt; memory accounting
        // must still be consistent.
        assert!(mgr.memory_used() <= PAGE);
    }

    #[test]
    fn repin_prevents_eviction() {
        let mgr = mgr_with(2, EvictionPolicy::Mixed);
        let (h1, p1) = mgr.allocate_page().unwrap();
        fill(&p1, 0x01);
        drop(p1);
        let p1 = mgr.pin(&h1).unwrap(); // re-pin: queued entry now stale
        let (_h2, _p2) = mgr.allocate_page().unwrap();
        // Third allocation: only candidate is pinned -> OOM.
        assert!(mgr.allocate_page().unwrap_err().is_oom());
        check(&p1, 0x01);
        assert!(h1.is_loaded());
    }

    #[test]
    fn set_memory_limit_takes_effect_on_next_reserve() {
        let mgr = mgr_with(2, EvictionPolicy::Mixed);
        let (_h1, p1) = mgr.allocate_page().unwrap();
        drop(p1);
        mgr.set_memory_limit(4 * PAGE);
        let (_h2, _p2) = mgr.allocate_page().unwrap();
        let (_h3, _p3) = mgr.allocate_page().unwrap();
        assert_eq!(mgr.stats().evictions_temporary, 0, "limit was raised");
    }

    #[test]
    fn concurrent_alloc_pin_unpin_stress() {
        let mgr = mgr_with(8, EvictionPolicy::Mixed);
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let mgr = Arc::clone(&mgr);
                s.spawn(move || {
                    let mut handles = Vec::new();
                    for i in 0..40u8 {
                        let (h, p) = mgr.allocate_page().unwrap();
                        fill(&p, t.wrapping_mul(40).wrapping_add(i));
                        drop(p);
                        handles.push((h, t.wrapping_mul(40).wrapping_add(i)));
                        // Occasionally re-pin an old page and verify.
                        if i % 5 == 4 {
                            let (h, b) = &handles[handles.len() / 2];
                            let p = mgr.pin(h).unwrap();
                            check(&p, *b);
                        }
                        // Drop some handles to exercise destroy paths.
                        if handles.len() > 16 {
                            handles.drain(0..4);
                        }
                    }
                    // Final verification pass.
                    for (h, b) in &handles {
                        let p = mgr.pin(h).unwrap();
                        check(&p, *b);
                    }
                });
            }
        });
        // After everything is dropped, all memory is released.
        assert_eq!(mgr.memory_used(), 0);
        assert_eq!(mgr.stats().temp_bytes_on_disk, 0);
    }

    #[test]
    fn usage_never_exceeds_limit_under_stress() {
        let mgr = mgr_with(4, EvictionPolicy::Mixed);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mgr = Arc::clone(&mgr);
                s.spawn(move || {
                    for _ in 0..100 {
                        if let Ok((_h, p)) = mgr.allocate_page() {
                            assert!(mgr.memory_used() <= mgr.memory_limit());
                            drop(p);
                        }
                    }
                });
            }
        });
        assert!(mgr.memory_used() <= mgr.memory_limit());
    }

    #[test]
    fn temporary_first_policy_protects_persistent() {
        use rexa_storage::DatabaseFile;
        let dir = scratch_dir("policy").unwrap();
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(4 * PAGE)
                .page_size(PAGE)
                .policy(EvictionPolicy::TemporaryFirst)
                .temp_dir(dir.join("tmp")),
        )
        .unwrap();
        let db = Arc::new(DatabaseFile::create(&dir.join("p.db"), PAGE).unwrap());
        let id = db.append_block(&vec![0xEE; PAGE]).unwrap();
        let ph = mgr.register_persistent(&db, id);
        drop(mgr.pin(&ph).unwrap()); // cached, unpinned

        let (th, tp) = mgr.allocate_page().unwrap();
        drop(tp); // temp page, unpinned

        // Two more allocations force one eviction; the temp page must go
        // first even though the persistent page is older.
        let (_h2, _p2) = mgr.allocate_page().unwrap();
        let (_h3, _p3) = mgr.allocate_page().unwrap();
        let (_h4, _p4) = mgr.allocate_page().unwrap();
        assert!(!th.is_loaded(), "temporary should be evicted first");
        assert!(ph.is_loaded(), "persistent should stay");
    }

    #[test]
    fn persistent_first_policy_protects_temporary() {
        use rexa_storage::DatabaseFile;
        let dir = scratch_dir("policy2").unwrap();
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(4 * PAGE)
                .page_size(PAGE)
                .policy(EvictionPolicy::PersistentFirst)
                .temp_dir(dir.join("tmp")),
        )
        .unwrap();
        let db = Arc::new(DatabaseFile::create(&dir.join("p.db"), PAGE).unwrap());
        let id = db.append_block(&vec![0xEE; PAGE]).unwrap();
        let ph = mgr.register_persistent(&db, id);
        let (th, tp) = mgr.allocate_page().unwrap();
        drop(tp);
        drop(mgr.pin(&ph).unwrap());

        let (_h2, _p2) = mgr.allocate_page().unwrap();
        let (_h3, _p3) = mgr.allocate_page().unwrap();
        let (_h4, _p4) = mgr.allocate_page().unwrap();
        assert!(!ph.is_loaded(), "persistent should be evicted first");
        assert!(th.is_loaded(), "temporary should stay");
        // No temp I/O happened.
        assert_eq!(mgr.stats().temp_bytes_written, 0);
    }

    fn faulty_mgr(
        limit_pages: usize,
        injector: &Arc<rexa_storage::FaultInjector>,
    ) -> Arc<BufferManager> {
        BufferManager::new(
            BufferManagerConfig::with_limit(limit_pages * PAGE)
                .page_size(PAGE)
                .temp_dir(scratch_dir("mgrfault").unwrap())
                .io_backend(Arc::clone(injector) as Arc<dyn IoBackend>)
                .spill_backoff(Duration::from_micros(100)),
        )
        .unwrap()
    }

    #[test]
    fn fatal_spill_error_is_typed_and_block_survives() {
        use rexa_storage::{FaultInjector, FaultKind, FaultRule, IoOp, Schedule};
        let inj = Arc::new(FaultInjector::new(1).rule(FaultRule::on(
            IoOp::Write,
            Schedule::Always,
            FaultKind::Enospc,
        )));
        inj.set_enabled(false);
        let mgr = faulty_mgr(1, &inj);
        let (h1, p1) = mgr.allocate_page().unwrap();
        fill(&p1, 0x5A);
        drop(p1);
        inj.set_enabled(true);
        // The second allocation needs to evict h1, whose spill hits ENOSPC.
        let err = mgr.allocate_page().unwrap_err();
        match &err {
            Error::SpillFailed {
                source,
                bytes,
                retries,
            } => {
                assert_eq!(source.raw_os_error(), Some(28));
                assert_eq!(*bytes, PAGE);
                assert_eq!(*retries, 0, "ENOSPC is fatal, never retried");
            }
            other => panic!("expected SpillFailed, got {other}"),
        }
        let stats = mgr.stats();
        assert_eq!(stats.spill_failures, 1);
        assert_eq!(stats.spill_retries, 0);
        // The victim kept its buffer and its contents; accounting intact.
        assert!(h1.is_loaded());
        assert_eq!(mgr.memory_used(), PAGE);
        assert_eq!(mgr.temp_slots_in_use(), 0, "failed spill leaks no slot");
        // Once the "disk" recovers, the same block spills fine (it was
        // re-enqueued on failure).
        inj.set_enabled(false);
        let (_h2, p2) = mgr.allocate_page().unwrap();
        assert!(!h1.is_loaded(), "h1 evicted after recovery");
        drop(p2);
        check(&mgr.pin(&h1).unwrap(), 0x5A);
    }

    #[test]
    fn transient_spill_error_is_retried_and_succeeds() {
        use rexa_storage::{FaultInjector, FaultKind, FaultRule, IoOp, Schedule};
        // Write op 0 fails transiently; the retry (op 1) goes through.
        let inj = Arc::new(FaultInjector::new(2).rule(FaultRule::on(
            IoOp::Write,
            Schedule::Nth(0),
            FaultKind::Transient,
        )));
        let mgr = faulty_mgr(1, &inj);
        let (h1, p1) = mgr.allocate_page().unwrap();
        fill(&p1, 0x3C);
        drop(p1);
        let (_h2, _p2) = mgr.allocate_page().unwrap(); // evicts h1, with retry
        assert!(!h1.is_loaded());
        let stats = mgr.stats();
        assert_eq!(stats.spill_retries, 1);
        assert_eq!(stats.spill_failures, 0);
        assert_eq!(stats.evictions_temporary, 1);
        drop(_p2);
        check(&mgr.pin(&h1).unwrap(), 0x3C);
    }

    #[test]
    fn transient_errors_past_budget_become_spill_failed() {
        use rexa_storage::{FaultInjector, FaultKind, FaultRule, IoOp, Schedule};
        let inj = Arc::new(FaultInjector::new(3).rule(FaultRule::on(
            IoOp::Write,
            Schedule::Always,
            FaultKind::Transient,
        )));
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(PAGE)
                .page_size(PAGE)
                .temp_dir(scratch_dir("mgrfault").unwrap())
                .io_backend(inj as Arc<dyn IoBackend>)
                .spill_retries(2)
                .spill_backoff(Duration::from_micros(100)),
        )
        .unwrap();
        let (_h1, p1) = mgr.allocate_page().unwrap();
        drop(p1);
        let err = mgr.allocate_page().unwrap_err();
        match err {
            Error::SpillFailed { retries, .. } => assert_eq!(retries, 2),
            other => panic!("expected SpillFailed, got {other}"),
        }
        let stats = mgr.stats();
        assert_eq!(stats.spill_retries, 2);
        assert_eq!(stats.spill_failures, 1);
    }

    fn async_mgr(limit_pages: usize, writers: usize) -> Arc<BufferManager> {
        BufferManager::new(
            BufferManagerConfig::with_limit(limit_pages * PAGE)
                .page_size(PAGE)
                .temp_dir(scratch_dir("mgr_async").unwrap())
                .io_writers(writers),
        )
        .unwrap()
    }

    #[test]
    fn background_spill_preserves_contents_and_accounting() {
        let mgr = async_mgr(2, 2);
        let mut handles = Vec::new();
        for i in 0..8u8 {
            let (h, p) = mgr.allocate_page().unwrap();
            fill(&p, i);
            drop(p);
            handles.push(h);
        }
        mgr.drain_io().unwrap();
        assert!(mgr.memory_used() <= mgr.memory_limit());
        // Everything reloads with its contents intact.
        for (i, h) in handles.iter().enumerate() {
            check(&mgr.pin(h).unwrap(), i as u8);
        }
        drop(handles);
        mgr.drain_io().unwrap();
        assert_eq!(mgr.memory_used(), 0);
        assert_eq!(mgr.stats().temp_bytes_on_disk, 0);
    }

    #[test]
    fn background_spill_failure_is_deferred_and_typed() {
        use rexa_storage::{FaultInjector, FaultKind, FaultRule, IoOp, Schedule};
        let inj = Arc::new(FaultInjector::new(1).rule(FaultRule::on(
            IoOp::Write,
            Schedule::Always,
            FaultKind::Enospc,
        )));
        inj.set_enabled(false);
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(PAGE)
                .page_size(PAGE)
                .temp_dir(scratch_dir("mgr_async_fault").unwrap())
                .io_backend(Arc::clone(&inj) as Arc<dyn IoBackend>)
                .spill_backoff(Duration::from_micros(100))
                .io_writers(1),
        )
        .unwrap();
        let (h1, p1) = mgr.allocate_page().unwrap();
        fill(&p1, 0x5A);
        drop(p1);
        inj.set_enabled(true);
        // The next allocation submits h1 to the writer pool; the write
        // fails in the background, and the waiting reservation surfaces
        // the deferred typed error.
        let err = mgr.allocate_page().unwrap_err();
        match &err {
            Error::SpillFailed { source, bytes, .. } => {
                assert_eq!(source.raw_os_error(), Some(28));
                assert_eq!(*bytes, PAGE);
            }
            other => panic!("expected SpillFailed, got {other}"),
        }
        // Non-poisoning: the victim kept its buffer, accounting is intact,
        // and after the "disk" recovers the same block spills fine.
        assert!(h1.is_loaded());
        assert_eq!(mgr.memory_used(), PAGE);
        assert_eq!(mgr.temp_slots_in_use(), 0);
        inj.set_enabled(false);
        let (_h2, p2) = mgr.allocate_page().unwrap();
        mgr.drain_io().unwrap();
        assert!(!h1.is_loaded(), "h1 evicted after recovery");
        drop(p2);
        check(&mgr.pin(&h1).unwrap(), 0x5A);
    }

    #[test]
    fn prefetch_loads_in_background_and_pin_is_a_hit() {
        let mgr = async_mgr(2, 1);
        let (h1, p1) = mgr.allocate_page().unwrap();
        fill(&p1, 0x7E);
        drop(p1);
        // Force h1 out, then free the memory again.
        let (h2, p2) = mgr.allocate_page().unwrap();
        let (h3, p3) = mgr.allocate_page().unwrap();
        mgr.drain_io().unwrap();
        assert!(!h1.is_loaded());
        drop((p2, p3, h2, h3));
        assert!(mgr.prefetch(&h1), "headroom available: load submitted");
        mgr.drain_io().unwrap();
        assert!(h1.is_loaded(), "prefetch left the block resident");
        let stats = mgr.stats();
        assert_eq!(stats.readahead_hits, 0, "no pin yet");
        assert!(stats.readahead_nanos > 0);
        check(&mgr.pin(&h1).unwrap(), 0x7E);
        let stats = mgr.stats();
        assert_eq!(stats.readahead_hits, 1);
        assert_eq!(stats.readahead_misses, 0);
    }

    #[test]
    fn prefetch_never_evicts_working_memory() {
        let mgr = async_mgr(2, 1);
        let (h1, p1) = mgr.allocate_page().unwrap();
        drop(p1);
        let (_h2, _p2) = mgr.allocate_page().unwrap();
        let (_h3, _p3) = mgr.allocate_page().unwrap();
        mgr.drain_io().unwrap();
        assert!(!h1.is_loaded());
        // Memory is full of pinned pages: the prefetch must refuse rather
        // than evict, and count a miss.
        assert!(!mgr.prefetch(&h1));
        assert_eq!(mgr.stats().readahead_misses, 1);
        assert!(!h1.is_loaded());
    }

    #[test]
    fn persistent_reload_after_eviction() {
        use rexa_storage::DatabaseFile;
        let dir = scratch_dir("preload").unwrap();
        let mgr = BufferManager::new(
            BufferManagerConfig::with_limit(PAGE)
                .page_size(PAGE)
                .temp_dir(dir.join("tmp")),
        )
        .unwrap();
        let db = Arc::new(DatabaseFile::create(&dir.join("p.db"), PAGE).unwrap());
        let id = db.append_block(&vec![0xCD; PAGE]).unwrap();
        let ph = mgr.register_persistent(&db, id);
        {
            let p = mgr.pin(&ph).unwrap();
            check(&p, 0xCD);
        }
        // Force it out.
        let (_h, p2) = mgr.allocate_page().unwrap();
        assert!(!ph.is_loaded());
        drop(p2);
        // And back in.
        let p = mgr.pin(&ph).unwrap();
        check(&p, 0xCD);
        assert_eq!(mgr.stats().evictions_persistent, 1);
    }

    #[test]
    fn grant_spend_batches_accounting_releases() {
        use rexa_exec::MemoryGrant;
        let mgr = mgr_with(4096, EvictionPolicy::Mixed); // 4 MiB
        let grant = ReservationGrant::new(mgr.reserve(1 << 20).unwrap());
        assert_eq!(mgr.stats().non_paged, 1 << 20);
        assert_eq!(grant.remaining(), 1 << 20);
        // The first spend releases a whole batch from the accounting and
        // parks the surplus as credit; follow-up spends within the batch
        // must not move the global gauge at all.
        assert_eq!(grant.spend(4 << 10), 4 << 10);
        let after_first = mgr.stats().non_paged;
        assert_eq!(after_first, (1 << 20) - (4 << 10) - SPEND_BATCH);
        for _ in 0..8 {
            assert_eq!(grant.spend(4 << 10), 4 << 10);
            assert_eq!(mgr.stats().non_paged, after_first);
        }
        // Promised bytes are conserved across the batching.
        assert_eq!(grant.remaining(), (1 << 20) - 9 * (4 << 10));
    }

    #[test]
    fn grant_spend_exhausts_exactly_once() {
        use rexa_exec::MemoryGrant;
        let mgr = mgr_with(4096, EvictionPolicy::Mixed);
        let grant = ReservationGrant::new(mgr.reserve(100 * 1024).unwrap());
        let mut spent = 0usize;
        loop {
            let got = grant.spend(16 << 10);
            spent += got;
            if got < 16 << 10 {
                break;
            }
        }
        assert_eq!(spent, 100 * 1024, "every promised byte spendable once");
        assert_eq!(grant.remaining(), 0);
        assert_eq!(grant.spend(1), 0, "an exhausted grant spends nothing");
        drop(grant);
        assert_eq!(mgr.stats().non_paged, 0, "no bytes leaked or double-freed");
    }

    #[test]
    fn grant_take_reclaims_prepaid_credit() {
        use rexa_exec::MemoryGrant;
        let mgr = mgr_with(4096, EvictionPolicy::Mixed);
        let grant = ReservationGrant::new(mgr.reserve(512 << 10).unwrap());
        // Spend a little: the batch leaves the inner reservation short.
        assert_eq!(grant.spend(8 << 10), 8 << 10);
        // A carve larger than the shrunken reservation must pull the
        // batched credit back in rather than fail.
        let carved = grant.take(400 << 10).expect("credit reclaimable");
        assert_eq!(grant.remaining(), (512 << 10) - (8 << 10) - (400 << 10));
        drop(carved);
        drop(grant);
        assert_eq!(mgr.stats().non_paged, 0);
    }

    #[test]
    fn grant_concurrent_spends_account_exactly() {
        use rexa_exec::MemoryGrant;
        let mgr = mgr_with(8192, EvictionPolicy::Mixed);
        let total = 4 << 20;
        let grant = Arc::new(ReservationGrant::new(mgr.reserve(total).unwrap()));
        let spent: AtomicUsize = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let grant = Arc::clone(&grant);
                let spent = &spent;
                s.spawn(move || loop {
                    let got = grant.spend(3 << 10);
                    spent.fetch_add(got, Ordering::Relaxed);
                    if got == 0 {
                        break;
                    }
                });
            }
        });
        assert_eq!(spent.load(Ordering::Relaxed), total);
        assert_eq!(grant.remaining(), 0);
        drop(grant);
        assert_eq!(mgr.stats().non_paged, 0);
    }
}
