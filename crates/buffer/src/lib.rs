//! `rexa-buffer`: **Unified Memory Management** (paper Section III).
//!
//! One buffer pool for everything. Persistent pages and temporary query
//! intermediates live under a single memory limit, in the same eviction
//! structure, and freed buffers of one kind are reused for the other.
//! There is no statically allocated pool: every buffer is allocated
//! individually and deallocated when evicted (unless immediately reused),
//! so an idle engine consumes (almost) no memory — the in-process
//! requirement the paper derives from DuckDB's deployment model.
//!
//! Three kinds of temporary allocations are supported, mirroring the paper:
//!
//! 1. **non-paged** ([`BufferManager::reserve`]) — unspillable memory of any
//!    size (hash-table entry arrays). Only accounted; reserving may evict
//!    pages of either kind, which is what Cooperative Memory Management does;
//! 2. **paged fixed-size** ([`BufferManager::allocate_page`]) — page-size
//!    buffers, spillable to slots of the shared temp file. The workhorse:
//!    nearly all intermediates live on these;
//! 3. **paged variable-size** ([`BufferManager::allocate_variable`]) — any
//!    size, each spilled to its own temp file. Used sparingly.
//!
//! Eviction pops an LRU queue of unpinned buffers. Evicting a persistent
//! page is free (it is already in the database file); evicting a temporary
//! page first writes it to temp storage. The three policies of the paper's
//! Section VII experiment — [`EvictionPolicy::Mixed`] (DuckDB's default),
//! [`EvictionPolicy::TemporaryFirst`], [`EvictionPolicy::PersistentFirst`] —
//! are all implemented.
//!
//! The crate also provides the paged persistent [`Table`] (serialized
//! column-major chunks on database pages) whose scans populate the pool with
//! persistent pages, so the persistent/temporary interplay of the paper's
//! Figure 4 can be reproduced.

pub mod eviction;
pub mod handle;
mod io_sched;
pub mod manager;
pub mod raw;
pub mod stats;
pub mod table;

pub use eviction::EvictionPolicy;
pub use handle::{BlockHandle, BufferTag, PinGuard};
pub use manager::{BufferManager, BufferManagerConfig, MemoryReservation, ReservationGrant};
pub use stats::BufferStats;
pub use table::{Table, TableBuilder, TableSource};
