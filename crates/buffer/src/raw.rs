//! A raw, cache-line-aligned heap allocation.
//!
//! Buffers are deliberately *not* `Box<[u8]>`: pinned pages are mutated
//! through raw pointers held by multiple `PinGuard`s (the row layout writes
//! tuples, the hash table combines aggregate states in place), so the buffer
//! must never be exposed as a uniquely-borrowed Rust reference while pins
//! exist. `RawBuffer` keeps the allocation behind a `NonNull<u8>` and only
//! materializes slices in controlled, documented places.

use std::alloc::{alloc, dealloc, Layout};
use std::ptr::NonNull;

/// Alignment of every buffer: one OS page (4 KiB). Cache-line alignment
/// (the old value) covers the CPU; page alignment additionally satisfies
/// direct I/O (`O_DIRECT` spill files need block-aligned user buffers) and
/// costs nothing for pool pages, which are page-sized multiples anyway.
pub const BUFFER_ALIGN: usize = 4096;

/// An owned, aligned, *uninitialized* allocation of fixed size. Contents
/// are whatever the allocator hands back; consumers write before they read
/// (the row layout zeroes each row's state region as it scatters).
#[derive(Debug)]
pub struct RawBuffer {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: RawBuffer owns its allocation; synchronization of *contents* is the
// responsibility of the buffer manager's pin protocol.
unsafe impl Send for RawBuffer {}
unsafe impl Sync for RawBuffer {}

impl RawBuffer {
    /// Allocate `len` bytes (uninitialized).
    ///
    /// # Panics
    /// On `len == 0` or allocation failure (treated as unrecoverable: the
    /// buffer manager enforces the memory limit *before* allocating).
    pub fn alloc(len: usize) -> Self {
        assert!(len > 0, "zero-size buffer");
        let layout = Layout::from_size_align(len, BUFFER_ALIGN).expect("bad layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc(layout) };
        let ptr = NonNull::new(ptr).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        RawBuffer { ptr, len }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (buffers have non-zero size).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The base pointer.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// The contents as a shared slice.
    ///
    /// # Safety
    /// No thread may be concurrently writing to the buffer.
    pub unsafe fn slice(&self) -> &[u8] {
        std::slice::from_raw_parts(self.ptr.as_ptr(), self.len)
    }

    /// The contents as an exclusive slice.
    ///
    /// # Safety
    /// No other reference or pointer into the buffer may be used for the
    /// lifetime of the returned slice.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [u8] {
        std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len)
    }
}

impl Drop for RawBuffer {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, BUFFER_ALIGN).unwrap();
        // SAFETY: ptr was allocated with exactly this layout.
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned() {
        let b = RawBuffer::alloc(4096);
        assert_eq!(b.len(), 4096);
        assert_eq!(b.as_ptr() as usize % BUFFER_ALIGN, 0);
    }

    #[test]
    fn writes_are_visible() {
        let b = RawBuffer::alloc(128);
        unsafe {
            b.slice_mut()[7] = 42;
            assert_eq!(b.slice()[7], 42);
        }
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_size_panics() {
        RawBuffer::alloc(0);
    }
}
