//! Block handles and pins.
//!
//! A [`BlockHandle`] is the identity of one buffer-managed page; it outlives
//! evictions and reloads. A [`PinGuard`] keeps the page resident and carries
//! the page's current base address — the address an eviction/reload cycle is
//! allowed to change, which is exactly what the spillable page layout's
//! pointer recomputation (paper Section IV) compensates for.

use crate::manager::BufferManager;
use crate::raw::RawBuffer;
use parking_lot::Mutex;
use rexa_storage::{BlockId, DatabaseFile, SlotId, VarId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// What kind of data a block holds — determines spill behaviour and which
/// eviction queue it joins under the split policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferTag {
    /// A page of the database file. Eviction is free: drop the buffer.
    Persistent,
    /// A page-size temporary buffer, spillable to a slot of the shared temp
    /// file.
    TempFixed,
    /// A variable-size temporary buffer, spillable to its own temp file.
    TempVariable,
}

impl BufferTag {
    /// True for the two temporary kinds.
    pub fn is_temporary(self) -> bool {
        !matches!(self, BufferTag::Persistent)
    }
}

/// Where a non-resident block's data lives.
#[derive(Debug)]
pub(crate) enum DiskLocation {
    /// In the database file at this block id (persistent pages only).
    Database(BlockId),
    /// In a slot of the shared fixed-size temp file.
    TempSlot(SlotId),
    /// In its own variable-size temp file.
    TempVar(VarId),
}

/// The residency state of a block.
#[derive(Debug)]
pub(crate) enum Residency {
    /// Resident in memory.
    Loaded(RawBuffer),
    /// Only on disk.
    OnDisk(DiskLocation),
}

/// A buffer-managed page. Obtained from [`BufferManager::allocate_page`],
/// [`BufferManager::allocate_variable`], or
/// [`BufferManager::register_persistent`]; dropped handles release their
/// memory and disk space ("eagerly destroy temporary pages as soon as they
/// are no longer needed").
#[derive(Debug)]
pub struct BlockHandle {
    pub(crate) tag: BufferTag,
    pub(crate) size: usize,
    /// For persistent blocks: the database file to reload from and the page
    /// id within it (a persistent block's disk location never changes).
    pub(crate) db: Option<(Arc<DatabaseFile>, BlockId)>,
    pub(crate) state: Mutex<Residency>,
    /// Number of outstanding pins. A pinned block is never evicted.
    pub(crate) pins: AtomicUsize,
    /// Bumped on every pin and every eviction-queue insert; queue entries
    /// with a stale sequence number are skipped (DuckDB's scheme for a
    /// lock-free LRU approximation).
    pub(crate) seq: AtomicU64,
    /// Set when a background read-ahead loaded this block; consumed by the
    /// next pin to classify it as a read-ahead hit (still loaded) or miss
    /// (evicted again before use).
    pub(crate) prefetched: AtomicBool,
    pub(crate) mgr: Weak<BufferManager>,
}

impl BlockHandle {
    /// The kind of this block.
    pub fn tag(&self) -> BufferTag {
        self.tag
    }

    /// The buffer size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True if the block is currently resident in memory.
    pub fn is_loaded(&self) -> bool {
        matches!(*self.state.lock(), Residency::Loaded(_))
    }

    /// Number of outstanding pins (for assertions and tests).
    pub fn pin_count(&self) -> usize {
        self.pins.load(Ordering::Relaxed)
    }

    /// The database page id, for persistent blocks.
    pub fn persistent_id(&self) -> Option<BlockId> {
        self.db.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for BlockHandle {
    fn drop(&mut self) {
        debug_assert_eq!(
            self.pins.load(Ordering::Relaxed),
            0,
            "block dropped while pinned"
        );
        let Some(mgr) = self.mgr.upgrade() else {
            return;
        };
        // Exclusive access: this is the last reference.
        let state = self.state.get_mut();
        match state {
            Residency::Loaded(_) => mgr.on_destroy_loaded(self.tag, self.size),
            Residency::OnDisk(loc) => mgr.on_destroy_spilled(loc, self.size),
        }
    }
}

/// A pin on a resident block: keeps it in memory and exposes its current
/// base address. Dropping the guard unpins; when the last pin goes the block
/// joins the eviction queue.
#[derive(Debug)]
pub struct PinGuard {
    pub(crate) handle: Arc<BlockHandle>,
    pub(crate) ptr: *mut u8,
    pub(crate) len: usize,
}

// SAFETY: the pointer targets a buffer kept alive by `handle`; cross-thread
// content synchronization is the pin holder's contract (see `slice_mut`).
unsafe impl Send for PinGuard {}
unsafe impl Sync for PinGuard {}

impl PinGuard {
    /// The handle this pin belongs to.
    pub fn handle(&self) -> &Arc<BlockHandle> {
        &self.handle
    }

    /// The page's current base address. Stable while this pin lives; may
    /// differ across unpin/re-pin cycles (that is what pointer recomputation
    /// detects).
    pub fn base_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Buffer size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false; buffers have non-zero size.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The page contents as a shared slice.
    ///
    /// # Safety
    /// No thread may be concurrently writing to the page.
    pub unsafe fn slice(&self) -> &[u8] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }

    /// The page contents as an exclusive slice.
    ///
    /// # Safety
    /// The caller must be the only accessor of the page for the returned
    /// slice's lifetime. The aggregation upholds this structurally: during
    /// phase one each page belongs to exactly one thread-local collection;
    /// during phase two each partition belongs to exactly one task.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [u8] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }

    /// Copy `data` into the page at `offset` (bounds-checked).
    pub fn write_at(&self, offset: usize, data: &[u8]) {
        assert!(offset + data.len() <= self.len, "write out of bounds");
        // SAFETY: in-bounds; concurrent access discipline per `slice_mut`.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(offset), data.len());
        }
    }

    /// Copy `out.len()` bytes from the page at `offset` (bounds-checked).
    pub fn read_at(&self, offset: usize, out: &mut [u8]) {
        assert!(offset + out.len() <= self.len, "read out of bounds");
        // SAFETY: in-bounds.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), out.as_mut_ptr(), out.len());
        }
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        if self.handle.pins.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last pin gone: the block becomes evictable.
            if let Some(mgr) = self.handle.mgr.upgrade() {
                mgr.queue_for_eviction(&self.handle);
            }
        }
    }
}
