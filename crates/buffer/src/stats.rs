//! Counters and gauges exposed by the buffer manager — the observability
//! needed to reproduce the paper's Figure 4 (resident persistent/temporary
//! bytes and temp-file size over time) and the Section VII allocation
//! micro-benchmark.

/// A point-in-time snapshot of the buffer manager's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Bytes currently counted against the memory limit
    /// (resident pages + non-paged reservations).
    pub memory_used: usize,
    /// The configured memory limit in bytes.
    pub memory_limit: usize,
    /// Bytes of resident persistent pages.
    pub persistent_resident: usize,
    /// Bytes of resident temporary pages (fixed and variable).
    pub temporary_resident: usize,
    /// Bytes of non-paged reservations.
    pub non_paged: usize,
    /// Bytes of spilled temporary data currently on disk.
    pub temp_bytes_on_disk: u64,
    /// Cumulative bytes written to temp storage.
    pub temp_bytes_written: u64,
    /// Cumulative bytes read back from temp storage.
    pub temp_bytes_read: u64,
    /// Number of persistent-page evictions (free: no write-back).
    pub evictions_persistent: u64,
    /// Number of temporary-page evictions (each wrote to temp storage).
    pub evictions_temporary: u64,
    /// Number of times an evicted buffer was handed directly to the
    /// allocation that triggered the eviction ("the buffer is reused").
    pub buffer_reuses: u64,
    /// Number of page/variable allocations served.
    pub allocations: u64,
    /// Number of transient spill-write errors that were retried with
    /// backoff (each retry counts once; a spill that eventually succeeds
    /// still leaves its retries here).
    pub spill_retries: u64,
    /// Number of spills abandoned after exhausting retries (each one
    /// surfaced as an [`Error::SpillFailed`](rexa_exec::Error::SpillFailed)
    /// to the query that needed the memory).
    pub spill_failures: u64,
    /// Pins that found their block already resident thanks to a background
    /// read-ahead load (the pin that would have been a synchronous read).
    pub readahead_hits: u64,
    /// Read-ahead attempts that did not help: no memory headroom, the
    /// background read failed, or the page was evicted again before use.
    pub readahead_misses: u64,
    /// Cumulative nanoseconds the background writers spent in spill writes
    /// — I/O that overlapped with computation instead of stalling it.
    pub bg_write_nanos: u64,
    /// Cumulative nanoseconds the background readers spent in read-ahead
    /// loads.
    pub readahead_nanos: u64,
}

impl BufferStats {
    /// Difference of the cumulative counters of two snapshots
    /// (`self` after, `earlier` before); gauges are taken from `self`.
    pub fn delta_since(&self, earlier: &BufferStats) -> BufferStats {
        BufferStats {
            memory_used: self.memory_used,
            memory_limit: self.memory_limit,
            persistent_resident: self.persistent_resident,
            temporary_resident: self.temporary_resident,
            non_paged: self.non_paged,
            temp_bytes_on_disk: self.temp_bytes_on_disk,
            temp_bytes_written: self.temp_bytes_written - earlier.temp_bytes_written,
            temp_bytes_read: self.temp_bytes_read - earlier.temp_bytes_read,
            evictions_persistent: self.evictions_persistent - earlier.evictions_persistent,
            evictions_temporary: self.evictions_temporary - earlier.evictions_temporary,
            buffer_reuses: self.buffer_reuses - earlier.buffer_reuses,
            allocations: self.allocations - earlier.allocations,
            spill_retries: self.spill_retries - earlier.spill_retries,
            spill_failures: self.spill_failures - earlier.spill_failures,
            readahead_hits: self.readahead_hits - earlier.readahead_hits,
            readahead_misses: self.readahead_misses - earlier.readahead_misses,
            bg_write_nanos: self.bg_write_nanos - earlier.bg_write_nanos,
            readahead_nanos: self.readahead_nanos - earlier.readahead_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let before = BufferStats {
            temp_bytes_written: 100,
            evictions_temporary: 3,
            spill_retries: 2,
            ..Default::default()
        };
        let after = BufferStats {
            memory_used: 77,
            temp_bytes_written: 160,
            evictions_temporary: 5,
            spill_retries: 6,
            spill_failures: 1,
            ..Default::default()
        };
        let d = after.delta_since(&before);
        assert_eq!(d.temp_bytes_written, 60);
        assert_eq!(d.evictions_temporary, 2);
        assert_eq!(d.memory_used, 77);
        assert_eq!(d.spill_retries, 4);
        assert_eq!(d.spill_failures, 1);
    }
}
