//! The grouping benchmark (paper Section VI, Table I).
//!
//! Thirteen `GROUP BY` column combinations over `lineitem`, ordered by
//! increasing memory pressure, each in a *thin* variant (select only the
//! group columns) and a *wide* variant (additionally `ANY_VALUE` over every
//! other column). The paper's benchmark query appends `OFFSET N-1` so the
//! engine must materialize every group while the client transfers one row;
//! the harness reproduces this by streaming all output and keeping only the
//! final row.
//!
//! The body of Table I is not part of the provided paper text; the
//! combinations here are reconstructed from the prose constraints
//! (grouping 1 = returnflag+linestatus, grouping 4 = orderkey only,
//! grouping 13 = suppkey+partkey+orderkey; see DESIGN.md).

use crate::lineitem::LineitemColumn;

/// One benchmark grouping: an id (1-based, as in the paper) and the group-by
/// columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grouping {
    /// 1-based id, matching the paper's tables.
    pub id: usize,
    /// The GROUP BY columns.
    pub columns: &'static [LineitemColumn],
}

use LineitemColumn as C;

/// The thirteen groupings (reconstructed Table I).
pub const GROUPINGS: [Grouping; 13] = [
    Grouping {
        id: 1,
        columns: &[C::ReturnFlag, C::LineStatus],
    },
    Grouping {
        id: 2,
        columns: &[C::ReturnFlag, C::LineStatus, C::ShipMode],
    },
    Grouping {
        id: 3,
        columns: &[C::ShipDate],
    },
    Grouping {
        id: 4,
        columns: &[C::OrderKey],
    },
    Grouping {
        id: 5,
        columns: &[C::ShipDate, C::ShipMode],
    },
    Grouping {
        id: 6,
        columns: &[C::ShipDate, C::SuppKey],
    },
    Grouping {
        id: 7,
        columns: &[C::PartKey],
    },
    Grouping {
        id: 8,
        columns: &[C::SuppKey, C::PartKey],
    },
    Grouping {
        id: 9,
        columns: &[C::ShipDate, C::PartKey],
    },
    Grouping {
        id: 10,
        columns: &[C::OrderKey, C::LineNumber],
    },
    Grouping {
        id: 11,
        columns: &[C::OrderKey, C::SuppKey],
    },
    Grouping {
        id: 12,
        columns: &[C::PartKey, C::OrderKey],
    },
    Grouping {
        id: 13,
        columns: &[C::SuppKey, C::PartKey, C::OrderKey],
    },
];

impl Grouping {
    /// The grouping with the given 1-based id.
    pub fn by_id(id: usize) -> Option<Grouping> {
        GROUPINGS.get(id.checked_sub(1)?).copied()
    }

    /// Input column indices of the group-by columns.
    pub fn group_col_indices(&self) -> Vec<usize> {
        self.columns.iter().map(|c| c.index()).collect()
    }

    /// Input column indices of all *other* columns — the ones the wide
    /// variant selects with `ANY_VALUE`.
    pub fn other_col_indices(&self) -> Vec<usize> {
        LineitemColumn::ALL
            .iter()
            .filter(|c| !self.columns.contains(c))
            .map(|c| c.index())
            .collect()
    }

    /// A SQL-ish description, e.g. `GROUP BY l_returnflag, l_linestatus`.
    pub fn describe(&self) -> String {
        let cols: Vec<&str> = self.columns.iter().map(|c| c.name()).collect();
        format!("GROUP BY {}", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_groupings_with_paper_anchors() {
        assert_eq!(GROUPINGS.len(), 13);
        assert_eq!(GROUPINGS[0].columns, &[C::ReturnFlag, C::LineStatus]);
        assert_eq!(GROUPINGS[3].columns, &[C::OrderKey]);
        assert_eq!(
            GROUPINGS[12].columns,
            &[C::SuppKey, C::PartKey, C::OrderKey]
        );
        for (i, g) in GROUPINGS.iter().enumerate() {
            assert_eq!(g.id, i + 1);
        }
    }

    #[test]
    fn by_id_bounds() {
        assert_eq!(Grouping::by_id(1).unwrap().id, 1);
        assert_eq!(Grouping::by_id(13).unwrap().id, 13);
        assert!(Grouping::by_id(0).is_none());
        assert!(Grouping::by_id(14).is_none());
    }

    #[test]
    fn thin_and_wide_cover_all_columns() {
        for g in &GROUPINGS {
            let groups = g.group_col_indices();
            let others = g.other_col_indices();
            assert_eq!(groups.len() + others.len(), 16, "{}", g.describe());
            let mut all: Vec<usize> = groups.iter().chain(&others).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(
            Grouping::by_id(1).unwrap().describe(),
            "GROUP BY l_returnflag, l_linestatus"
        );
    }
}
