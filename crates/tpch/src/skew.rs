//! Skewed key distributions (paper Section V, "Data Distributions").
//!
//! The paper argues that partitioning *after* thread-local pre-aggregation
//! makes the algorithm robust to skew: heavy hitters are reduced inside each
//! thread's small hash table before any data is exchanged, unlike
//! exchange-based parallelism which routes raw rows by key and lets one
//! partition balloon. These generators produce the inputs for that claim's
//! tests and benchmarks: Zipf-distributed keys (a few very heavy hitters, a
//! long tail) and "clustered" keys (the paper's *interesting orderings*:
//! many equal group keys appearing in succession, as in real sorted data).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rexa_exec::{ChunkCollection, DataChunk, LogicalType, Vector, VECTOR_SIZE};

/// A Zipf(s) sampler over `{0, .., n-1}` using the rejection-inversion-free
/// cumulative table method (exact, O(log n) per sample).
pub struct Zipf {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    /// A sampler over `n` keys with exponent `s` (s = 0 is uniform; s ≈ 1 is
    /// classic Zipf; larger s is more skewed).
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw one key.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// `rows` rows of `(key int64, value int64)` with Zipf(s)-distributed keys
/// over a domain of `keys`.
pub fn zipf_table(rows: usize, keys: usize, s: f64, seed: u64) -> ChunkCollection {
    let mut z = Zipf::new(keys, s, seed);
    let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
    let mut remaining = rows;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let k: Vec<i64> = (0..n).map(|_| z.sample() as i64).collect();
        let v: Vec<i64> = k.iter().map(|&x| x * 3 + 1).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_i64(k),
            Vector::from_i64(v),
        ]))
        .unwrap();
    }
    coll
}

/// `rows` rows whose keys appear in runs of `run_len` — the paper's
/// "interesting orderings found in real-world data, such as many of the same
/// group keys appearing in succession", which thread-local pre-aggregation
/// exploits (each run collapses into one hash-table hit streak).
pub fn clustered_table(rows: usize, run_len: usize, seed: u64) -> ChunkCollection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
    let mut remaining = rows;
    let mut current_key = 0i64;
    let mut left_in_run = 0usize;
    while remaining > 0 {
        let n = remaining.min(VECTOR_SIZE);
        remaining -= n;
        let mut k = Vec::with_capacity(n);
        for _ in 0..n {
            if left_in_run == 0 {
                current_key = rng.gen_range(0..i64::MAX / 2);
                left_in_run = run_len;
            }
            left_in_run -= 1;
            k.push(current_key);
        }
        let v: Vec<i64> = k.iter().map(|&x| x % 1000).collect();
        coll.push(DataChunk::new(vec![
            Vector::from_i64(k),
            Vector::from_i64(v),
        ]))
        .unwrap();
    }
    coll
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let mut z1 = Zipf::new(1000, 1.0, 7);
        let mut z2 = Zipf::new(1000, 1.0, 7);
        let a: Vec<usize> = (0..1000).map(|_| z1.sample()).collect();
        let b: Vec<usize> = (0..1000).map(|_| z2.sample()).collect();
        assert_eq!(a, b, "deterministic");
        // Key 0 must be the heaviest hitter by a wide margin.
        let zeros = a.iter().filter(|&&k| k == 0).count();
        let ones = a.iter().filter(|&&k| k == 1).count();
        assert!(zeros > 50, "zipf head too light: {zeros}");
        assert!(zeros > ones);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut z = Zipf::new(10, 0.0, 3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample()] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_table_shape() {
        let t = zipf_table(5000, 100, 1.2, 1);
        assert_eq!(t.rows(), 5000);
        assert_eq!(t.types().len(), 2);
        let keys = t.chunks()[0].column(0).i64s();
        assert!(keys.iter().all(|&k| (0..100).contains(&k)));
    }

    #[test]
    fn clustered_runs_have_expected_length() {
        let t = clustered_table(4096, 64, 9);
        let mut runs = Vec::new();
        let mut cur = None;
        let mut len = 0usize;
        for chunk in t.chunks() {
            for &k in chunk.column(0).i64s() {
                if Some(k) == cur {
                    len += 1;
                } else {
                    if cur.is_some() {
                        runs.push(len);
                    }
                    cur = Some(k);
                    len = 1;
                }
            }
        }
        // All complete runs (not the possibly truncated last one) are 64.
        assert!(runs.iter().all(|&r| r == 64), "{runs:?}");
    }
}
