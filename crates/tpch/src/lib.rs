//! `rexa-tpch`: deterministic TPC-H-style data generation and the paper's
//! grouping benchmark (Section VI).
//!
//! * [`lineitem`] — a dbgen-like generator for the 16-column `lineitem`
//!   table at arbitrary (fractional) scale factors, as in-memory chunks or
//!   bulk-loaded into a persistent paged table;
//! * [`groupings`] — the thirteen grouping combinations of (reconstructed)
//!   Table I, with thin/wide variants.

pub mod csv;
pub mod groupings;
pub mod lineitem;
pub mod skew;

pub use csv::write_csv;
pub use groupings::{Grouping, GROUPINGS};
pub use lineitem::{
    generate_lineitem, lineitem_schema, load_lineitem_table, LineitemColumn, LineitemGenerator,
};
pub use skew::{clustered_table, zipf_table, Zipf};
