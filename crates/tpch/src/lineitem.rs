//! A deterministic TPC-H-style `lineitem` generator.
//!
//! Follows dbgen's structure: ~1.5M orders per scale factor, each with 1–7
//! lineitems (≈ 6M rows/SF), dates derived from a random order date, prices
//! from quantity and part key, flags from the dates. Decimal columns
//! (`l_quantity`, `l_extendedprice`, `l_discount`, `l_tax`) are represented
//! as scaled 64-bit integers, the physical representation analytical engines
//! use for low-precision decimals. Fully deterministic for a given
//! `(scale factor, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rexa_buffer::table::TableBuilder;
use rexa_buffer::{BufferManager, Table};
use rexa_exec::{ChunkCollection, DataChunk, LogicalType, Result, Vector, VECTOR_SIZE};
use rexa_storage::DatabaseFile;
use std::sync::Arc;

/// Orders per unit scale factor (TPC-H).
pub const ORDERS_PER_SF: f64 = 1_500_000.0;

/// Day offset of 1992-01-01 (earliest order date in TPC-H).
const START_DATE: i32 = 8035;
/// Order dates span [START_DATE, START_DATE + 2405 - 151].
const ORDER_DATE_SPAN: i32 = 2405 - 151;

/// The columns of `lineitem`, in schema order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum LineitemColumn {
    /// Order key (shared by the order's 1–7 lineitems).
    OrderKey = 0,
    /// Part key, uniform in `[1, 200000·SF]`.
    PartKey = 1,
    /// Supplier key, uniform in `[1, 10000·SF]`.
    SuppKey = 2,
    /// Line number within the order, 1–7.
    LineNumber = 3,
    /// Quantity, 1–50.
    Quantity = 4,
    /// Extended price in cents.
    ExtendedPrice = 5,
    /// Discount in hundredths (0–10).
    Discount = 6,
    /// Tax in hundredths (0–8).
    Tax = 7,
    /// 'R', 'A', or 'N'.
    ReturnFlag = 8,
    /// 'O' or 'F'.
    LineStatus = 9,
    /// Ship date (order date + 1..121 days). ~2,400 distinct values.
    ShipDate = 10,
    /// Commit date (order date + 30..90 days).
    CommitDate = 11,
    /// Receipt date (ship date + 1..30 days).
    ReceiptDate = 12,
    /// One of 4 instructions.
    ShipInstruct = 13,
    /// One of 7 modes.
    ShipMode = 14,
    /// Pseudo-text comment, 2–6 words.
    Comment = 15,
}

impl LineitemColumn {
    /// The column's index in the schema.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// All 16 columns in schema order.
    pub const ALL: [LineitemColumn; 16] = [
        LineitemColumn::OrderKey,
        LineitemColumn::PartKey,
        LineitemColumn::SuppKey,
        LineitemColumn::LineNumber,
        LineitemColumn::Quantity,
        LineitemColumn::ExtendedPrice,
        LineitemColumn::Discount,
        LineitemColumn::Tax,
        LineitemColumn::ReturnFlag,
        LineitemColumn::LineStatus,
        LineitemColumn::ShipDate,
        LineitemColumn::CommitDate,
        LineitemColumn::ReceiptDate,
        LineitemColumn::ShipInstruct,
        LineitemColumn::ShipMode,
        LineitemColumn::Comment,
    ];

    /// The TPC-H column name.
    pub const fn name(self) -> &'static str {
        match self {
            LineitemColumn::OrderKey => "l_orderkey",
            LineitemColumn::PartKey => "l_partkey",
            LineitemColumn::SuppKey => "l_suppkey",
            LineitemColumn::LineNumber => "l_linenumber",
            LineitemColumn::Quantity => "l_quantity",
            LineitemColumn::ExtendedPrice => "l_extendedprice",
            LineitemColumn::Discount => "l_discount",
            LineitemColumn::Tax => "l_tax",
            LineitemColumn::ReturnFlag => "l_returnflag",
            LineitemColumn::LineStatus => "l_linestatus",
            LineitemColumn::ShipDate => "l_shipdate",
            LineitemColumn::CommitDate => "l_commitdate",
            LineitemColumn::ReceiptDate => "l_receiptdate",
            LineitemColumn::ShipInstruct => "l_shipinstruct",
            LineitemColumn::ShipMode => "l_shipmode",
            LineitemColumn::Comment => "l_comment",
        }
    }

    /// The column's logical type.
    pub const fn logical_type(self) -> LogicalType {
        match self {
            LineitemColumn::OrderKey
            | LineitemColumn::PartKey
            | LineitemColumn::SuppKey
            | LineitemColumn::Quantity
            | LineitemColumn::ExtendedPrice
            | LineitemColumn::Discount
            | LineitemColumn::Tax => LogicalType::Int64,
            LineitemColumn::LineNumber => LogicalType::Int32,
            LineitemColumn::ShipDate | LineitemColumn::CommitDate | LineitemColumn::ReceiptDate => {
                LogicalType::Date
            }
            LineitemColumn::ReturnFlag
            | LineitemColumn::LineStatus
            | LineitemColumn::ShipInstruct
            | LineitemColumn::ShipMode
            | LineitemColumn::Comment => LogicalType::Varchar,
        }
    }
}

/// The 16-column lineitem schema.
pub fn lineitem_schema() -> Vec<LogicalType> {
    LineitemColumn::ALL
        .iter()
        .map(|c| c.logical_type())
        .collect()
}

const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const SHIP_MODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const COMMENT_WORDS: [&str; 16] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "deposits",
    "packages",
    "requests",
    "accounts",
    "instructions",
    "foxes",
    "pinto",
    "beans",
    "ironic",
    "express",
    "regular",
];

struct RowBatch {
    orderkey: Vec<i64>,
    partkey: Vec<i64>,
    suppkey: Vec<i64>,
    linenumber: Vec<i32>,
    quantity: Vec<i64>,
    extendedprice: Vec<i64>,
    discount: Vec<i64>,
    tax: Vec<i64>,
    returnflag: Vec<&'static str>,
    linestatus: Vec<&'static str>,
    shipdate: Vec<i32>,
    commitdate: Vec<i32>,
    receiptdate: Vec<i32>,
    shipinstruct: Vec<&'static str>,
    shipmode: Vec<&'static str>,
    comment: Vec<String>,
}

impl RowBatch {
    fn with_capacity(n: usize) -> Self {
        RowBatch {
            orderkey: Vec::with_capacity(n),
            partkey: Vec::with_capacity(n),
            suppkey: Vec::with_capacity(n),
            linenumber: Vec::with_capacity(n),
            quantity: Vec::with_capacity(n),
            extendedprice: Vec::with_capacity(n),
            discount: Vec::with_capacity(n),
            tax: Vec::with_capacity(n),
            returnflag: Vec::with_capacity(n),
            linestatus: Vec::with_capacity(n),
            shipdate: Vec::with_capacity(n),
            commitdate: Vec::with_capacity(n),
            receiptdate: Vec::with_capacity(n),
            shipinstruct: Vec::with_capacity(n),
            shipmode: Vec::with_capacity(n),
            comment: Vec::with_capacity(n),
        }
    }

    fn len(&self) -> usize {
        self.orderkey.len()
    }

    fn into_chunk(self) -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(self.orderkey),
            Vector::from_i64(self.partkey),
            Vector::from_i64(self.suppkey),
            Vector::from_i32(self.linenumber),
            Vector::from_i64(self.quantity),
            Vector::from_i64(self.extendedprice),
            Vector::from_i64(self.discount),
            Vector::from_i64(self.tax),
            Vector::from_strs(self.returnflag),
            Vector::from_strs(self.linestatus),
            Vector::from_dates(self.shipdate),
            Vector::from_dates(self.commitdate),
            Vector::from_dates(self.receiptdate),
            Vector::from_strs(self.shipinstruct),
            Vector::from_strs(self.shipmode),
            Vector::from_strs(self.comment),
        ])
    }
}

/// A streaming lineitem generator: an iterator of chunks of at most
/// [`VECTOR_SIZE`] rows.
pub struct LineitemGenerator {
    rng: StdRng,
    orders_left: u64,
    next_order: u64,
    parts: i64,
    suppliers: i64,
    batch: RowBatch,
    /// Lineitems of the current order not yet emitted (when an order spans a
    /// chunk boundary it continues into the next batch).
    pending_lines: u32,
    pending_orderkey: i64,
    pending_orderdate: i32,
    pending_linenumber: i32,
}

impl LineitemGenerator {
    /// A generator for `sf` (fractional scale factors allowed) and a seed.
    pub fn new(sf: f64, seed: u64) -> Self {
        let orders = (ORDERS_PER_SF * sf).round().max(1.0) as u64;
        LineitemGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0x7e3a_11ce),
            orders_left: orders,
            next_order: 0,
            parts: ((200_000.0 * sf).round() as i64).max(1),
            suppliers: ((10_000.0 * sf).round() as i64).max(1),
            batch: RowBatch::with_capacity(VECTOR_SIZE),
            pending_lines: 0,
            pending_orderkey: 0,
            pending_orderdate: 0,
            pending_linenumber: 0,
        }
    }

    /// TPC-H's sparse order keys: 8 consecutive keys per 32-key block.
    fn order_key(index: u64) -> i64 {
        ((index / 8) * 32 + index % 8 + 1) as i64
    }

    fn comment(rng: &mut StdRng) -> String {
        let words = rng.gen_range(2..=6);
        let mut s = String::new();
        for w in 0..words {
            if w > 0 {
                s.push(' ');
            }
            s.push_str(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
        }
        s
    }

    fn push_line(&mut self, orderkey: i64, orderdate: i32, linenumber: i32) {
        let rng = &mut self.rng;
        let partkey = rng.gen_range(1..=self.parts);
        let suppkey = rng.gen_range(1..=self.suppliers);
        let quantity = rng.gen_range(1..=50i64);
        // dbgen-style retail price derived from the part key.
        let retail = 90_000 + (partkey % 20_000) * 10 + partkey % 1_000;
        let extendedprice = quantity * retail;
        let discount = rng.gen_range(0..=10i64);
        let tax = rng.gen_range(0..=8i64);
        let shipdate = orderdate + rng.gen_range(1..=121);
        let commitdate = orderdate + rng.gen_range(30..=90);
        let receiptdate = shipdate + rng.gen_range(1..=30);
        // 1995-06-17 = day 9298 (dbgen's CURRENTDATE).
        let current = 9298;
        let linestatus = if shipdate > current { "O" } else { "F" };
        let returnflag = if receiptdate <= current {
            if rng.gen_bool(0.5) {
                "R"
            } else {
                "A"
            }
        } else {
            "N"
        };
        let shipinstruct = SHIP_INSTRUCT[rng.gen_range(0..SHIP_INSTRUCT.len())];
        let shipmode = SHIP_MODE[rng.gen_range(0..SHIP_MODE.len())];
        let comment = Self::comment(rng);

        let b = &mut self.batch;
        b.orderkey.push(orderkey);
        b.partkey.push(partkey);
        b.suppkey.push(suppkey);
        b.linenumber.push(linenumber);
        b.quantity.push(quantity);
        b.extendedprice.push(extendedprice);
        b.discount.push(discount);
        b.tax.push(tax);
        b.returnflag.push(returnflag);
        b.linestatus.push(linestatus);
        b.shipdate.push(shipdate);
        b.commitdate.push(commitdate);
        b.receiptdate.push(receiptdate);
        b.shipinstruct.push(shipinstruct);
        b.shipmode.push(shipmode);
        b.comment.push(comment);
    }
}

impl Iterator for LineitemGenerator {
    type Item = DataChunk;

    fn next(&mut self) -> Option<DataChunk> {
        while self.batch.len() < VECTOR_SIZE {
            if self.pending_lines > 0 {
                self.pending_lines -= 1;
                self.pending_linenumber += 1;
                let (k, d, l) = (
                    self.pending_orderkey,
                    self.pending_orderdate,
                    self.pending_linenumber,
                );
                self.push_line(k, d, l);
                continue;
            }
            if self.orders_left == 0 {
                break;
            }
            self.orders_left -= 1;
            self.pending_orderkey = Self::order_key(self.next_order);
            self.next_order += 1;
            self.pending_orderdate = START_DATE + self.rng.gen_range(0..ORDER_DATE_SPAN);
            self.pending_lines = self.rng.gen_range(1..=7);
            self.pending_linenumber = 0;
        }
        if self.batch.len() == 0 {
            return None;
        }
        let batch = std::mem::replace(&mut self.batch, RowBatch::with_capacity(VECTOR_SIZE));
        Some(batch.into_chunk())
    }
}

/// Generate the whole table into an in-memory [`ChunkCollection`].
pub fn generate_lineitem(sf: f64, seed: u64) -> ChunkCollection {
    let mut coll = ChunkCollection::new(lineitem_schema());
    for chunk in LineitemGenerator::new(sf, seed) {
        coll.push(chunk).expect("schema matches");
    }
    coll
}

/// Generate and bulk-load the table into a persistent database file, paged
/// through the buffer manager (the substrate for the scans whose caching
/// behaviour Figure 4 visualizes).
pub fn load_lineitem_table(
    mgr: &Arc<BufferManager>,
    db: &Arc<DatabaseFile>,
    sf: f64,
    seed: u64,
) -> Result<Table> {
    let mut builder = TableBuilder::new(Arc::clone(mgr), Arc::clone(db), lineitem_schema());
    for chunk in LineitemGenerator::new(sf, seed) {
        builder.append(&chunk)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate_lineitem(0.001, 42);
        let b = generate_lineitem(0.001, 42);
        assert_eq!(a.rows(), b.rows());
        for (ca, cb) in a.chunks().iter().zip(b.chunks()) {
            assert_eq!(ca, cb);
        }
        let c = generate_lineitem(0.001, 43);
        assert_ne!(
            a.chunks()[0].column(1).i64s(),
            c.chunks()[0].column(1).i64s(),
            "different seed, different data"
        );
    }

    #[test]
    fn row_count_scales() {
        let small = generate_lineitem(0.001, 1);
        // 1500 orders x 1..7 lines: roughly 6000 rows.
        assert!((4000..9000).contains(&small.rows()), "{}", small.rows());
        let tiny = generate_lineitem(0.0001, 1);
        assert!(tiny.rows() < small.rows() / 5);
    }

    #[test]
    fn schema_and_value_domains() {
        let coll = generate_lineitem(0.001, 7);
        assert_eq!(coll.types(), lineitem_schema());
        for chunk in coll.chunks() {
            let qty = chunk.column(LineitemColumn::Quantity.index()).i64s();
            assert!(qty.iter().all(|&q| (1..=50).contains(&q)));
            let disc = chunk.column(LineitemColumn::Discount.index()).i64s();
            assert!(disc.iter().all(|&d| (0..=10).contains(&d)));
            let pk = chunk.column(LineitemColumn::PartKey.index()).i64s();
            assert!(pk.iter().all(|&p| (1..=200).contains(&p))); // 200000 * 0.001
            for i in 0..chunk.len() {
                let rf = chunk.column(LineitemColumn::ReturnFlag.index()).str_at(i);
                assert!(matches!(rf, "R" | "A" | "N"));
                let ls = chunk.column(LineitemColumn::LineStatus.index()).str_at(i);
                assert!(matches!(ls, "O" | "F"));
                let ship = chunk.column(LineitemColumn::ShipDate.index()).i32s()[i];
                let receipt = chunk.column(LineitemColumn::ReceiptDate.index()).i32s()[i];
                assert!(receipt > ship, "receipt after ship");
            }
        }
    }

    #[test]
    fn orders_have_consecutive_linenumbers() {
        let coll = generate_lineitem(0.0005, 3);
        let mut last_key = -1i64;
        let mut expect_line = 1;
        for chunk in coll.chunks() {
            let keys = chunk.column(0).i64s();
            let lines = chunk.column(3).i32s();
            for i in 0..chunk.len() {
                if keys[i] != last_key {
                    last_key = keys[i];
                    expect_line = 1;
                }
                assert_eq!(lines[i], expect_line, "order {last_key}");
                expect_line += 1;
            }
        }
    }

    #[test]
    fn sparse_order_keys() {
        assert_eq!(LineitemGenerator::order_key(0), 1);
        assert_eq!(LineitemGenerator::order_key(7), 8);
        assert_eq!(LineitemGenerator::order_key(8), 33);
        assert_eq!(LineitemGenerator::order_key(15), 40);
        assert_eq!(LineitemGenerator::order_key(16), 65);
    }

    #[test]
    fn shipdate_cardinality_is_bounded() {
        let coll = generate_lineitem(0.002, 9);
        let mut dates = std::collections::BTreeSet::new();
        for chunk in coll.chunks() {
            for &d in chunk.column(LineitemColumn::ShipDate.index()).i32s() {
                dates.insert(d);
            }
        }
        // At most ORDER_DATE_SPAN + 121 distinct ship dates.
        assert!(dates.len() <= (ORDER_DATE_SPAN + 121) as usize);
        assert!(dates.len() > 1000, "should cover most of the range");
    }

    #[test]
    fn chunks_are_full_except_last() {
        let coll = generate_lineitem(0.001, 5);
        let n = coll.chunk_count();
        for (i, c) in coll.chunks().iter().enumerate() {
            if i + 1 < n {
                assert_eq!(c.len(), VECTOR_SIZE);
            } else {
                assert!(!c.is_empty());
            }
        }
    }
}
