//! CSV export for generated tables.
//!
//! The paper reports its dataset sizes as "the size of the generated CSV"
//! (0.72 GB at SF 1 up to 96.72 GB at SF 128); this writer lets the harness
//! report the same metric for scaled datasets, and doubles as an exchange
//! format for eyeballing generated data.

use rexa_exec::vector::VectorData;
use rexa_exec::{DataChunk, Result};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Append one chunk as CSV rows (no header) to `out`.
pub fn write_chunk_csv(chunk: &DataChunk, out: &mut impl Write) -> Result<u64> {
    let mut bytes = 0u64;
    let mut line = String::new();
    for row in 0..chunk.len() {
        line.clear();
        for (c, col) in chunk.columns().iter().enumerate() {
            if c > 0 {
                line.push('|'); // dbgen's field separator
            }
            if !col.validity().is_valid(row) {
                continue; // empty field = NULL, as dbgen does
            }
            match col.data() {
                VectorData::I32(v) => line.push_str(&v[row].to_string()),
                VectorData::I64(v) => line.push_str(&v[row].to_string()),
                VectorData::F64(v) => line.push_str(&v[row].to_string()),
                VectorData::Str(v) => line.push_str(v.get(row)),
            }
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
        bytes += line.len() as u64;
    }
    Ok(bytes)
}

/// Write an iterator of chunks (e.g. a [`crate::LineitemGenerator`]) to a
/// CSV file; returns the total bytes written — the paper's dataset-size
/// metric.
pub fn write_csv(chunks: impl Iterator<Item = DataChunk>, path: &Path) -> Result<u64> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    let mut total = 0u64;
    for chunk in chunks {
        total += write_chunk_csv(&chunk, &mut out)?;
    }
    out.flush()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineitemGenerator;
    use rexa_exec::{LogicalType, Value, Vector};

    #[test]
    fn chunk_csv_format() {
        let mut chunk = DataChunk::empty(&[LogicalType::Int64, LogicalType::Varchar]);
        chunk
            .push_row(&[Value::Int64(1), Value::Varchar("ab".into())])
            .unwrap();
        chunk
            .push_row(&[Value::Null, Value::Varchar("c".into())])
            .unwrap();
        let mut buf = Vec::new();
        let bytes = write_chunk_csv(&chunk, &mut buf).unwrap();
        assert_eq!(buf, b"1|ab\n|c\n");
        assert_eq!(bytes, buf.len() as u64);
    }

    #[test]
    fn lineitem_csv_round_numbers() {
        let dir = rexa_storage::scratch_dir("csv").unwrap();
        let path = dir.join("li.csv");
        let bytes = write_csv(LineitemGenerator::new(0.0005, 1), &path).unwrap();
        let meta = std::fs::metadata(&path).unwrap();
        assert_eq!(meta.len(), bytes);
        // ~3000 rows at roughly 100 bytes each.
        assert!(bytes > 100_000, "{bytes}");
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap();
        assert_eq!(first.split('|').count(), 16, "16 lineitem columns");
    }

    #[test]
    fn float_column_renders() {
        let chunk = DataChunk::new(vec![Vector::from_f64(vec![1.5])]);
        let mut buf = Vec::new();
        write_chunk_csv(&chunk, &mut buf).unwrap();
        assert_eq!(buf, b"1.5\n");
    }
}
