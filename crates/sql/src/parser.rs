//! Recursive-descent parser.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT ( '*' | item (',' item)* )
//!               FROM ident
//!               [ JOIN ident ON colref '=' colref (AND colref '=' colref)* ]
//!               [ WHERE pred ]
//!               [ GROUP BY colref (',' colref)* ]
//!               [ HAVING pred ]
//!               [ ORDER BY order (',' order)* ]
//!               [ LIMIT int ] [ ';' ]
//! item       := expr [ [AS] ident ]
//! order      := expr [ ASC | DESC ]
//! pred       := conj (OR conj)*
//! conj       := factor (AND factor)*
//! factor     := '(' pred ')' | operand cmp operand
//! operand    := agg | colref | literal
//! agg        := ident '(' ( '*' | colref ) ')'
//! colref     := ident [ '.' ident ]
//! literal    := ['-'] int | ['-'] float | string
//! ```
//!
//! Every error carries the span of the offending token.

use crate::ast::*;
use crate::error::{Span, SqlError};
use crate::token::{tokenize, Tok, Token};

/// The aggregate function names the planner can lower. The parser accepts
/// any `ident(…)` call; binding rejects unknown names — but `COUNT(*)`
/// syntax is resolved here.
pub const AGGREGATE_FUNCTIONS: &[&str] = &[
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "ANY_VALUE",
    "VAR_SAMP",
    "STDDEV_SAMP",
];

/// Parse one `SELECT` statement; trailing `;` is allowed, anything after it
/// is an error.
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let query = p.query()?;
    if p.eat_tok(&Tok::Semi) {
        // A single trailing semicolon is fine.
    }
    let t = p.peek().clone();
    if t.tok != Tok::Eof {
        return Err(SqlError::parse(
            format!("unexpected {} after end of query", t.tok.describe()),
            t.span,
        ));
    }
    Ok(query)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require the keyword, or fail pointing at the current token.
    fn expect_kw(&mut self, kw: &str) -> Result<Span, SqlError> {
        if self.at_kw(kw) {
            Ok(self.next().span)
        } else {
            let t = self.peek();
            Err(SqlError::parse(
                format!("expected {kw}, found {}", t.tok.describe()),
                t.span,
            ))
        }
    }

    fn eat_tok(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, tok: &Tok, what: &str) -> Result<Span, SqlError> {
        if &self.peek().tok == tok {
            Ok(self.next().span)
        } else {
            let t = self.peek();
            Err(SqlError::parse(
                format!("expected {what}, found {}", t.tok.describe()),
                t.span,
            ))
        }
    }

    /// A bare identifier that is not a clause keyword.
    fn ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        match &self.peek().tok {
            Tok::Ident(s) if !is_reserved(s) => {
                let s = s.clone();
                let span = self.next().span;
                Ok((s, span))
            }
            other => {
                let span = self.peek().span;
                Err(SqlError::parse(
                    format!("expected {what}, found {}", other.describe()),
                    span,
                ))
            }
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_kw("SELECT")?;
        let (star, items) = if self.eat_tok(&Tok::Star) {
            (true, Vec::new())
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat_tok(&Tok::Comma) {
                items.push(self.select_item()?);
            }
            (false, items)
        };
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let join = if self.at_kw("JOIN") || self.at_kw("INNER") {
            self.eat_kw("INNER");
            let join_span = self.expect_kw("JOIN")?;
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let mut on = vec![self.join_condition()?];
            while self.eat_kw("AND") {
                on.push(self.join_condition()?);
            }
            Some(Join {
                span: join_span.merge(table.span),
                table,
                on,
            })
        } else {
            None
        };
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            let mut cols = vec![self.column_ref()?];
            while self.eat_tok(&Tok::Comma) {
                cols.push(self.column_ref()?);
            }
            cols
        } else {
            Vec::new()
        };
        let having = if self.eat_kw("HAVING") {
            Some(self.predicate()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let mut keys = vec![self.order_item()?];
            while self.eat_tok(&Tok::Comma) {
                keys.push(self.order_item()?);
            }
            keys
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw("LIMIT") {
            let t = self.next();
            match t.tok {
                Tok::Int(n) if n >= 0 => Some(Limit {
                    n: n as u64,
                    span: t.span,
                }),
                other => {
                    return Err(SqlError::parse(
                        format!(
                            "LIMIT expects a non-negative integer, found {}",
                            other.describe()
                        ),
                        t.span,
                    ))
                }
            }
        } else {
            None
        };
        Ok(Query {
            star,
            items,
            from,
            join,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let (name, span) = self.ident("a table name")?;
        Ok(TableRef { name, span })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let expr = self.operand()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident("an alias")?.0)
        } else {
            match &self.peek().tok {
                // Implicit alias: a bare identifier that is not a clause
                // keyword (`SELECT a b FROM t`).
                Tok::Ident(s) if !is_reserved(s) => Some(self.ident("an alias")?.0),
                _ => None,
            }
        };
        Ok(SelectItem { expr, alias })
    }

    fn order_item(&mut self) -> Result<OrderItem, SqlError> {
        let expr = self.operand()?;
        let desc = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };
        Ok(OrderItem { expr, desc })
    }

    fn join_condition(&mut self) -> Result<(ColumnRef, ColumnRef), SqlError> {
        let left = self.column_ref()?;
        self.expect_tok(&Tok::Eq, "`=` in join condition")?;
        let right = self.column_ref()?;
        Ok((left, right))
    }

    fn predicate(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.conjunction()?;
        while self.eat_kw("OR") {
            let right = self.conjunction()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.factor()?;
        while self.eat_kw("AND") {
            let right = self.factor()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr, SqlError> {
        if self.eat_tok(&Tok::LParen) {
            let inner = self.predicate()?;
            self.expect_tok(&Tok::RParen, "`)`")?;
            return Ok(inner);
        }
        let left = self.operand()?;
        let op = match self.peek().tok {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => {
                let t = self.peek();
                return Err(SqlError::parse(
                    format!("expected a comparison operator, found {}", t.tok.describe()),
                    t.span,
                ));
            }
        };
        self.pos += 1;
        let right = self.operand()?;
        Ok(Expr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    /// A column reference, aggregate call, or literal.
    fn operand(&mut self) -> Result<Expr, SqlError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Minus => {
                // Unary minus: only on numeric literals.
                self.pos += 1;
                let lit = self.peek().clone();
                let span = t.span.merge(lit.span);
                match lit.tok {
                    // Lexed magnitudes fit in i64, so negation cannot
                    // overflow.
                    Tok::Int(v) => {
                        self.pos += 1;
                        Ok(Expr::Literal(Literal::Int(-v), span))
                    }
                    Tok::Float(v) => {
                        self.pos += 1;
                        Ok(Expr::Literal(Literal::Float(-v), span))
                    }
                    other => Err(SqlError::parse(
                        format!(
                            "expected a numeric literal after `-`, found {}",
                            other.describe()
                        ),
                        lit.span,
                    )),
                }
            }
            Tok::Int(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(v), t.span))
            }
            Tok::Float(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(v), t.span))
            }
            Tok::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s), t.span))
            }
            Tok::Ident(ref name) if self.peek2().tok == Tok::LParen => {
                // Function call: only aggregate calls exist in this grammar.
                let func = name.to_ascii_uppercase();
                self.pos += 2; // name and '('
                let (arg, star) = if self.eat_tok(&Tok::Star) {
                    (None, true)
                } else {
                    (Some(self.column_ref()?), false)
                };
                let close = self.expect_tok(&Tok::RParen, "`)`")?;
                if star && func != "COUNT" {
                    return Err(SqlError::parse(
                        format!("`*` argument is only valid for COUNT, not {func}"),
                        t.span.merge(close),
                    ));
                }
                Ok(Expr::Agg(AggCall {
                    func,
                    arg,
                    star,
                    span: t.span.merge(close),
                }))
            }
            Tok::Ident(_) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(SqlError::parse(
                format!("expected an expression, found {}", other.describe()),
                t.span,
            )),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let (first, span) = self.ident("a column name")?;
        if self.eat_tok(&Tok::Dot) {
            let (name, name_span) = self.ident("a column name after `.`")?;
            Ok(ColumnRef {
                table: Some(first),
                name,
                span: span.merge(name_span),
            })
        } else {
            Ok(ColumnRef {
                table: None,
                name: first,
                span,
            })
        }
    }
}

/// Clause keywords that cannot be used as bare identifiers (so the parser
/// can tell `SELECT a FROM …` from an implicit alias).
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "JOIN", "INNER", "ON", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT", "AND", "OR", "AS", "ASC", "DESC",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_query_shape() {
        let q = parse(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity), AVG(l_extendedprice), COUNT(*) \
             FROM lineitem WHERE l_shipdate <= '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus",
        )
        .unwrap();
        assert_eq!(q.items.len(), 5);
        assert_eq!(q.from.name, "lineitem");
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.limit.is_none());
    }

    #[test]
    fn parses_join_and_having_and_limit() {
        let q = parse(
            "SELECT a, COUNT(*) FROM t JOIN u ON t.k = u.k \
             WHERE b > 3 AND (c = 'x' OR c = 'y') \
             GROUP BY a HAVING COUNT(*) >= 10 ORDER BY a DESC LIMIT 5;",
        )
        .unwrap();
        let join = q.join.unwrap();
        assert_eq!(join.table.name, "u");
        assert_eq!(join.on.len(), 1);
        assert!(q.having.unwrap().has_aggregate());
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit.unwrap().n, 5);
    }

    #[test]
    fn round_trip_is_idempotent() {
        for sql in [
            "SELECT * FROM t",
            "SELECT a, b AS total FROM t WHERE a = 1 AND b < 2.5 OR c <> 'z'",
            "SELECT a FROM t WHERE b >= -42 AND c < -1.5",
            "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k HAVING SUM(v) > 0 ORDER BY k ASC LIMIT 3",
            "SELECT t.a, u.b FROM t JOIN u ON t.k = u.k AND t.j = u.j GROUP BY t.a, u.b",
        ] {
            let once = parse(sql).unwrap().to_string();
            let twice = parse(&once).unwrap().to_string();
            assert_eq!(once, twice, "unparse not a fixed point for {sql:?}");
        }
    }

    #[test]
    fn error_spans_point_at_offender() {
        // `FROM` where an expression is required.
        let e = parse("SELECT FROM t").unwrap_err();
        assert_eq!(e.span().unwrap().start, 7);

        // Trailing garbage after a complete query.
        let e = parse("SELECT a FROM t nonsense extra").unwrap_err();
        assert_eq!(e.span().unwrap().start, 16);

        // Missing closing parenthesis.
        let e = parse("SELECT COUNT( FROM t").unwrap_err();
        assert_eq!(e.span().unwrap().start, 14);
    }

    #[test]
    fn star_only_for_count() {
        let e = parse("SELECT SUM(*) FROM t").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("only valid for COUNT"), "{msg}");
    }

    #[test]
    fn limit_requires_integer() {
        let e = parse("SELECT a FROM t LIMIT x").unwrap_err();
        assert_eq!(e.span().unwrap().start, 22);
    }
}
