//! The catalog: named tables the binder resolves `FROM` clauses against.
//!
//! A catalog entry pairs a column-name list with the table's data — either
//! an in-memory [`ChunkCollection`] or a persistent paged
//! [`Table`](rexa_buffer::Table) scanned through the buffer manager. Names
//! are folded to lowercase on registration and lookups are
//! case-insensitive, SQL style.

use crate::error::{Span, SqlError};
use rexa_buffer::Table;
use rexa_exec::{ChunkCollection, Error, LogicalType, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A table's rows: in-memory chunks or a buffer-managed paged table.
#[derive(Clone)]
pub enum TableData {
    Collection(Arc<ChunkCollection>),
    Paged(Arc<Table>),
}

impl TableData {
    pub fn schema(&self) -> Vec<LogicalType> {
        match self {
            TableData::Collection(c) => c.types().to_vec(),
            TableData::Paged(t) => t.schema().to_vec(),
        }
    }

    pub fn rows(&self) -> usize {
        match self {
            TableData::Collection(c) => c.rows(),
            TableData::Paged(t) => t.rows(),
        }
    }
}

/// One registered table.
#[derive(Clone)]
pub struct CatalogTable {
    /// Lowercased table name.
    pub name: String,
    /// Lowercased column names, in schema order.
    pub columns: Vec<String>,
    /// Column types, parallel to `columns`.
    pub schema: Vec<LogicalType>,
    /// The rows.
    pub data: TableData,
    /// Column indices the rows are declared sorted by (lexicographic, via
    /// [`Catalog::declare_sorted`]); empty when unknown. A grouped query
    /// whose keys cover a prefix of this list takes the aggregation's
    /// sorted-input fast path. The declaration is a performance hint, not a
    /// constraint — an unsorted table declared sorted still aggregates
    /// correctly, just without the fast path's benefit.
    pub sorted_by: Vec<usize>,
}

impl CatalogTable {
    /// The index of `column` (case-insensitive), if present.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(column))
    }
}

/// Named tables for the binder. Cloning is cheap (tables are shared).
#[derive(Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<CatalogTable>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register `data` under `name` with the given column names (which must
    /// match the data's column count). Re-registering a name replaces the
    /// previous entry.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        columns: Vec<String>,
        data: TableData,
    ) -> Result<()> {
        let name = name.into().to_ascii_lowercase();
        if name.is_empty() {
            return Err(Error::InvalidInput("empty table name".into()));
        }
        let schema = data.schema();
        if columns.len() != schema.len() {
            return Err(Error::InvalidInput(format!(
                "table {name}: {} column names for {} columns",
                columns.len(),
                schema.len()
            )));
        }
        let columns: Vec<String> = columns
            .into_iter()
            .map(|c| c.to_ascii_lowercase())
            .collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(Error::InvalidInput(format!(
                    "table {name}: duplicate column name {c}"
                )));
            }
        }
        self.tables.insert(
            name.clone(),
            Arc::new(CatalogTable {
                name,
                columns,
                schema,
                data,
                sorted_by: Vec::new(),
            }),
        );
        Ok(())
    }

    /// Declare that `name`'s rows are sorted by `columns` (lexicographic,
    /// case-insensitive names). Overwrites any previous declaration; an
    /// empty list clears it. See [`CatalogTable::sorted_by`].
    pub fn declare_sorted(&mut self, name: &str, columns: &[&str]) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let Some(table) = self.tables.get(&key) else {
            return Err(Error::InvalidInput(format!("unknown table {name}")));
        };
        let mut sorted_by = Vec::with_capacity(columns.len());
        for c in columns {
            let Some(i) = table.column_index(c) else {
                return Err(Error::InvalidInput(format!(
                    "table {name}: unknown sort column {c}"
                )));
            };
            if sorted_by.contains(&i) {
                return Err(Error::InvalidInput(format!(
                    "table {name}: duplicate sort column {c}"
                )));
            }
            sorted_by.push(i);
        }
        let mut t = (**table).clone();
        t.sorted_by = sorted_by;
        self.tables.insert(key, Arc::new(t));
        Ok(())
    }

    /// Convenience: register an in-memory collection.
    pub fn register_collection(
        &mut self,
        name: impl Into<String>,
        columns: Vec<String>,
        coll: Arc<ChunkCollection>,
    ) -> Result<()> {
        self.register(name, columns, TableData::Collection(coll))
    }

    /// Convenience: register a persistent paged table.
    pub fn register_paged(
        &mut self,
        name: impl Into<String>,
        columns: Vec<String>,
        table: Arc<Table>,
    ) -> Result<()> {
        self.register(name, columns, TableData::Paged(table))
    }

    /// Look up a table (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Arc<CatalogTable>> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Resolve a table reference or fail with a bind error at `span`.
    pub(crate) fn resolve(
        &self,
        name: &str,
        span: Span,
    ) -> std::result::Result<Arc<CatalogTable>, SqlError> {
        self.get(name).cloned().ok_or_else(|| {
            SqlError::bind(
                format!(
                    "unknown table `{name}` (registered: {})",
                    if self.tables.is_empty() {
                        "none".to_string()
                    } else {
                        self.tables.keys().cloned().collect::<Vec<_>>().join(", ")
                    }
                ),
                span,
            )
        })
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}
