//! Binder and planner: resolve a parsed [`Query`] against a [`Catalog`]
//! and lower it onto the existing operators.
//!
//! Binding rules (see DESIGN.md §11):
//! * `FROM`/`JOIN` tables must be registered; columns resolve
//!   case-insensitively, qualified (`t.c`) or unqualified when unique.
//! * `JOIN … ON` takes equalities only, each with exactly one side per
//!   table and pairwise equal key types; it lowers to
//!   [`HashJoinPlan`] with the left (`FROM`) table as the probe side, so
//!   the combined schema is left columns followed by right columns.
//! * With `GROUP BY` (or any aggregate call), every plain column in the
//!   select list must be a grouping column; aggregate calls lower to
//!   [`AggregateSpec`]s validated by the operator's own binder
//!   ([`bind_aggregate`]), deduplicated across SELECT and HAVING.
//! * `WHERE` binds over the (joined) input schema and must be
//!   aggregate-free; `HAVING` binds over group keys and aggregates.
//! * Literals coerce to the compared column's type at bind time —
//!   including `'YYYY-MM-DD'` strings against `DATE` columns — or fail
//!   with a bind error at the literal's span.
//! * `ORDER BY` keys must appear in the select list (by name, alias, or
//!   1-based position); `LIMIT` takes a non-negative integer.

use crate::ast::{AggCall, ColumnRef, Expr, Literal, Query};
use crate::catalog::{Catalog, CatalogTable};
use crate::error::{Span, SqlError};
use rexa_core::function::bind_aggregate;
use rexa_core::{AggregateSpec, HashAggregatePlan, HashJoinPlan};
use rexa_exec::vector::VectorData;
use rexa_exec::{DataChunk, LogicalType, Value, Vector};
use std::cmp::Ordering;
use std::sync::Arc;

pub use crate::ast::CmpOp;

/// A bound filter predicate, evaluated row-at-a-time over a [`DataChunk`].
/// SQL three-valued logic collapses at the filter: a comparison involving
/// NULL is not satisfied.
#[derive(Clone, Debug)]
pub enum Predicate {
    /// `column <op> literal` (literal already coerced to the column type).
    CmpLit {
        col: usize,
        op: CmpOp,
        lit: Value,
    },
    /// `column <op> column` (same logical type on both sides).
    CmpCols {
        left: usize,
        op: CmpOp,
        right: usize,
    },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Does row `row` of `chunk` satisfy the predicate?
    pub fn eval(&self, chunk: &DataChunk, row: usize) -> bool {
        match self {
            Predicate::CmpLit { col, op, lit } => {
                cmp_value_lit(chunk.column(*col), row, lit).is_some_and(|ord| op.matches(ord))
            }
            Predicate::CmpCols { left, op, right } => {
                cmp_cols(chunk.column(*left), chunk.column(*right), row)
                    .is_some_and(|ord| op.matches(ord))
            }
            Predicate::And(l, r) => l.eval(chunk, row) && r.eval(chunk, row),
            Predicate::Or(l, r) => l.eval(chunk, row) || r.eval(chunk, row),
        }
    }
}

/// Compare one row's cell against a coerced literal without materializing a
/// [`Value`] (no string allocation on the hot filter path). `None` = NULL.
fn cmp_value_lit(vec: &Vector, row: usize, lit: &Value) -> Option<Ordering> {
    if !vec.validity().is_valid(row) {
        return None;
    }
    match (vec.data(), lit) {
        (VectorData::I32(_), Value::Int32(x)) => Some(vec.i32s()[row].cmp(x)),
        (VectorData::I32(_), Value::Date(x)) => Some(vec.i32s()[row].cmp(x)),
        (VectorData::I64(_), Value::Int64(x)) => Some(vec.i64s()[row].cmp(x)),
        (VectorData::F64(_), Value::Float64(x)) => Some(vec.f64s()[row].total_cmp(x)),
        (VectorData::Str(_), Value::Varchar(s)) => Some(vec.str_at(row).cmp(s.as_str())),
        // The binder coerces literals to the column type, so this arm is
        // unreachable for bound plans; treat as not-satisfied, never panic.
        _ => None,
    }
}

/// Compare two same-typed cells of one row. `None` when either is NULL.
fn cmp_cols(a: &Vector, b: &Vector, row: usize) -> Option<Ordering> {
    if !a.validity().is_valid(row) || !b.validity().is_valid(row) {
        return None;
    }
    match (a.data(), b.data()) {
        (VectorData::I32(_), VectorData::I32(_)) => Some(a.i32s()[row].cmp(&b.i32s()[row])),
        (VectorData::I64(_), VectorData::I64(_)) => Some(a.i64s()[row].cmp(&b.i64s()[row])),
        (VectorData::F64(_), VectorData::F64(_)) => Some(a.f64s()[row].total_cmp(&b.f64s()[row])),
        (VectorData::Str(_), VectorData::Str(_)) => Some(a.str_at(row).cmp(b.str_at(row))),
        _ => None,
    }
}

/// One `ORDER BY` key over the projected output.
#[derive(Clone, Copy, Debug)]
pub struct SortKey {
    /// Output column index.
    pub col: usize,
    pub desc: bool,
}

/// The join step: build side and lowered plan.
#[derive(Clone)]
pub struct JoinNode {
    /// The build-side (right, `JOIN`ed) table.
    pub right: Arc<CatalogTable>,
    /// Lowered join plan: probe keys index the left table's schema, build
    /// keys the right table's.
    pub plan: HashJoinPlan,
}

/// A fully bound, executable query plan:
/// scan → \[join\] → \[filter\] → \[aggregate\] → \[having\] → project →
/// \[sort/limit\].
#[derive(Clone)]
pub struct PhysicalPlan {
    /// The probe-side (`FROM`) table.
    pub left: Arc<CatalogTable>,
    /// Optional hash join against a second table.
    pub join: Option<JoinNode>,
    /// Schema the filter and aggregation see: left columns, then (joined)
    /// right columns.
    pub input_schema: Vec<LogicalType>,
    /// `WHERE`, bound over `input_schema`.
    pub filter: Option<Predicate>,
    /// The aggregation, when the query groups or aggregates. Empty
    /// `group_cols` selects the ungrouped (single-row) path.
    pub aggregate: Option<HashAggregatePlan>,
    /// Schema of the aggregate's output (group keys then aggregates), or of
    /// the input when there is no aggregation.
    pub agg_output_schema: Vec<LogicalType>,
    /// `HAVING`, bound over `agg_output_schema`.
    pub having: Option<Predicate>,
    /// Select-list projection over `agg_output_schema` (or the input schema
    /// when there is no aggregation).
    pub projection: Vec<usize>,
    /// Output column names, parallel to `projection`.
    pub output_names: Vec<String>,
    /// Output column types, parallel to `projection`.
    pub output_types: Vec<LogicalType>,
    /// `ORDER BY` keys over the projected output.
    pub order_by: Vec<SortKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// The aggregation's input arrives grouped: the scanned table was
    /// declared sorted ([`Catalog::declare_sorted`]) and the grouping keys
    /// cover a prefix of its sort columns (order-preserving steps — WHERE —
    /// in between are fine; a JOIN is not). Execution asserts the
    /// sorted-input fast path instead of sampling.
    pub input_sorted: bool,
}

impl PhysicalPlan {
    /// Upper bound on input rows (exact scan cardinality before filtering),
    /// for admission footprint estimates.
    pub fn input_rows(&self) -> usize {
        let left = self.left.data.rows();
        match &self.join {
            None => left,
            // An equi-join can expand; use the larger side as the estimate.
            Some(j) => left.max(j.right.data.rows()),
        }
    }

    /// A compact `EXPLAIN`-style rendering of the operator tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let mut indent = 0usize;
        let mut line = |s: String, indent: &mut usize| {
            out.push_str(&"  ".repeat(*indent));
            out.push_str(&s);
            out.push('\n');
            *indent += 1;
        };
        if self.limit.is_some() || !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|k| {
                    format!(
                        "{}{}",
                        self.output_names[k.col],
                        if k.desc { " DESC" } else { "" }
                    )
                })
                .collect();
            let limit = self.limit.map_or(String::new(), |n| format!(" limit={n}"));
            line(format!("SORT [{}]{limit}", keys.join(", ")), &mut indent);
        }
        line(
            format!("PROJECT [{}]", self.output_names.join(", ")),
            &mut indent,
        );
        if self.having.is_some() {
            line("FILTER (having)".into(), &mut indent);
        }
        if let Some(agg) = &self.aggregate {
            line(
                format!(
                    "HASH_AGGREGATE groups={} aggregates={}{}",
                    agg.group_cols.len(),
                    agg.aggregates.len(),
                    if self.input_sorted {
                        " input=sorted"
                    } else {
                        ""
                    }
                ),
                &mut indent,
            );
        }
        if self.filter.is_some() {
            line("FILTER (where)".into(), &mut indent);
        }
        if let Some(j) = &self.join {
            line(
                format!("HASH_JOIN keys={}", j.plan.probe_keys.len()),
                &mut indent,
            );
            line(format!("SCAN {}", self.left.name), &mut indent);
            out.push_str(&"  ".repeat(indent - 1));
            out.push_str(&format!("SCAN {}\n", j.right.name));
        } else {
            line(format!("SCAN {}", self.left.name), &mut indent);
        }
        out
    }
}

/// Parse, bind, and lower `sql` against `catalog`.
pub fn plan(sql: &str, catalog: &Catalog) -> Result<PhysicalPlan, SqlError> {
    plan_traced(sql, catalog, None)
}

/// Like [`plan`], recording `parse`, `bind`, and enclosing `plan` timeline
/// spans on an `sql` track when a span collector is supplied (the service
/// passes its per-query collector so front-end time shows up on the same
/// Perfetto timeline as execution).
pub fn plan_traced(
    sql: &str,
    catalog: &Catalog,
    spans: Option<&std::sync::Arc<rexa_obs::SpanCollector>>,
) -> Result<PhysicalPlan, SqlError> {
    use rexa_obs::span::{arg1, cat, NO_ARGS};
    let sbuf = spans.map(|sc| sc.track("sql"));
    let t_plan = sbuf.as_ref().map(|b| b.now_ns());
    let t_parse = t_plan;
    let query = crate::parser::parse(sql)?;
    if let (Some(b), Some(t)) = (&sbuf, t_parse) {
        b.complete("parse", cat::SQL, t, arg1("bytes", sql.len() as u64));
    }
    let t_bind = sbuf.as_ref().map(|b| b.now_ns());
    let plan = bind(&query, catalog)?;
    if let Some(b) = &sbuf {
        if let Some(t) = t_bind {
            b.complete("bind", cat::SQL, t, NO_ARGS);
        }
        if let Some(t) = t_plan {
            b.complete("plan", cat::SQL, t, NO_ARGS);
        }
    }
    Ok(plan)
}

/// Bind and lower an already-parsed query.
pub fn bind(query: &Query, catalog: &Catalog) -> Result<PhysicalPlan, SqlError> {
    let left = catalog.resolve(&query.from.name, query.from.span)?;
    let (join, scope) = match &query.join {
        None => (None, Scope::single(Arc::clone(&left))),
        Some(j) => {
            let right = catalog.resolve(&j.table.name, j.table.span)?;
            if right.name == left.name {
                return Err(SqlError::bind(
                    "self-joins are not supported (register the table twice under different names)",
                    j.table.span,
                ));
            }
            let scope = Scope::joined(Arc::clone(&left), Arc::clone(&right));
            let plan = bind_join_on(&scope, &left, &right, &j.on)?;
            (
                Some(JoinNode {
                    right: Arc::clone(&right),
                    plan,
                }),
                scope,
            )
        }
    };
    let input_schema = scope.schema.clone();

    let filter = match &query.where_clause {
        None => None,
        Some(expr) => {
            if expr.has_aggregate() {
                return Err(SqlError::bind(
                    "aggregate calls are not allowed in WHERE (use HAVING)",
                    expr.span(),
                ));
            }
            Some(bind_predicate(expr, &|c| {
                scope.resolve(c).map(|i| (i, input_schema[i]))
            })?)
        }
    };

    let wants_aggregation = !query.group_by.is_empty()
        || query.having.is_some()
        || query.items.iter().any(|i| i.expr.has_aggregate());

    let mut binder = OutputBinder {
        scope: &scope,
        input_schema: &input_schema,
        group_cols: Vec::new(),
        aggregates: Vec::new(),
    };

    let (aggregate, agg_output_schema, having, outputs) = if wants_aggregation {
        if query.star {
            return Err(SqlError::bind(
                "SELECT * cannot be combined with GROUP BY or aggregates",
                query.from.span,
            ));
        }
        for c in &query.group_by {
            let idx = scope.resolve(c)?;
            if binder.group_cols.contains(&idx) {
                return Err(SqlError::bind(
                    format!("duplicate GROUP BY column `{c}`"),
                    c.span,
                ));
            }
            binder.group_cols.push(idx);
        }
        let mut outputs = Vec::new();
        for item in &query.items {
            let (slot, name) = binder.bind_select_item(&item.expr)?;
            outputs.push(Output {
                slot,
                name: item.alias.clone().unwrap_or(name),
            });
        }
        let having = match &query.having {
            None => None,
            Some(expr) => Some(bind_having(expr, &mut binder)?),
        };
        let agg_plan = HashAggregatePlan {
            group_cols: binder.group_cols.clone(),
            aggregates: binder.aggregates.clone(),
        };
        let mut agg_schema: Vec<LogicalType> = agg_plan
            .group_cols
            .iter()
            .map(|&c| input_schema[c])
            .collect();
        for spec in &agg_plan.aggregates {
            // Already validated in `bind_agg_call`; cannot fail here.
            agg_schema.push(
                bind_aggregate(*spec, &input_schema)
                    .map_err(SqlError::Engine)?
                    .output_type,
            );
        }
        (Some(agg_plan), agg_schema, having, outputs)
    } else {
        let mut outputs = Vec::new();
        if query.star {
            for (i, name) in scope.output_star_names().into_iter().enumerate() {
                outputs.push(Output { slot: i, name });
            }
        } else {
            for item in &query.items {
                match &item.expr {
                    Expr::Column(c) => {
                        let idx = scope.resolve(c)?;
                        outputs.push(Output {
                            slot: idx,
                            name: item
                                .alias
                                .clone()
                                .unwrap_or_else(|| c.name.to_ascii_lowercase()),
                        });
                    }
                    other => {
                        return Err(SqlError::bind(
                            "only columns and aggregate calls are supported in the select list",
                            other.span(),
                        ))
                    }
                }
            }
        }
        (None, input_schema.clone(), None, outputs)
    };

    let projection: Vec<usize> = outputs.iter().map(|o| o.slot).collect();
    let output_names: Vec<String> = outputs.iter().map(|o| o.name.clone()).collect();
    let output_types: Vec<LogicalType> = projection.iter().map(|&i| agg_output_schema[i]).collect();

    // ORDER BY binds over the projected output: by alias/name, by matching
    // select-list expression, or by 1-based position.
    let mut order_by = Vec::new();
    for key in &query.order_by {
        let col = bind_order_key(
            &key.expr,
            query,
            &outputs,
            &scope,
            aggregate.as_ref(),
            &binder,
        )?;
        order_by.push(SortKey {
            col,
            desc: key.desc,
        });
    }

    let limit = query.limit.map(|l| l.n as usize);

    // Sorted-input detection: grouping keys covering a prefix of the
    // scanned table's declared sort columns arrive grouped (equal key
    // tuples are adjacent — any permutation of a sorted prefix groups
    // contiguously). A WHERE filter preserves row order; a JOIN does not
    // guarantee it, so joined inputs never claim sortedness.
    let input_sorted = match &aggregate {
        Some(agg) if join.is_none() && !agg.group_cols.is_empty() => {
            let sorted = &left.sorted_by;
            agg.group_cols.len() <= sorted.len()
                && agg
                    .group_cols
                    .iter()
                    .all(|c| sorted[..agg.group_cols.len()].contains(c))
        }
        _ => false,
    };

    Ok(PhysicalPlan {
        left,
        join,
        input_schema,
        filter,
        aggregate,
        agg_output_schema,
        having,
        projection,
        output_names,
        output_types,
        order_by,
        limit,
        input_sorted,
    })
}

/// One projected output column: its index in the pre-projection schema and
/// its display name.
struct Output {
    slot: usize,
    name: String,
}

/// Name resolution over the `FROM`(+`JOIN`) tables.
struct Scope {
    /// (table, offset of its first column in the combined schema).
    tables: Vec<(Arc<CatalogTable>, usize)>,
    schema: Vec<LogicalType>,
}

impl Scope {
    fn single(t: Arc<CatalogTable>) -> Self {
        let schema = t.schema.clone();
        Scope {
            tables: vec![(t, 0)],
            schema,
        }
    }

    fn joined(left: Arc<CatalogTable>, right: Arc<CatalogTable>) -> Self {
        let mut schema = left.schema.clone();
        schema.extend_from_slice(&right.schema);
        let offset = left.schema.len();
        Scope {
            tables: vec![(left, 0), (right, offset)],
            schema,
        }
    }

    /// Resolve a column reference to a combined-schema index.
    fn resolve(&self, c: &ColumnRef) -> Result<usize, SqlError> {
        if let Some(qualifier) = &c.table {
            let Some((t, off)) = self
                .tables
                .iter()
                .find(|(t, _)| t.name.eq_ignore_ascii_case(qualifier))
            else {
                return Err(SqlError::bind(
                    format!("unknown table qualifier `{qualifier}`"),
                    c.span,
                ));
            };
            return match t.column_index(&c.name) {
                Some(i) => Ok(off + i),
                None => Err(SqlError::bind(
                    format!("table `{}` has no column `{}`", t.name, c.name),
                    c.span,
                )),
            };
        }
        let mut found = None;
        for (t, off) in &self.tables {
            if let Some(i) = t.column_index(&c.name) {
                if found.is_some() {
                    return Err(SqlError::bind(
                        format!(
                            "column `{}` is ambiguous (qualify it with a table name)",
                            c.name
                        ),
                        c.span,
                    ));
                }
                found = Some(off + i);
            }
        }
        found.ok_or_else(|| SqlError::bind(format!("unknown column `{}`", c.name), c.span))
    }

    /// Output names for `SELECT *`: bare column names, qualified with the
    /// table name when two tables share a column name.
    fn output_star_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for (t, _) in &self.tables {
            for col in &t.columns {
                let duplicated = self
                    .tables
                    .iter()
                    .filter(|(u, _)| u.column_index(col).is_some())
                    .count()
                    > 1;
                if duplicated {
                    names.push(format!("{}.{}", t.name, col));
                } else {
                    names.push(col.clone());
                }
            }
        }
        names
    }
}

/// Bind `JOIN … ON` equalities to a [`HashJoinPlan`]: left table is the
/// probe side, right the build side.
fn bind_join_on(
    scope: &Scope,
    left: &CatalogTable,
    right: &CatalogTable,
    on: &[(ColumnRef, ColumnRef)],
) -> Result<HashJoinPlan, SqlError> {
    let left_cols = left.schema.len();
    let mut probe_keys = Vec::new();
    let mut build_keys = Vec::new();
    for (a, b) in on {
        let ia = scope.resolve(a)?;
        let ib = scope.resolve(b)?;
        let span = a.span.merge(b.span);
        let (probe, build) = if ia < left_cols && ib >= left_cols {
            (ia, ib - left_cols)
        } else if ib < left_cols && ia >= left_cols {
            (ib, ia - left_cols)
        } else {
            return Err(SqlError::bind(
                "join condition must compare one column from each table",
                span,
            ));
        };
        if left.schema[probe] != right.schema[build] {
            return Err(SqlError::bind(
                format!(
                    "join key type mismatch: {} vs {}",
                    left.schema[probe], right.schema[build]
                ),
                span,
            ));
        }
        probe_keys.push(probe);
        build_keys.push(build);
    }
    Ok(HashJoinPlan {
        build_keys,
        probe_keys,
    })
}

/// Maps a column reference to `(index, type)` in whatever schema a
/// predicate runs over.
type ColumnResolver<'a> = dyn Fn(&ColumnRef) -> Result<(usize, LogicalType), SqlError> + 'a;

/// Bind a predicate tree; `resolve` maps a column reference to
/// `(index, type)` in whatever schema the predicate runs over.
fn bind_predicate(expr: &Expr, resolve: &ColumnResolver) -> Result<Predicate, SqlError> {
    match expr {
        Expr::And(l, r) => Ok(Predicate::And(
            Box::new(bind_predicate(l, resolve)?),
            Box::new(bind_predicate(r, resolve)?),
        )),
        Expr::Or(l, r) => Ok(Predicate::Or(
            Box::new(bind_predicate(l, resolve)?),
            Box::new(bind_predicate(r, resolve)?),
        )),
        Expr::Cmp { op, left, right } => bind_comparison(*op, left, right, resolve),
        other => Err(SqlError::bind(
            "expected a comparison or AND/OR combination",
            other.span(),
        )),
    }
}

fn bind_comparison(
    op: CmpOp,
    left: &Expr,
    right: &Expr,
    resolve: &ColumnResolver,
) -> Result<Predicate, SqlError> {
    match (left, right) {
        (Expr::Column(lc), Expr::Column(rc)) => {
            let (li, lt) = resolve(lc)?;
            let (ri, rt) = resolve(rc)?;
            if lt != rt {
                return Err(SqlError::bind(
                    format!("cannot compare {lt} with {rt}"),
                    lc.span.merge(rc.span),
                ));
            }
            Ok(Predicate::CmpCols {
                left: li,
                op,
                right: ri,
            })
        }
        (Expr::Column(c), Expr::Literal(lit, lit_span)) => {
            let (i, t) = resolve(c)?;
            Ok(Predicate::CmpLit {
                col: i,
                op,
                lit: coerce_literal(lit, t, *lit_span)?,
            })
        }
        (Expr::Literal(lit, lit_span), Expr::Column(c)) => {
            let (i, t) = resolve(c)?;
            Ok(Predicate::CmpLit {
                col: i,
                op: flip(op),
                lit: coerce_literal(lit, t, *lit_span)?,
            })
        }
        (Expr::Literal(..), Expr::Literal(..)) => Err(SqlError::bind(
            "comparison needs at least one column",
            left.span().merge(right.span()),
        )),
        _ => Err(SqlError::bind(
            "unsupported comparison operand",
            left.span().merge(right.span()),
        )),
    }
}

/// `lit <op> col` rewritten as `col <flip(op)> lit`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Coerce a literal to a column's type, or fail at the literal's span.
fn coerce_literal(lit: &Literal, ty: LogicalType, span: Span) -> Result<Value, SqlError> {
    match (lit, ty) {
        (Literal::Int(v), LogicalType::Int32) => {
            i32::try_from(*v).map(Value::Int32).map_err(|_| {
                SqlError::bind(format!("integer literal {v} out of range for INT32"), span)
            })
        }
        (Literal::Int(v), LogicalType::Int64) => Ok(Value::Int64(*v)),
        (Literal::Int(v), LogicalType::Float64) => Ok(Value::Float64(*v as f64)),
        (Literal::Float(v), LogicalType::Float64) => Ok(Value::Float64(*v)),
        (Literal::Int(v), LogicalType::Date) => i32::try_from(*v).map(Value::Date).map_err(|_| {
            SqlError::bind(format!("integer literal {v} out of range for DATE"), span)
        }),
        (Literal::Str(s), LogicalType::Date) => match parse_date(s) {
            Some(days) => Ok(Value::Date(days)),
            None => Err(SqlError::bind(
                format!("`{s}` is not a date (expected 'YYYY-MM-DD')"),
                span,
            )),
        },
        (Literal::Str(s), LogicalType::Varchar) => Ok(Value::Varchar(s.clone())),
        _ => Err(SqlError::bind(
            format!("literal {lit} cannot be compared with a {ty} column"),
            span,
        )),
    }
}

/// `'YYYY-MM-DD'` to days since 1970-01-01 (the engine's DATE encoding).
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let (y, m, d) = (it.next()?, it.next()?, it.next()?);
    if it.next().is_some() || y.len() != 4 || m.len() != 2 || d.len() != 2 {
        return None;
    }
    let y: i64 = y.parse().ok()?;
    let m: u32 = m.parse().ok()?;
    let d: u32 = d.parse().ok()?;
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return None;
    }
    i32::try_from(days_from_civil(y, m, d)).ok()
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days from the civil epoch 1970-01-01 (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

/// Accumulates grouping columns and deduplicated aggregate specs while the
/// select list and `HAVING` bind.
struct OutputBinder<'a> {
    scope: &'a Scope,
    input_schema: &'a [LogicalType],
    group_cols: Vec<usize>,
    aggregates: Vec<AggregateSpec>,
}

impl OutputBinder<'_> {
    /// Bind one select-list expression in an aggregating query; returns the
    /// output slot in (group keys ++ aggregates) space plus a derived name.
    fn bind_select_item(&mut self, expr: &Expr) -> Result<(usize, String), SqlError> {
        match expr {
            Expr::Column(c) => {
                let idx = self.scope.resolve(c)?;
                match self.group_cols.iter().position(|&g| g == idx) {
                    Some(pos) => Ok((pos, c.name.to_ascii_lowercase())),
                    None => Err(SqlError::bind(
                        format!(
                            "column `{}` must appear in GROUP BY or inside an aggregate",
                            c.name
                        ),
                        c.span,
                    )),
                }
            }
            Expr::Agg(call) => {
                let agg_idx = self.bind_agg_call(call)?;
                Ok((
                    self.group_cols.len() + agg_idx,
                    expr.to_string().to_ascii_lowercase(),
                ))
            }
            other => Err(SqlError::bind(
                "only columns and aggregate calls are supported in the select list",
                other.span(),
            )),
        }
    }

    /// Lower an aggregate call to an [`AggregateSpec`], validate it with
    /// the operator's binder, and return its index in the deduplicated
    /// aggregate list.
    fn bind_agg_call(&mut self, call: &AggCall) -> Result<usize, SqlError> {
        let arg = match &call.arg {
            None => None,
            Some(c) => Some(self.scope.resolve(c)?),
        };
        let spec = match (call.func.as_str(), arg) {
            ("COUNT", None) => AggregateSpec::count_star(),
            ("COUNT", Some(c)) => AggregateSpec::count(c),
            ("SUM", Some(c)) => AggregateSpec::sum(c),
            ("MIN", Some(c)) => AggregateSpec::min(c),
            ("MAX", Some(c)) => AggregateSpec::max(c),
            ("AVG", Some(c)) => AggregateSpec::avg(c),
            ("ANY_VALUE", Some(c)) => AggregateSpec::any_value(c),
            ("VAR_SAMP", Some(c)) => AggregateSpec::var_samp(c),
            ("STDDEV_SAMP", Some(c)) => AggregateSpec::stddev_samp(c),
            (name, _) => {
                return Err(SqlError::bind(
                    format!(
                        "unknown aggregate function `{name}` (supported: {})",
                        crate::parser::AGGREGATE_FUNCTIONS.join(", ")
                    ),
                    call.span,
                ))
            }
        };
        // The operator's own binder is the single source of truth for type
        // rules (SUM over VARCHAR, MIN/MAX over VARCHAR, …).
        bind_aggregate(spec, self.input_schema)
            .map_err(|e| SqlError::bind(e.to_string(), call.span))?;
        match self.aggregates.iter().position(|s| *s == spec) {
            Some(i) => Ok(i),
            None => {
                self.aggregates.push(spec);
                Ok(self.aggregates.len() - 1)
            }
        }
    }
}

/// Bind `HAVING` over the aggregate output space: group keys by name,
/// aggregate calls by (deduplicated) spec.
fn bind_having(expr: &Expr, binder: &mut OutputBinder<'_>) -> Result<Predicate, SqlError> {
    match expr {
        Expr::And(l, r) => Ok(Predicate::And(
            Box::new(bind_having(l, binder)?),
            Box::new(bind_having(r, binder)?),
        )),
        Expr::Or(l, r) => Ok(Predicate::Or(
            Box::new(bind_having(l, binder)?),
            Box::new(bind_having(r, binder)?),
        )),
        Expr::Cmp { op, left, right } => {
            // Normalize to `operand <op> literal`; HAVING comparisons
            // between two aggregates/keys are rare and unsupported.
            let (operand, lit, lit_span, op) = match (&**left, &**right) {
                (l, Expr::Literal(lit, s)) => (l, lit, *s, *op),
                (Expr::Literal(lit, s), r) => (r, lit, *s, flip(*op)),
                _ => {
                    return Err(SqlError::bind(
                        "HAVING comparisons must have a literal on one side",
                        expr.span(),
                    ))
                }
            };
            let (slot, ty) = bind_having_operand(operand, binder)?;
            Ok(Predicate::CmpLit {
                col: slot,
                op,
                lit: coerce_literal(lit, ty, lit_span)?,
            })
        }
        other => Err(SqlError::bind(
            "expected a comparison or AND/OR combination in HAVING",
            other.span(),
        )),
    }
}

/// Resolve a HAVING operand to a slot in the aggregate output schema.
fn bind_having_operand(
    expr: &Expr,
    binder: &mut OutputBinder<'_>,
) -> Result<(usize, LogicalType), SqlError> {
    match expr {
        Expr::Column(c) => {
            let idx = binder.scope.resolve(c)?;
            match binder.group_cols.iter().position(|&g| g == idx) {
                Some(pos) => Ok((pos, binder.input_schema[idx])),
                None => Err(SqlError::bind(
                    format!("HAVING column `{}` must be a GROUP BY column", c.name),
                    c.span,
                )),
            }
        }
        Expr::Agg(call) => {
            let agg_idx = binder.bind_agg_call(call)?;
            let ty = bind_aggregate(binder.aggregates[agg_idx], binder.input_schema)
                .map_err(SqlError::Engine)?
                .output_type;
            Ok((binder.group_cols.len() + agg_idx, ty))
        }
        other => Err(SqlError::bind("unsupported HAVING operand", other.span())),
    }
}

/// Resolve one `ORDER BY` key to an output column index.
fn bind_order_key(
    expr: &Expr,
    query: &Query,
    outputs: &[Output],
    scope: &Scope,
    aggregate: Option<&HashAggregatePlan>,
    binder: &OutputBinder<'_>,
) -> Result<usize, SqlError> {
    match expr {
        // 1-based output position, SQL style.
        Expr::Literal(Literal::Int(n), span) => {
            let n = *n;
            if n < 1 || n as usize > outputs.len() {
                return Err(SqlError::bind(
                    format!("ORDER BY position {n} out of range (1..={})", outputs.len()),
                    *span,
                ));
            }
            Ok(n as usize - 1)
        }
        Expr::Column(c) => {
            // Alias match first (unqualified only), then resolve as a
            // column and match on the projected slot.
            if c.table.is_none() {
                if let Some(pos) = outputs
                    .iter()
                    .position(|o| o.name.eq_ignore_ascii_case(&c.name))
                {
                    return Ok(pos);
                }
            }
            let idx = scope.resolve(c)?;
            let slot = match aggregate {
                None => idx,
                Some(plan) => match plan.group_cols.iter().position(|&g| g == idx) {
                    Some(pos) => pos,
                    None => {
                        return Err(SqlError::bind(
                            format!("ORDER BY column `{}` must be a GROUP BY column", c.name),
                            c.span,
                        ))
                    }
                },
            };
            match outputs.iter().position(|o| o.slot == slot) {
                Some(pos) => Ok(pos),
                None => Err(SqlError::bind(
                    format!(
                        "ORDER BY column `{}` must appear in the SELECT list",
                        c.name
                    ),
                    c.span,
                )),
            }
        }
        Expr::Agg(call) => {
            let Some(_) = aggregate else {
                return Err(SqlError::bind(
                    "aggregate in ORDER BY requires GROUP BY",
                    call.span,
                ));
            };
            // Re-lower the call and find the matching select item. A fresh
            // spec is fine: lowering is deterministic, and the select list
            // has already registered every projected aggregate.
            let mut probe = OutputBinder {
                scope,
                input_schema: binder.input_schema,
                group_cols: binder.group_cols.clone(),
                aggregates: binder.aggregates.clone(),
            };
            let agg_idx = probe.bind_agg_call(call)?;
            if agg_idx >= binder.aggregates.len() {
                return Err(SqlError::bind(
                    "ORDER BY aggregate must appear in the SELECT list or HAVING",
                    call.span,
                ));
            }
            let slot = binder.group_cols.len() + agg_idx;
            match outputs.iter().position(|o| o.slot == slot) {
                Some(pos) => Ok(pos),
                None => Err(SqlError::bind(
                    "ORDER BY aggregate must appear in the SELECT list",
                    call.span,
                )),
            }
        }
        other => Err(SqlError::bind(
            "unsupported ORDER BY expression",
            other.span(),
        )),
    }
    .and_then(|pos| {
        // Defensive: the sort sink indexes projected rows.
        if pos < query.items.len().max(outputs.len()) {
            Ok(pos)
        } else {
            Err(SqlError::bind(
                "ORDER BY position out of range",
                expr.span(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parsing_matches_epoch_days() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        // The lineitem generator anchors 1992-01-01 at day 8035.
        assert_eq!(parse_date("1992-01-01"), Some(8035));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert_eq!(parse_date("2000-02-29"), Some(11016));
        assert_eq!(parse_date("1900-02-29"), None);
        assert_eq!(parse_date("1998-13-01"), None);
        assert_eq!(parse_date("1998-00-01"), None);
        assert_eq!(parse_date("98-01-01"), None);
        assert_eq!(parse_date("not a date"), None);
    }
}
