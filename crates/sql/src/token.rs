//! Hand-written tokenizer with byte-offset spans.
//!
//! Keywords are not distinguished here: a keyword is an [`Tok::Ident`] the
//! parser matches case-insensitively, which keeps the token set small and
//! lets identifiers shadow nothing. String literals use single quotes with
//! `''` as the escape for a quote, SQL style.

use crate::error::{Span, SqlError};

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Bare identifier or keyword (matched case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    Comma,
    LParen,
    RParen,
    Star,
    Dot,
    Semi,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input (always the last token).
    Eof,
}

impl Tok {
    /// How the token prints in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("`{v}`"),
            Tok::Float(v) => format!("`{v}`"),
            Tok::Str(s) => format!("'{s}'"),
            Tok::Comma => "`,`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Star => "`*`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ne => "`<>`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token plus the byte range it was lexed from.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenize `sql` completely. The result always ends with [`Tok::Eof`]
/// whose span is the empty range at the end of the text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'-' => push1(&mut toks, Tok::Minus, &mut i),
            b',' => push1(&mut toks, Tok::Comma, &mut i),
            b'(' => push1(&mut toks, Tok::LParen, &mut i),
            b')' => push1(&mut toks, Tok::RParen, &mut i),
            b'*' => push1(&mut toks, Tok::Star, &mut i),
            b'.' => push1(&mut toks, Tok::Dot, &mut i),
            b';' => push1(&mut toks, Tok::Semi, &mut i),
            b'=' => push1(&mut toks, Tok::Eq, &mut i),
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => push2(&mut toks, Tok::Le, &mut i),
                Some(b'>') => push2(&mut toks, Tok::Ne, &mut i),
                _ => push1(&mut toks, Tok::Lt, &mut i),
            },
            b'>' => match bytes.get(i + 1) {
                Some(b'=') => push2(&mut toks, Tok::Ge, &mut i),
                _ => push1(&mut toks, Tok::Gt, &mut i),
            },
            b'!' if bytes.get(i + 1) == Some(&b'=') => push2(&mut toks, Tok::Ne, &mut i),
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::parse(
                                "unterminated string literal",
                                Span::new(start, bytes.len()),
                            ))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Consume one whole UTF-8 character.
                            let ch = sql[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push(Token {
                    tok: Tok::Str(s),
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' => {
                let mut is_float = false;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                let span = Span::new(start, i);
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        SqlError::parse(format!("invalid numeric literal `{text}`"), span)
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        SqlError::parse(format!("integer literal `{text}` out of range"), span)
                    })?)
                };
                toks.push(Token { tok, span });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(sql[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                let ch = sql[i..].chars().next().unwrap();
                return Err(SqlError::parse(
                    format!("unexpected character `{ch}`"),
                    Span::new(i, i + ch.len_utf8()),
                ));
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span::new(sql.len(), sql.len()),
    });
    Ok(toks)
}

fn push1(toks: &mut Vec<Token>, tok: Tok, i: &mut usize) {
    toks.push(Token {
        tok,
        span: Span::new(*i, *i + 1),
    });
    *i += 1;
}

fn push2(toks: &mut Vec<Token>, tok: Tok, i: &mut usize) {
    toks.push(Token {
        tok,
        span: Span::new(*i, *i + 2),
    });
    *i += 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Tok> {
        tokenize(sql).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT a, SUM(b) FROM t WHERE c >= 1.5 AND d <> 'x''y';"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("SUM".into()),
                Tok::LParen,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("c".into()),
                Tok::Ge,
                Tok::Float(1.5),
                Tok::Ident("AND".into()),
                Tok::Ident("d".into()),
                Tok::Ne,
                Tok::Str("x'y".into()),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = tokenize("SELECT  count(*)").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 6));
        assert_eq!(toks[1].span, Span::new(8, 13)); // count
        assert_eq!(toks[2].span, Span::new(13, 14)); // (
        assert_eq!(toks[3].span, Span::new(14, 15)); // *
        assert_eq!(toks[4].span, Span::new(15, 16)); // )
        assert_eq!(toks[5].span, Span::new(16, 16)); // Eof
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT a -- trailing comment\nFROM t"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors_with_span() {
        let e = tokenize("SELECT 'oops").unwrap_err();
        assert_eq!(e.span(), Some(Span::new(7, 12)));
    }

    #[test]
    fn unexpected_character_errors_with_span() {
        let e = tokenize("SELECT §").unwrap_err();
        let span = e.span().unwrap();
        assert_eq!(span.start, 7);
    }
}
