//! # rexa-sql — SQL front end (S19)
//!
//! A small SQL layer over the rexa operators: a hand-written tokenizer with
//! byte-offset spans, a recursive-descent parser for a `SELECT` dialect, a
//! binder/planner that resolves names against a [`Catalog`], and an
//! executor lowering onto the existing operators —
//! [`hash_aggregate_streaming_ctx`](rexa_core::hash_aggregate_streaming_ctx),
//! [`hash_join_streaming`](rexa_core::hash_join_streaming), and
//! [`ungrouped_aggregate`](rexa_core::ungrouped_aggregate) — through one
//! shared [`BufferManager`](rexa_buffer::BufferManager) and
//! [`ExecContext`](rexa_exec::ExecContext), so SQL queries spill, cancel,
//! and profile exactly like hand-wired plans.
//!
//! Supported shape:
//!
//! ```sql
//! SELECT <columns and aggregate calls> FROM <table>
//!   [JOIN <table> ON a.x = b.y [AND ...]]
//!   [WHERE <comparisons joined by AND/OR>]
//!   [GROUP BY <columns>] [HAVING <predicate>]
//!   [ORDER BY <keys> [DESC]] [LIMIT n]
//! ```
//!
//! Errors are typed ([`SqlError`]) and carry byte-offset [`Span`]s;
//! [`SqlError::render`] produces a caret diagnostic against the source
//! text. Parsing never panics on malformed input.
//!
//! ```
//! use rexa_sql::{Catalog, plan, execute_streaming};
//! use rexa_buffer::{BufferManager, BufferManagerConfig};
//! use rexa_core::AggregateConfig;
//! use rexa_exec::{ChunkCollection, DataChunk, ExecContext, LogicalType, Value};
//! use std::sync::Arc;
//!
//! let mut coll = ChunkCollection::new(vec![LogicalType::Int64, LogicalType::Int64]);
//! let mut chunk = DataChunk::empty(coll.types());
//! for i in 0..100i64 {
//!     chunk.push_row(&[Value::Int64(i % 4), Value::Int64(i)]).unwrap();
//! }
//! coll.push(chunk).unwrap();
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .register_collection("t", vec!["k".into(), "v".into()], Arc::new(coll))
//!     .unwrap();
//!
//! let physical = plan("SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k", &catalog).unwrap();
//! let mgr = BufferManager::new(BufferManagerConfig::with_limit(64 << 20)).unwrap();
//! let out = parking_lot::Mutex::new(Vec::new());
//! let stats = execute_streaming(
//!     &mgr,
//!     &physical,
//!     &AggregateConfig::default(),
//!     &ExecContext::new(),
//!     &|chunk| {
//!         out.lock().push(chunk);
//!         Ok(())
//!     },
//! )
//! .unwrap();
//! assert_eq!(stats.rows_out, 4);
//! ```

pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod token;

pub use ast::Query;
pub use catalog::{Catalog, CatalogTable, TableData};
pub use error::{Span, SqlError};
pub use exec::{execute_streaming, SqlStats};
pub use parser::parse;
pub use plan::{bind, plan, plan_traced, PhysicalPlan, Predicate, SortKey};
pub use token::tokenize;
