//! The typed AST the parser produces and the binder consumes.
//!
//! Every node that can fail to bind carries the [`Span`] of its source
//! text. [`Query`] implements [`std::fmt::Display`] as a canonical
//! unparser — `parse(q.to_string())` yields the same tree (modulo spans),
//! which the round-trip tests exercise.

use crate::error::Span;
use std::fmt;

/// A parsed `SELECT` statement.
#[derive(Clone, Debug)]
pub struct Query {
    /// `SELECT *` — mutually exclusive with explicit `items`.
    pub star: bool,
    /// The select list, in output order (empty iff `star`).
    pub items: Vec<SelectItem>,
    /// The `FROM` table.
    pub from: TableRef,
    /// Optional `JOIN <table> ON <equi-conditions>`.
    pub join: Option<Join>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns, in key order.
    pub group_by: Vec<ColumnRef>,
    /// Optional `HAVING` predicate (over group keys and aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` keys over the output rows.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`.
    pub limit: Option<Limit>,
}

/// One select-list entry: an expression with an optional alias.
#[derive(Clone, Debug)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// A table name in `FROM` or `JOIN`.
#[derive(Clone, Debug)]
pub struct TableRef {
    pub name: String,
    pub span: Span,
}

/// `JOIN <table> ON a.x = b.y [AND …]` — inner equi-join only.
#[derive(Clone, Debug)]
pub struct Join {
    pub table: TableRef,
    /// The `ON` equalities, each `left = right` (sides in source order; the
    /// binder sorts out which table each side belongs to).
    pub on: Vec<(ColumnRef, ColumnRef)>,
    pub span: Span,
}

/// A possibly-qualified column reference.
#[derive(Clone, Debug)]
pub struct ColumnRef {
    /// `table.` qualifier, if written.
    pub table: Option<String>,
    pub name: String,
    pub span: Span,
}

/// One `ORDER BY` key.
#[derive(Clone, Debug)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// `LIMIT n` with the span of `n`.
#[derive(Clone, Copy, Debug)]
pub struct Limit {
    pub n: u64,
    pub span: Span,
}

/// A scalar or predicate expression.
#[derive(Clone, Debug)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Literal, Span),
    /// An aggregate call: `COUNT(*)` or `FUNC(col)`.
    Agg(AggCall),
    /// A comparison between two operands.
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Column(c) => c.span,
            Expr::Literal(_, s) => *s,
            Expr::Agg(a) => a.span,
            Expr::Cmp { left, right, .. } => left.span().merge(right.span()),
            Expr::And(l, r) | Expr::Or(l, r) => l.span().merge(r.span()),
        }
    }

    /// Does any aggregate call occur in this expression?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg(_) => true,
            Expr::Column(_) | Expr::Literal(..) => false,
            Expr::Cmp { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::And(l, r) | Expr::Or(l, r) => l.has_aggregate() || r.has_aggregate(),
        }
    }
}

/// An aggregate function call. Arguments are restricted to a single column
/// reference (or `*` for `COUNT`), matching what the operators support.
#[derive(Clone, Debug)]
pub struct AggCall {
    /// Function name, uppercased (`COUNT`, `SUM`, …).
    pub func: String,
    /// The argument column (`None` for `COUNT(*)`).
    pub arg: Option<ColumnRef>,
    /// True for `COUNT(*)`.
    pub star: bool,
    pub span: Span,
}

/// A literal value as written.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Does `ord` (of `left.cmp(right)`) satisfy the operator?
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                // Keep a decimal point so the round trip re-lexes as Float.
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l, _) => write!(f, "{l}"),
            Expr::Agg(a) => {
                if a.star {
                    write!(f, "{}(*)", a.func)
                } else {
                    write!(f, "{}({})", a.func, a.arg.as_ref().unwrap())
                }
            }
            Expr::Cmp { op, left, right } => write!(f, "{left} {} {right}", op.symbol()),
            Expr::And(l, r) => {
                // Parenthesize OR under AND to preserve precedence.
                let fmt_side = |f: &mut fmt::Formatter<'_>, e: &Expr| -> fmt::Result {
                    if matches!(e, Expr::Or(..)) {
                        write!(f, "({e})")
                    } else {
                        write!(f, "{e}")
                    }
                };
                fmt_side(f, l)?;
                write!(f, " AND ")?;
                fmt_side(f, r)
            }
            Expr::Or(l, r) => write!(f, "{l} OR {r}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.star {
            write!(f, "*")?;
        } else {
            for (i, item) in self.items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", item.expr)?;
                if let Some(alias) = &item.alias {
                    write!(f, " AS {alias}")?;
                }
            }
        }
        write!(f, " FROM {}", self.from.name)?;
        if let Some(join) = &self.join {
            write!(f, " JOIN {} ON ", join.table.name)?;
            for (i, (l, r)) in join.on.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{l} = {r}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {}", l.n)?;
        }
        Ok(())
    }
}
