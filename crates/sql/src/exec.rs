//! Execute a bound [`PhysicalPlan`] on the existing operators.
//!
//! The lowering is deliberately thin: scans go through the same
//! [`ChunkSource`]s the hand-wired plans use, joins through
//! [`hash_join_streaming`], and aggregation through
//! [`hash_aggregate_streaming_ctx`] with the caller's [`ExecContext`] — so
//! one worker pool, one cancellation token, one memory grant, and one
//! profile collector serve the whole query, and a SQL query produces
//! bit-identical output to the equivalent hand-wired plan.
//!
//! `WHERE` is applied by a filtering [`ChunkSource`] wrapper in front of
//! the aggregate (each passing row is copied into a fresh chunk — fine for
//! a front end whose hot path is the aggregation itself). `HAVING` and the
//! select-list projection run inside the output consumer, and `ORDER BY` /
//! `LIMIT` buffer the (small, post-aggregation) result for a final sort.

use crate::plan::{PhysicalPlan, Predicate};
use rexa_buffer::{BufferManager, BufferStats};
use rexa_core::{
    hash_aggregate_streaming_ctx, hash_join_streaming, ungrouped_aggregate, AggregateConfig,
    JoinConfig, JoinStats, RunStats, SortedInput,
};
use rexa_exec::pipeline::{CancelToken, ChunkReader, ChunkSource, CollectionSource};
use rexa_exec::pool::ExecContext;
use rexa_exec::{ChunkCollection, DataChunk, LogicalType, Result, Value, VECTOR_SIZE};
use rexa_obs::ProfileCollector;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

use crate::catalog::TableData;
use parking_lot::Mutex;

/// Execution statistics for one SQL query.
#[derive(Clone, Debug)]
pub struct SqlStats {
    /// Aggregation statistics. For queries without aggregation this is a
    /// synthesized record (rows in/out and scan wall time; no partitions).
    pub run: RunStats,
    /// Join statistics, when the query had a `JOIN`.
    pub join: Option<JoinStats>,
    /// Rows delivered to the consumer after `HAVING`/`LIMIT`.
    pub rows_out: usize,
}

/// Run `plan`, streaming output chunks to `consumer`.
///
/// The consumer may be called concurrently (from the aggregation's phase-2
/// workers) unless the plan has `ORDER BY`/`LIMIT`, in which case output is
/// buffered, sorted, and delivered sequentially at the end.
pub fn execute_streaming(
    mgr: &Arc<BufferManager>,
    plan: &PhysicalPlan,
    config: &AggregateConfig,
    ctx: &ExecContext,
    consumer: &(dyn Fn(DataChunk) -> Result<()> + Sync),
) -> Result<SqlStats> {
    let cancel = ctx.cancel_token().clone();

    // JOIN first: materialize the joined rows (probe columns then build
    // columns — exactly `plan.input_schema`) into an in-memory collection
    // that the aggregation then scans.
    let mut join_stats = None;
    let joined: Option<ChunkCollection> = match &plan.join {
        None => None,
        Some(j) => {
            let probe = make_source(&plan.left.data, mgr, cancel.clone());
            let build = make_source(&j.right.data, mgr, cancel.clone());
            let out = Mutex::new(ChunkCollection::new(plan.input_schema.clone()));
            let jconfig = JoinConfig {
                threads: config.threads,
                radix_bits: config.radix_bits,
                output_chunk_size: config.output_chunk_size.min(VECTOR_SIZE),
                ..JoinConfig::default()
            };
            let stats = hash_join_streaming(
                mgr,
                build.as_src(),
                &j.right.schema,
                probe.as_src(),
                &plan.left.schema,
                &j.plan,
                &jconfig,
                &|chunk| out.lock().push(chunk),
            )?;
            join_stats = Some(stats);
            Some(out.into_inner())
        }
    };

    let joined_storage;
    let left_storage;
    let base_src: &dyn ChunkSource = match &joined {
        Some(coll) => {
            joined_storage = CollectionSource::with_cancel(coll, cancel.clone());
            &joined_storage
        }
        None => {
            left_storage = make_source(&plan.left.data, mgr, cancel.clone());
            left_storage.as_src()
        }
    };

    let filter_storage;
    let input_src: &dyn ChunkSource = match &plan.filter {
        Some(pred) => {
            filter_storage = FilterSource {
                inner: base_src,
                pred,
                schema: &plan.input_schema,
            };
            &filter_storage
        }
        None => base_src,
    };

    // Output path: HAVING → projection → (sort buffer | consumer).
    let sort_buffer: Option<Mutex<Vec<Vec<Value>>>> =
        if plan.order_by.is_empty() && plan.limit.is_none() {
            None
        } else {
            Some(Mutex::new(Vec::new()))
        };
    let rows_out = AtomicUsize::new(0);
    let deliver = |chunk: &DataChunk| -> Result<()> {
        match &sort_buffer {
            Some(buf) => {
                let mut rows = buf.lock();
                for r in 0..chunk.len() {
                    rows.push(chunk.row(r));
                }
                Ok(())
            }
            None => {
                rows_out.fetch_add(chunk.len(), AtomicOrdering::Relaxed);
                consumer(chunk.project(&plan.projection))
            }
        }
    };
    let postprocess = |chunk: DataChunk| -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        match &plan.having {
            None => deliver(&chunk),
            Some(h) => {
                let mut kept = DataChunk::empty(&plan.agg_output_schema);
                for r in 0..chunk.len() {
                    if h.eval(&chunk, r) {
                        kept.push_row(&chunk.row(r))?;
                    }
                }
                if kept.is_empty() {
                    Ok(())
                } else {
                    deliver(&kept)
                }
            }
        }
    };
    let run = match &plan.aggregate {
        Some(agg) if !agg.group_cols.is_empty() => {
            // Promote the planner's sorted-input verdict into the config:
            // a declared-sorted scan skips the sortedness sampling and
            // starts on the in-stream fast path immediately. An explicit
            // `Unsorted` (or `Sorted`) in the caller's config wins.
            let mut agg_config = config.clone();
            if plan.input_sorted && agg_config.sorted_input == SortedInput::Detect {
                agg_config.sorted_input = SortedInput::Sorted;
            }
            hash_aggregate_streaming_ctx(
                mgr,
                input_src,
                &plan.input_schema,
                agg,
                &agg_config,
                ctx,
                &postprocess,
            )?
        }
        Some(agg) => {
            // Global aggregate (no GROUP BY): one output row.
            let t0 = Instant::now();
            let values = ungrouped_aggregate(
                input_src,
                &plan.input_schema,
                &agg.aggregates,
                config.threads,
            )?;
            let mut chunk = DataChunk::empty(&plan.agg_output_schema);
            chunk.push_row(&values)?;
            postprocess(chunk)?;
            synthesized_stats(ctx, "UNGROUPED_AGGREGATE", config.threads, 0, 1, t0)
        }
        None => {
            // Plain scan (+ filter): sequential drain of the source.
            let t0 = Instant::now();
            let mut rows_in = 0usize;
            let mut reader = input_src.reader();
            while let Some(chunk) = reader.next()? {
                ctx.check_cancelled()?;
                rows_in += chunk.len();
                let owned = chunk.clone();
                postprocess(owned)?;
            }
            synthesized_stats(ctx, "SCAN", 1, rows_in, rows_in, t0)
        }
    };

    // Final sort/limit, delivered sequentially.
    if let Some(buf) = sort_buffer {
        let mut rows = buf.into_inner();
        rows.sort_unstable_by(|a, b| {
            for key in &plan.order_by {
                let col = plan.projection[key.col];
                let ord = a[col].total_cmp(&b[col]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            // Full-row tiebreak: phase-2 workers deliver groups in a
            // nondeterministic order, so equal sort keys need a total order
            // for reproducible output.
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        if let Some(n) = plan.limit {
            rows.truncate(n);
        }
        let chunk_rows = config.output_chunk_size.clamp(1, VECTOR_SIZE);
        let mut chunk = DataChunk::empty(&plan.output_types);
        for row in &rows {
            let projected: Vec<Value> = plan.projection.iter().map(|&i| row[i].clone()).collect();
            chunk.push_row(&projected)?;
            if chunk.len() == chunk_rows {
                let full = std::mem::replace(&mut chunk, DataChunk::empty(&plan.output_types));
                consumer(full)?;
            }
        }
        if !chunk.is_empty() {
            consumer(chunk)?;
        }
        rows_out.store(rows.len(), AtomicOrdering::Relaxed);
    }

    Ok(SqlStats {
        run,
        join: join_stats,
        rows_out: rows_out.load(AtomicOrdering::Relaxed),
    })
}

/// A [`RunStats`] for plans that bypass the hash-aggregation operator, so
/// callers (the service, EXPLAIN ANALYZE) see a uniform stats shape.
fn synthesized_stats(
    ctx: &ExecContext,
    operator: &str,
    threads: usize,
    rows_in: usize,
    groups: usize,
    t0: Instant,
) -> RunStats {
    let wall = t0.elapsed();
    let collector = ctx
        .profile()
        .cloned()
        .unwrap_or_else(|| Arc::new(ProfileCollector::new()));
    collector.set_threads(threads);
    RunStats {
        rows_in,
        groups,
        partitions: 0,
        resets: 0,
        phase1: wall,
        phase2: std::time::Duration::ZERO,
        buffer: BufferStats::default(),
        profile: collector.finish(operator, wall),
    }
}

/// Owns whichever scan source a [`TableData`] needs.
enum SourceHolder<'a> {
    Coll(CollectionSource<'a>),
    Paged(rexa_buffer::TableSource<'a>),
}

impl SourceHolder<'_> {
    fn as_src(&self) -> &dyn ChunkSource {
        match self {
            SourceHolder::Coll(s) => s,
            SourceHolder::Paged(s) => s,
        }
    }
}

fn make_source<'a>(
    data: &'a TableData,
    mgr: &Arc<BufferManager>,
    cancel: CancelToken,
) -> SourceHolder<'a> {
    match data {
        TableData::Collection(c) => SourceHolder::Coll(CollectionSource::with_cancel(c, cancel)),
        TableData::Paged(t) => SourceHolder::Paged(t.scan_with_cancel(mgr, cancel)),
    }
}

/// A [`ChunkSource`] that applies a row predicate, materializing passing
/// rows into fresh chunks.
struct FilterSource<'a> {
    inner: &'a dyn ChunkSource,
    pred: &'a Predicate,
    schema: &'a [LogicalType],
}

impl ChunkSource for FilterSource<'_> {
    fn reader(&self) -> Box<dyn ChunkReader + '_> {
        Box::new(FilterReader {
            inner: self.inner.reader(),
            pred: self.pred,
            schema: self.schema,
            buf: DataChunk::empty(self.schema),
        })
    }

    fn total_rows(&self) -> Option<usize> {
        // Upper bound (pre-filter); used only for sizing hints.
        self.inner.total_rows()
    }

    fn sorted_by(&self) -> Option<&[usize]> {
        // Filtering preserves row order.
        self.inner.sorted_by()
    }
}

struct FilterReader<'a> {
    inner: Box<dyn ChunkReader + 'a>,
    pred: &'a Predicate,
    schema: &'a [LogicalType],
    /// The chunk lent out by the last `next()` call.
    buf: DataChunk,
}

impl ChunkReader for FilterReader<'_> {
    fn next(&mut self) -> Result<Option<&DataChunk>> {
        loop {
            let Some(chunk) = self.inner.next()? else {
                return Ok(None);
            };
            let mut out = DataChunk::empty(self.schema);
            for r in 0..chunk.len() {
                if self.pred.eval(chunk, r) {
                    out.push_row(&chunk.row(r))?;
                }
            }
            if out.is_empty() {
                continue;
            }
            self.buf = out;
            return Ok(Some(&self.buf));
        }
    }
}
