//! Typed, span-carrying SQL errors.
//!
//! Every parse and bind failure points at the byte range of the offending
//! token in the original query text, so a caller (CLI, service log, test)
//! can underline exactly what was wrong. Engine failures that happen after
//! planning (OOM, cancellation, …) are passed through unchanged.

use std::fmt;

/// A byte range `[start, end)` into the original SQL text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned text.
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// What went wrong with a SQL query.
#[derive(Debug)]
pub enum SqlError {
    /// The text is not a well-formed query; `span` points at the offending
    /// token (or at end-of-input for truncated queries).
    Parse { message: String, span: Span },
    /// The query is well-formed but does not bind against the catalog
    /// (unknown table/column, type mismatch, unsupported shape).
    Bind { message: String, span: Span },
    /// The planned query failed at execution time (OOM, cancellation,
    /// deadline, admission shed, I/O, …).
    Engine(rexa_exec::Error),
}

impl SqlError {
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        SqlError::Parse {
            message: message.into(),
            span,
        }
    }

    pub fn bind(message: impl Into<String>, span: Span) -> Self {
        SqlError::Bind {
            message: message.into(),
            span,
        }
    }

    /// The byte span of the offending text, when the error has one
    /// (parse and bind errors do; engine errors do not).
    pub fn span(&self) -> Option<Span> {
        match self {
            SqlError::Parse { span, .. } | SqlError::Bind { span, .. } => Some(*span),
            SqlError::Engine(_) => None,
        }
    }

    /// A two-line diagnostic: the query text with a caret underline below
    /// the offending span. Spans beyond the text (end-of-input errors) get
    /// a single caret one past the last byte.
    pub fn render(&self, sql: &str) -> String {
        let Some(span) = self.span() else {
            return format!("{self}");
        };
        let start = span.start.min(sql.len());
        let width = span.end.saturating_sub(span.start).max(1);
        let underline: String = sql[..start]
            .chars()
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .chain(std::iter::repeat_n('^', width))
            .collect();
        format!("{self}\n{sql}\n{underline}")
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, span } => write!(f, "parse error at {span}: {message}"),
            SqlError::Bind { message, span } => write!(f, "bind error at {span}: {message}"),
            SqlError::Engine(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<rexa_exec::Error> for SqlError {
    fn from(e: rexa_exec::Error) -> Self {
        SqlError::Engine(e)
    }
}

/// Lossy conversion for callers that only speak the engine's error type:
/// the span survives inside the message text.
impl From<SqlError> for rexa_exec::Error {
    fn from(e: SqlError) -> Self {
        match e {
            SqlError::Engine(inner) => inner,
            other => rexa_exec::Error::InvalidInput(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_underlines_span() {
        let e = SqlError::parse("unexpected token", Span::new(7, 11));
        let r = e.render("SELECT FROM t");
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1], "SELECT FROM t");
        assert_eq!(lines[2], "       ^^^^");
    }

    #[test]
    fn render_at_end_of_input() {
        let e = SqlError::parse("expected expression", Span::new(7, 7));
        let r = e.render("SELECT ");
        assert!(r.ends_with("^"));
    }
}
